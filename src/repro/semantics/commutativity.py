"""Commutativity — the traditional conflict notion (Section 3).

Three formulations, all decided by bounded enumeration:

* :func:`commute_in_state` / :func:`forward_commute_invocations` — the
  direct state-machine reading on invocations: both execution orders give
  the same final state and each operation the same return value.  ("Two
  operations do not commute if either type of dependency may result if
  they execute concurrently.")
* :func:`forward_commute_events` — Weihl's *forward commutativity* on
  events (operations with results), the notion applicable with
  intentions-list recovery.
* :func:`backward_commute_events` — Weihl's *backward commutativity*,
  applicable with log-based (undo) recovery: whenever the events can occur
  in one order they can be reordered with the same effect.

The operation-level tables accept a prebuilt
:class:`~repro.perf.evidence.EvidenceBase` (``evidence=``) and a worker
count (``jobs=``); standalone calls run behind a temporary execution
cache (:func:`~repro.perf.cache.ensure_execution_cache`), inside a
derivation they join its cache.  Forward commutativity is symmetric in
its two events, so the forward/invocation tables decide each unordered
operation pair once and mirror it; backward commutativity is *not*
symmetric, so the backward table decides both orientations of each
unordered pair in one pass over the shared replays.
"""

from __future__ import annotations

from repro.perf.cache import ensure_execution_cache
from repro.perf.evidence import EvidenceBase
from repro.perf.parallel import worker_pool
from repro.semantics.history import HistoryEvent, event_alphabet, replay
from repro.spec.adt import ADTSpec, AbstractState, EnumerationBounds, execute_invocation
from repro.spec.operation import Invocation

__all__ = [
    "commute_in_state",
    "forward_commute_invocations",
    "forward_commute_events",
    "backward_commute_events",
    "events_by_operation",
    "commutativity_table",
    "forward_commutativity_table",
    "backward_commutativity_table",
]


def commute_in_state(
    adt: ADTSpec,
    state: AbstractState,
    first: Invocation,
    second: Invocation,
    evidence: EvidenceBase | None = None,
) -> bool:
    """Whether two invocations commute when started in ``state``.

    Requires state equivalence *and* per-invocation return equality across
    the two orders — return inequality is exactly what creates an
    observable difference for the invoking transactions.

    With ``evidence`` the four executions are matrix lookups; in
    particular the shared first leg (``first`` in ``state``) is computed
    once across every partner ``second`` of a table loop.
    """
    if evidence is not None:
        return evidence.commute_in_state(state, first, second)
    x_then_y_first = execute_invocation(adt, state, first)
    x_then_y_second = execute_invocation(adt, x_then_y_first.post_state, second)
    y_then_x_second = execute_invocation(adt, state, second)
    y_then_x_first = execute_invocation(adt, y_then_x_second.post_state, first)
    return (
        x_then_y_second.post_state == y_then_x_first.post_state
        and x_then_y_first.returned == y_then_x_first.returned
        and x_then_y_second.returned == y_then_x_second.returned
    )


def forward_commute_invocations(
    adt: ADTSpec,
    first: Invocation,
    second: Invocation,
    bounds: EnumerationBounds | None = None,
    evidence: EvidenceBase | None = None,
) -> bool:
    """Whether two invocations commute in *every* enumerated state."""
    if evidence is not None:
        return all(
            evidence.commute_in_state(state, first, second)
            for state in evidence.states()
        )
    return all(
        commute_in_state(adt, state, first, second)
        for state in adt.states(bounds or adt.default_bounds)
    )


def forward_commute_events(
    adt: ADTSpec,
    first: HistoryEvent,
    second: HistoryEvent,
    bounds: EnumerationBounds | None = None,
    evidence: EvidenceBase | None = None,
) -> bool:
    """Weihl's forward commutativity on events.

    For every state in which *each* event is individually legal, both
    orders of the pair must be legal and reach the same state.  Symmetric
    in ``first`` and ``second`` by construction.
    """
    if evidence is not None:
        states = evidence.states()
        replay_from = evidence.replay
    else:
        states = adt.states(bounds or adt.default_bounds)
        replay_from = lambda history, start: replay(adt, history, start)  # noqa: E731
    for state in states:
        first_alone = replay_from((first,), state)
        second_alone = replay_from((second,), state)
        if first_alone is None or second_alone is None:
            continue
        forward = replay_from((first, second), state)
        backward = replay_from((second, first), state)
        if forward is None or backward is None or forward != backward:
            return False
    return True


def backward_commute_events(
    adt: ADTSpec,
    first: HistoryEvent,
    second: HistoryEvent,
    bounds: EnumerationBounds | None = None,
    evidence: EvidenceBase | None = None,
) -> bool:
    """Weihl's backward commutativity on events.

    For every state in which ``first . second`` is legal, the reversed
    order must be legal and reach the same state.  *Not* symmetric: one
    order may be legal in states where the other never is.
    """
    if evidence is not None:
        states = evidence.states()
        replay_from = evidence.replay
    else:
        states = adt.states(bounds or adt.default_bounds)
        replay_from = lambda history, start: replay(adt, history, start)  # noqa: E731
    for state in states:
        forward = replay_from((first, second), state)
        if forward is None:
            continue
        backward = replay_from((second, first), state)
        if backward is None or backward != forward:
            return False
    return True


# ---------------------------------------------------------------------------
# Operation-level tables
# ---------------------------------------------------------------------------

def events_by_operation(
    adt: ADTSpec,
    bounds: EnumerationBounds | None = None,
    evidence: EvidenceBase | None = None,
) -> dict[str, list[HistoryEvent]]:
    """The bounded event alphabet, grouped by operation name.

    The shared grouping the three operation-level tables quantify over
    (sorted for reproducible iteration order).
    """
    if evidence is not None:
        alphabet = evidence.event_alphabet()
    else:
        alphabet = event_alphabet(adt, bounds)
    grouped: dict[str, list[HistoryEvent]] = {}
    for event in sorted(alphabet, key=lambda e: (e.invocation.operation, e.render())):
        grouped.setdefault(event.invocation.operation, []).append(event)
    return grouped


def _forward_pair(
    adt: ADTSpec,
    events: dict[str, list[HistoryEvent]],
    first_name: str,
    second_name: str,
    bounds: EnumerationBounds | None,
    evidence: EvidenceBase | None,
) -> tuple[bool, bool]:
    """Forward commutativity of one unordered operation pair.

    Event-level forward commutativity is symmetric, so the two table
    orientations carry the same verdict.
    """
    value = all(
        forward_commute_events(adt, first, second, bounds, evidence=evidence)
        for first in events.get(first_name, [])
        for second in events.get(second_name, [])
    )
    return value, value


def _backward_pair(
    adt: ADTSpec,
    events: dict[str, list[HistoryEvent]],
    first_name: str,
    second_name: str,
    bounds: EnumerationBounds | None,
    evidence: EvidenceBase | None,
) -> tuple[bool, bool]:
    """Backward commutativity of one unordered operation pair.

    Backward commutativity is not symmetric at the event level, so both
    orientations are decided — in one pass over the event pairs, sharing
    the two replays each pair needs.  Returns the verdicts for table keys
    ``(second_name, first_name)`` and ``(first_name, second_name)``.
    """
    key_ba = True  # table[(second_name, first_name)]
    key_ab = True  # table[(first_name, second_name)]
    for first in events.get(first_name, []):
        for second in events.get(second_name, []):
            if key_ba and not backward_commute_events(
                adt, first, second, bounds, evidence=evidence
            ):
                key_ba = False
            if key_ab and not backward_commute_events(
                adt, second, first, bounds, evidence=evidence
            ):
                key_ab = False
            if not key_ba and not key_ab:
                return False, False
    return key_ba, key_ab


def _invocation_pair(
    adt: ADTSpec,
    events: dict[str, list[HistoryEvent]],
    first_name: str,
    second_name: str,
    bounds: EnumerationBounds | None,
    evidence: EvidenceBase | None,
) -> tuple[bool, bool]:
    """Invocation-level commutativity of one unordered operation pair
    (symmetric: both orders must agree on states and returns)."""
    value = all(
        forward_commute_invocations(adt, first, second, bounds, evidence=evidence)
        for first in adt.invocations_of(first_name, bounds)
        for second in adt.invocations_of(second_name, bounds)
    )
    return value, value


_PAIR_FUNCTIONS = {
    "forward": _forward_pair,
    "backward": _backward_pair,
    "invocation": _invocation_pair,
}

#: Per-process worker state of the table fan-out (see
#: :func:`repro.core.methodology._WORKER_STATE` for the same pattern).
_TABLE_WORKER_STATE: dict[str, object] = {}


def _init_table_worker(adt, bounds) -> None:
    """Pool initializer: no-op under ``fork`` (state inherited), rebuild
    the evidence base behind a fresh cache under ``spawn``."""
    if _TABLE_WORKER_STATE:
        return
    from repro.perf.cache import ExecutionCache
    from repro.spec.adt import install_execution_cache

    install_execution_cache(ExecutionCache())
    evidence = EvidenceBase(adt, bounds=bounds)
    _TABLE_WORKER_STATE["adt"] = adt
    _TABLE_WORKER_STATE["bounds"] = bounds
    _TABLE_WORKER_STATE["evidence"] = evidence
    _TABLE_WORKER_STATE["events"] = events_by_operation(adt, bounds, evidence=evidence)


def _table_pair_task(task: tuple[str, str, str]) -> tuple[bool, bool]:
    kind, first_name, second_name = task
    return _PAIR_FUNCTIONS[kind](
        _TABLE_WORKER_STATE["adt"],
        _TABLE_WORKER_STATE["events"],
        first_name,
        second_name,
        _TABLE_WORKER_STATE["bounds"],
        _TABLE_WORKER_STATE["evidence"],
    )


def _operation_pair_table(
    adt: ADTSpec,
    bounds: EnumerationBounds | None,
    evidence: EvidenceBase | None,
    jobs: int,
    kind: str,
) -> dict[tuple[str, str], bool]:
    """Shared driver of the three tables: decide each unordered operation
    pair once (both orientations for the asymmetric kinds) and assemble
    the ``(second, first)``-keyed table, optionally fanning the pairs out
    across worker processes."""
    names = adt.operation_names()
    pairs = [
        (names[i], names[j])
        for i in range(len(names))
        for j in range(i, len(names))
    ]
    with ensure_execution_cache():
        if evidence is None:
            evidence = EvidenceBase(adt, bounds=bounds)
        events = events_by_operation(adt, bounds, evidence=evidence)
        if jobs > 1:
            _TABLE_WORKER_STATE["adt"] = adt
            _TABLE_WORKER_STATE["bounds"] = bounds
            _TABLE_WORKER_STATE["evidence"] = evidence
            _TABLE_WORKER_STATE["events"] = events
            try:
                with worker_pool(jobs, _init_table_worker, (adt, bounds)) as pair_map:
                    results = pair_map(
                        _table_pair_task, [(kind, a, b) for a, b in pairs]
                    )
            finally:
                _TABLE_WORKER_STATE.clear()
        else:
            pair_fn = _PAIR_FUNCTIONS[kind]
            results = [
                pair_fn(adt, events, a, b, bounds, evidence) for a, b in pairs
            ]
    table: dict[tuple[str, str], bool] = {}
    for (a, b), (key_ba, key_ab) in zip(pairs, results):
        table[(b, a)] = key_ba
        table[(a, b)] = key_ab
    return table


def forward_commutativity_table(
    adt: ADTSpec,
    bounds: EnumerationBounds | None = None,
    evidence: EvidenceBase | None = None,
    jobs: int = 1,
) -> dict[tuple[str, str], bool]:
    """Weihl's forward commutativity, aggregated to the operation level.

    Two operations forward-commute when *every* pair of their events does;
    the notion applicable with intentions-list recovery.  Keyed
    ``(second, first)`` like all tables (symmetric by construction, so
    each unordered pair is decided once and mirrored).
    """
    return _operation_pair_table(adt, bounds, evidence, jobs, "forward")


def backward_commutativity_table(
    adt: ADTSpec,
    bounds: EnumerationBounds | None = None,
    evidence: EvidenceBase | None = None,
    jobs: int = 1,
) -> dict[tuple[str, str], bool]:
    """Weihl's backward commutativity at the operation level.

    The notion applicable with log-based (undo) recovery: whenever the
    two events can occur consecutively, the reversed order is legal with
    the same effect.  Weaker than forward commutativity (e.g. two
    successful Withdrawals backward-commute — if both applied, funds
    sufficed for both — but do not forward-commute near the balance
    boundary).
    """
    return _operation_pair_table(adt, bounds, evidence, jobs, "backward")


def commutativity_table(
    adt: ADTSpec,
    bounds: EnumerationBounds | None = None,
    evidence: EvidenceBase | None = None,
    jobs: int = 1,
) -> dict[tuple[str, str], bool]:
    """Operation-level commutativity: all invocation pairs commute everywhere.

    The classical yes/no compatibility relation that the paper's ND entries
    generalise.  Keyed ``(second_operation, first_operation)`` (symmetric
    by construction, but keyed both ways for uniform lookups).
    """
    return _operation_pair_table(adt, bounds, evidence, jobs, "invocation")

"""Commutativity — the traditional conflict notion (Section 3).

Three formulations, all decided by bounded enumeration:

* :func:`commute_in_state` / :func:`forward_commute_invocations` — the
  direct state-machine reading on invocations: both execution orders give
  the same final state and each operation the same return value.  ("Two
  operations do not commute if either type of dependency may result if
  they execute concurrently.")
* :func:`forward_commute_events` — Weihl's *forward commutativity* on
  events (operations with results), the notion applicable with
  intentions-list recovery.
* :func:`backward_commute_events` — Weihl's *backward commutativity*,
  applicable with log-based (undo) recovery: whenever the events can occur
  in one order they can be reordered with the same effect.
"""

from __future__ import annotations

from repro.semantics.history import HistoryEvent, replay
from repro.spec.adt import ADTSpec, AbstractState, EnumerationBounds, execute_invocation
from repro.spec.operation import Invocation

__all__ = [
    "commute_in_state",
    "forward_commute_invocations",
    "forward_commute_events",
    "backward_commute_events",
    "commutativity_table",
    "forward_commutativity_table",
    "backward_commutativity_table",
]


def commute_in_state(
    adt: ADTSpec,
    state: AbstractState,
    first: Invocation,
    second: Invocation,
) -> bool:
    """Whether two invocations commute when started in ``state``.

    Requires state equivalence *and* per-invocation return equality across
    the two orders — return inequality is exactly what creates an
    observable difference for the invoking transactions.
    """
    x_then_y_first = execute_invocation(adt, state, first)
    x_then_y_second = execute_invocation(adt, x_then_y_first.post_state, second)
    y_then_x_second = execute_invocation(adt, state, second)
    y_then_x_first = execute_invocation(adt, y_then_x_second.post_state, first)
    return (
        x_then_y_second.post_state == y_then_x_first.post_state
        and x_then_y_first.returned == y_then_x_first.returned
        and x_then_y_second.returned == y_then_x_second.returned
    )


def forward_commute_invocations(
    adt: ADTSpec,
    first: Invocation,
    second: Invocation,
    bounds: EnumerationBounds | None = None,
) -> bool:
    """Whether two invocations commute in *every* enumerated state."""
    return all(
        commute_in_state(adt, state, first, second)
        for state in adt.states(bounds or adt.default_bounds)
    )


def forward_commute_events(
    adt: ADTSpec,
    first: HistoryEvent,
    second: HistoryEvent,
    bounds: EnumerationBounds | None = None,
) -> bool:
    """Weihl's forward commutativity on events.

    For every state in which *each* event is individually legal, both
    orders of the pair must be legal and reach the same state.
    """
    for state in adt.states(bounds or adt.default_bounds):
        first_alone = replay(adt, (first,), state)
        second_alone = replay(adt, (second,), state)
        if first_alone is None or second_alone is None:
            continue
        forward = replay(adt, (first, second), state)
        backward = replay(adt, (second, first), state)
        if forward is None or backward is None or forward != backward:
            return False
    return True


def backward_commute_events(
    adt: ADTSpec,
    first: HistoryEvent,
    second: HistoryEvent,
    bounds: EnumerationBounds | None = None,
) -> bool:
    """Weihl's backward commutativity on events.

    For every state in which ``first . second`` is legal, the reversed
    order must be legal and reach the same state.
    """
    for state in adt.states(bounds or adt.default_bounds):
        forward = replay(adt, (first, second), state)
        if forward is None:
            continue
        backward = replay(adt, (second, first), state)
        if backward is None or backward != forward:
            return False
    return True


def forward_commutativity_table(
    adt: ADTSpec,
    bounds: EnumerationBounds | None = None,
) -> dict[tuple[str, str], bool]:
    """Weihl's forward commutativity, aggregated to the operation level.

    Two operations forward-commute when *every* pair of their events does;
    the notion applicable with intentions-list recovery.  Keyed
    ``(second, first)`` like all tables (symmetric by construction).
    """
    from repro.semantics.history import event_alphabet

    events_by_operation: dict[str, list[HistoryEvent]] = {}
    for event in event_alphabet(adt, bounds):
        events_by_operation.setdefault(event.invocation.operation, []).append(
            event
        )
    names = adt.operation_names()
    table = {}
    for first_name in names:
        for second_name in names:
            table[(second_name, first_name)] = all(
                forward_commute_events(adt, first, second, bounds)
                for first in events_by_operation.get(first_name, [])
                for second in events_by_operation.get(second_name, [])
            )
    return table


def backward_commutativity_table(
    adt: ADTSpec,
    bounds: EnumerationBounds | None = None,
) -> dict[tuple[str, str], bool]:
    """Weihl's backward commutativity at the operation level.

    The notion applicable with log-based (undo) recovery: whenever the
    two events can occur consecutively, the reversed order is legal with
    the same effect.  Weaker than forward commutativity (e.g. two
    successful Withdrawals backward-commute — if both applied, funds
    sufficed for both — but do not forward-commute near the balance
    boundary).
    """
    from repro.semantics.history import event_alphabet

    events_by_operation: dict[str, list[HistoryEvent]] = {}
    for event in event_alphabet(adt, bounds):
        events_by_operation.setdefault(event.invocation.operation, []).append(
            event
        )
    names = adt.operation_names()
    table = {}
    for first_name in names:
        for second_name in names:
            table[(second_name, first_name)] = all(
                backward_commute_events(adt, first, second, bounds)
                for first in events_by_operation.get(first_name, [])
                for second in events_by_operation.get(second_name, [])
            )
    return table


def commutativity_table(
    adt: ADTSpec,
    bounds: EnumerationBounds | None = None,
) -> dict[tuple[str, str], bool]:
    """Operation-level commutativity: all invocation pairs commute everywhere.

    The classical yes/no compatibility relation that the paper's ND entries
    generalise.  Keyed ``(second_operation, first_operation)`` (symmetric
    by construction, but keyed both ways for uniform lookups).
    """
    table: dict[tuple[str, str], bool] = {}
    names = adt.operation_names()
    for first_name in names:
        for second_name in names:
            table[(second_name, first_name)] = all(
                forward_commute_invocations(adt, first, second, bounds)
                for first in adt.invocations_of(first_name, bounds)
                for second in adt.invocations_of(second_name, bounds)
            )
    return table

"""Serial dependency vs. recoverability (Section 3's equivalence claim).

"Serial dependency and recoverability can be shown to be equivalent
semantic notions in the sense that they allow the same set of valid
histories given a particular recovery mechanism.  ...  The difference
between these two semantic notions is in the assumption of the underlying
recovery mechanism."

The empirical form of the claim checked here, at the invocation level
over bounded state spaces:

* **Containment** (must hold exactly): every recoverability conflict —
  a state in which the follower's return value is perturbed by the first
  operation — yields an invalidation witness for the serial-dependency
  relation (take ``h1 = h2 = ε`` at that state).
* **Residual**: serial dependency may flag strictly more pairs, because
  its history windows (``h1``/``h2``) let *later* operations observe the
  perturbation — intentions-list recovery defers effects, so conflicts
  surface at validation time through any downstream observer.  These
  extra pairs are exactly the recovery-mechanism difference the paper
  describes; they are counted and reported, never hidden.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.semantics.recoverability import recoverable
from repro.semantics.serial_dependency import find_invocation_invalidation
from repro.spec.adt import ADTSpec, EnumerationBounds
from repro.spec.operation import Invocation

__all__ = ["EquivalenceReport", "compare_relations"]


@dataclass(frozen=True)
class EquivalenceReport:
    """Pairwise comparison of the two conflict relations."""

    total: int
    both_conflict: int
    neither_conflicts: int
    #: Pairs flagged by serial dependency only (history-window conflicts).
    sd_only: tuple[tuple[Invocation, Invocation], ...]
    #: Pairs flagged by recoverability only — the containment violation
    #: set; must be empty for the paper's claim to hold.
    rec_only: tuple[tuple[Invocation, Invocation], ...]

    @property
    def containment_holds(self) -> bool:
        """Whether every recoverability conflict is an SD invalidation."""
        return not self.rec_only

    @property
    def agreement_ratio(self) -> float:
        """Fraction of invocation pairs with identical verdicts."""
        agreeing = self.both_conflict + self.neither_conflicts
        return agreeing / self.total if self.total else 1.0

    def summary(self) -> str:
        return (
            f"{self.total} invocation pairs: {self.both_conflict} conflict in "
            f"both, {self.neither_conflicts} in neither, "
            f"{len(self.sd_only)} SD-only (history windows), "
            f"{len(self.rec_only)} REC-only (containment "
            f"{'holds' if self.containment_holds else 'VIOLATED'})"
        )


def compare_relations(
    adt: ADTSpec,
    max_h1: int = 1,
    max_h2: int = 1,
    bounds: EnumerationBounds | None = None,
) -> EquivalenceReport:
    """Compare the two conflict relations over all invocation pairs."""
    invocations = adt.invocations(bounds)
    total = 0
    both = neither = 0
    sd_only = []
    rec_only = []
    for first in invocations:
        for second in invocations:
            total += 1
            rec_conflict = not recoverable(adt, second, first, bounds)
            sd_conflict = (
                find_invocation_invalidation(
                    adt, first, second, max_h1, max_h2, bounds
                )
                is not None
            )
            if rec_conflict and sd_conflict:
                both += 1
            elif not rec_conflict and not sd_conflict:
                neither += 1
            elif sd_conflict:
                sd_only.append((first, second))
            else:
                rec_only.append((first, second))
    return EquivalenceReport(
        total=total,
        both_conflict=both,
        neither_conflicts=neither,
        sd_only=tuple(sd_only),
        rec_only=tuple(rec_only),
    )

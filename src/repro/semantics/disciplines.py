"""The two recovery disciplines of Section 3, made executable.

The paper: serial dependency "is feasible only if intentions lists based
recovery is used", while recoverability "assumes a flexible recovery
technique for handling the abortion of operations" (in-place execution
with undo), and the two notions "allow the same set of valid histories
given a particular recovery mechanism".

This module runs two-transaction interleavings under both disciplines and
extracts the *valid committed histories* each admits:

* **In-place / recoverability** (:func:`recoverability_outcomes`):
  operations execute immediately against the shared state; an operation
  whose return value would be perturbed by the other transaction's
  uncommitted work (the dynamic recoverability test) blocks, rejecting
  the interleaving.  Admitted runs commit in any order whose serial
  replay reproduces the observed returns.
* **Intentions lists / serial dependency**
  (:func:`intentions_outcomes`): operations are deferred; each
  transaction observes only the committed state plus its own intentions.
  At commit, a transaction validates — its observed returns must replay
  against the now-committed state (the serial-dependency check) — so the
  admitted commit orders are interleaving-independent.

A *valid history* here is a committed serial outcome: the transaction
order together with each transaction's operations and observed returns.
Because both disciplines only commit return values consistent with the
chosen serial order, every admitted outcome equals the serial execution
in that order — which is exactly the paper's equivalence: over all
interleavings, both disciplines admit the same set of serial histories,
and they differ only in *which interleavings* realise them (experiment
X6 reports the counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Iterator, Sequence

from repro.spec.adt import ADTSpec, AbstractState, execute_invocation
from repro.spec.operation import Invocation

__all__ = [
    "SerialOutcome",
    "interleavings",
    "serial_outcome",
    "recoverability_outcomes",
    "intentions_outcomes",
    "DisciplineReport",
    "compare_disciplines",
]


@dataclass(frozen=True)
class SerialOutcome:
    """One committed serial history of two transactions.

    ``order`` is the commit order as transaction indices (0/1); the
    per-transaction histories are the operations with the returns the
    serial execution produces.  Hashable so outcome sets can be compared.
    """

    order: tuple[int, ...]
    histories: tuple[tuple[tuple[Invocation, object], ...], ...]


def interleavings(
    first: Sequence[Invocation], second: Sequence[Invocation]
) -> Iterator[tuple[int, ...]]:
    """All merge patterns of two programs, as sequences of txn indices."""
    total = len(first) + len(second)
    for positions in combinations(range(total), len(first)):
        pattern = [1] * total
        for position in positions:
            pattern[position] = 0
        yield tuple(pattern)


def serial_outcome(
    adt: ADTSpec,
    start: AbstractState,
    programs: Sequence[Sequence[Invocation]],
    order: tuple[int, ...],
) -> SerialOutcome:
    """The (unique) serial history of running the programs in ``order``."""
    state = start
    histories: list[tuple[tuple[Invocation, object], ...]] = [(), ()]
    for txn in order:
        events = []
        for invocation in programs[txn]:
            execution = execute_invocation(adt, state, invocation)
            events.append((invocation, execution.returned))
            state = execution.post_state
        histories[txn] = tuple(events)
    return SerialOutcome(order=order, histories=tuple(histories))


def recoverability_outcomes(
    adt: ADTSpec,
    start: AbstractState,
    programs: Sequence[Sequence[Invocation]],
    pattern: tuple[int, ...],
) -> set[SerialOutcome]:
    """Outcomes the in-place/recoverability discipline admits for one
    interleaving.

    Execution proceeds in the interleaved order; before each operation the
    dynamic recoverability test runs (would the return value differ
    without the other transaction's preceding operations?).  A failing
    test means the operation would block — the interleaving is rejected.
    Otherwise both commit orders are tried; each order whose serial replay
    reproduces the observed returns is an admitted valid history.
    """
    cursors = [0, 0]
    state = start
    observed: list[list[tuple[Invocation, object]]] = [[], []]
    executed: list[tuple[int, Invocation]] = []
    for txn in pattern:
        invocation = programs[txn][cursors[txn]]
        cursors[txn] += 1
        actual = execute_invocation(adt, state, invocation)
        # Dynamic recoverability: replay without the other transaction.
        shadow_state = start
        for earlier_txn, earlier_invocation in executed:
            if earlier_txn != txn:
                continue
            shadow_state = execute_invocation(
                adt, shadow_state, earlier_invocation
            ).post_state
        shadow = execute_invocation(adt, shadow_state, invocation)
        if shadow.returned != actual.returned:
            return set()  # the operation would block: interleaving rejected
        observed[txn].append((invocation, actual.returned))
        executed.append((txn, invocation))
        state = actual.post_state
    admitted = set()
    for order in ((0, 1), (1, 0)):
        candidate = serial_outcome(adt, start, programs, order)
        if candidate.histories == (tuple(observed[0]), tuple(observed[1])):
            admitted.add(candidate)
    return admitted


def intentions_outcomes(
    adt: ADTSpec,
    start: AbstractState,
    programs: Sequence[Sequence[Invocation]],
) -> set[SerialOutcome]:
    """Outcomes the intentions-list/serial-dependency discipline admits.

    Deferred updates make execution interleaving-independent: each
    transaction observes the committed state plus its own intentions.  A
    commit order is admitted when every transaction's observed returns
    survive validation against the state left by its predecessors —
    which is the serial-dependency check ("does some earlier operation
    invalidate mine?") run at commitment.
    """
    own_view: list[tuple[tuple[Invocation, object], ...]] = []
    for program in programs:
        state = start
        events = []
        for invocation in program:
            execution = execute_invocation(adt, state, invocation)
            events.append((invocation, execution.returned))
            state = execution.post_state
        own_view.append(tuple(events))
    admitted = set()
    for order in ((0, 1), (1, 0)):
        candidate = serial_outcome(adt, start, programs, order)
        # Validation: each transaction's pre-commit observations must
        # survive; the first committer trivially validates (it saw the
        # committed state), the follower validates iff its own-view
        # returns match the serial replay after the first.
        if candidate.histories[order[1]] == own_view[order[1]]:
            admitted.add(candidate)
    return admitted


@dataclass(frozen=True)
class DisciplineReport:
    """Comparison of the two disciplines over every interleaving."""

    program_pairs: int
    interleavings_total: int
    recoverability_admitted: int
    intentions_admitted_orders: int
    #: Valid-history sets over all interleavings, per discipline.
    recoverability_histories: frozenset[SerialOutcome]
    intentions_histories: frozenset[SerialOutcome]

    @property
    def same_valid_histories(self) -> bool:
        """The paper's equivalence claim, empirically."""
        return self.recoverability_histories == self.intentions_histories

    def summary(self) -> str:
        relation = "==" if self.same_valid_histories else "!="
        return (
            f"{self.program_pairs} program pairs, "
            f"{self.interleavings_total} interleavings: "
            f"valid-history sets {relation} "
            f"({len(self.recoverability_histories)} recoverability vs "
            f"{len(self.intentions_histories)} intentions); "
            f"{self.recoverability_admitted} interleavings admitted in "
            f"place, {self.intentions_admitted_orders} commit orders "
            "validated under intentions lists"
        )


def compare_disciplines(
    adt: ADTSpec,
    start: AbstractState,
    program_pairs: Iterable[tuple[Sequence[Invocation], Sequence[Invocation]]],
) -> DisciplineReport:
    """Run every interleaving of every program pair under both disciplines."""
    pairs = list(program_pairs)
    rec_histories: set[SerialOutcome] = set()
    int_histories: set[SerialOutcome] = set()
    interleavings_total = 0
    rec_admitted = 0
    int_orders = 0
    for first, second in pairs:
        programs = (tuple(first), tuple(second))
        intentions = intentions_outcomes(adt, start, programs)
        int_histories |= intentions
        int_orders += len(intentions)
        for pattern in interleavings(first, second):
            interleavings_total += 1
            outcomes = recoverability_outcomes(adt, start, programs, pattern)
            if outcomes:
                rec_admitted += 1
            rec_histories |= outcomes
    return DisciplineReport(
        program_pairs=len(pairs),
        interleavings_total=interleavings_total,
        recoverability_admitted=rec_admitted,
        intentions_admitted_orders=int_orders,
        recoverability_histories=frozenset(rec_histories),
        intentions_histories=frozenset(int_histories),
    )

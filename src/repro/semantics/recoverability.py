"""Recoverability [Badrinath & Ramamritham] (Section 3).

"An operation ``o1`` is *recoverable* relative to another operation
``o2``, if ``o2`` returns the same value whether or not ``o1`` is executed
immediately before ``o2``.  Transactions invoking ``o1`` and ``o2`` are
required to commit in the order of invocation."

Here the relation is oriented the library's usual way:
``recoverable(adt, second, first)`` asks whether the *following* operation
``second`` returns the same value whether or not ``first`` ran immediately
before it — decided over every enumerated state.  When it holds, the
follower may execute concurrently subject only to commit ordering (a CD);
when it fails, the follower can observe the first operation's effect (an
AD, forcing the abort-cascade discipline).

Every function accepts a prebuilt
:class:`~repro.perf.evidence.EvidenceBase`; the table additionally runs
behind :func:`~repro.perf.cache.ensure_execution_cache`, so standalone
calls memoize their own redundancy and calls inside a derivation join its
shared cache.
"""

from __future__ import annotations

from repro.core.dependency import Dependency
from repro.perf.cache import ensure_execution_cache
from repro.perf.evidence import EvidenceBase
from repro.spec.adt import ADTSpec, AbstractState, EnumerationBounds, execute_invocation
from repro.spec.operation import Invocation

__all__ = [
    "recoverable_in_state",
    "recoverable",
    "recoverable_operations",
    "recoverability_table",
]


def recoverable_in_state(
    adt: ADTSpec,
    state: AbstractState,
    second: Invocation,
    first: Invocation,
    evidence: EvidenceBase | None = None,
) -> bool:
    """Whether ``second``'s return value in ``state`` survives ``first``."""
    if evidence is not None:
        direct = evidence.execute(state, second).returned
        after_first = evidence.successor(state, first)
        shadowed = evidence.execute(after_first, second).returned
        return direct == shadowed
    direct = execute_invocation(adt, state, second).returned
    after_first = execute_invocation(adt, state, first).post_state
    shadowed = execute_invocation(adt, after_first, second).returned
    return direct == shadowed


def recoverable(
    adt: ADTSpec,
    second: Invocation,
    first: Invocation,
    bounds: EnumerationBounds | None = None,
    evidence: EvidenceBase | None = None,
) -> bool:
    """Whether ``second`` is recoverable relative to ``first`` in every state."""
    if evidence is not None:
        states = evidence.states()
    else:
        states = adt.states(bounds or adt.default_bounds)
    return all(
        recoverable_in_state(adt, state, second, first, evidence=evidence)
        for state in states
    )


def recoverable_operations(
    adt: ADTSpec,
    second_operation: str,
    first_operation: str,
    bounds: EnumerationBounds | None = None,
    evidence: EvidenceBase | None = None,
) -> bool:
    """Operation-level recoverability: every invocation pair is recoverable."""
    return all(
        recoverable(adt, second, first, bounds, evidence=evidence)
        for second in adt.invocations_of(second_operation, bounds)
        for first in adt.invocations_of(first_operation, bounds)
    )


def recoverability_table(
    adt: ADTSpec,
    bounds: EnumerationBounds | None = None,
    evidence: EvidenceBase | None = None,
) -> dict[tuple[str, str], Dependency]:
    """The compatibility table induced by recoverability alone.

    ``(second, first) -> Dependency``: AD when the follower's return value
    can be perturbed by the first operation (the follower would observe
    it), otherwise CD when either operation modifies state (commit ordering
    still required), otherwise ND.  This is the "exactly the semantics
    captured by recoverability" reading the paper gives to its Table 4.
    """
    table: dict[tuple[str, str], Dependency] = {}
    with ensure_execution_cache():
        if evidence is None:
            evidence = EvidenceBase(adt, bounds=bounds)
        states = evidence.states()
        modifies: dict[str, bool] = {}
        for name in adt.operation_names():
            modifies[name] = any(
                not evidence.execute(state, invocation).is_identity
                for state in states
                for invocation in adt.invocations_of(name, bounds)
            )
        for first_name in adt.operation_names():
            for second_name in adt.operation_names():
                if not recoverable_operations(
                    adt, second_name, first_name, bounds, evidence=evidence
                ):
                    table[(second_name, first_name)] = Dependency.AD
                elif modifies[first_name] or modifies[second_name]:
                    table[(second_name, first_name)] = Dependency.CD
                else:
                    table[(second_name, first_name)] = Dependency.ND
    return table

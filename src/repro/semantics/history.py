"""Operation histories and legality (Section 3 prerequisites).

The semantic notions the paper unifies — forward/backward commutativity
[Weihl 1988], serial dependency [Herlihy & Weihl 1988] and recoverability
[Badrinath & Ramamritham] — are all stated over *histories*: sequences of
operations **with their return values**.  A history is *legal* for an
object when replaying it from a given state reproduces exactly the
recorded return values (the state-machine reading of "legal sequence").

Because our operation specifications are deterministic and total, each
state and invocation determines exactly one event; legal histories are
therefore enumerable by depth-first execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.spec.adt import ADTSpec, AbstractState, EnumerationBounds, execute_invocation
from repro.spec.operation import Invocation
from repro.spec.returnvalue import ReturnValue

__all__ = [
    "HistoryEvent",
    "History",
    "replay",
    "is_legal",
    "legal_histories",
    "event_alphabet",
]


@dataclass(frozen=True)
class HistoryEvent:
    """One operation instance: an invocation together with its return value."""

    invocation: Invocation
    returned: ReturnValue

    def render(self) -> str:
        ret = self.returned
        shown = ret.outcome if ret.has_outcome else repr(ret.result)
        return f"{self.invocation.render()}:{shown}"

    def __repr__(self) -> str:
        return self.render()


#: A history is a sequence of events.
History = tuple[HistoryEvent, ...]


def replay(
    adt: ADTSpec, history: Sequence[HistoryEvent], start: AbstractState
) -> AbstractState | None:
    """Replay a history from ``start``.

    Returns the final state when every event's recorded return value
    matches the replayed execution, or ``None`` when the history is not
    legal from ``start``.
    """
    state = start
    for event in history:
        execution = execute_invocation(adt, state, event.invocation)
        if execution.returned != event.returned:
            return None
        state = execution.post_state
    return state


def is_legal(
    adt: ADTSpec, history: Sequence[HistoryEvent], start: AbstractState | None = None
) -> bool:
    """Whether a history is legal from ``start`` (default: the initial state)."""
    origin = adt.initial_state() if start is None else start
    return replay(adt, history, origin) is not None


def legal_histories(
    adt: ADTSpec,
    max_length: int,
    start: AbstractState | None = None,
    bounds: EnumerationBounds | None = None,
) -> Iterator[tuple[History, AbstractState]]:
    """Enumerate every legal history up to ``max_length`` events.

    Yields ``(history, final_state)`` pairs, including the empty history.
    Determinism of the specs means the branching factor is exactly the
    number of invocations, so the enumeration is |invocations|^length.
    """
    origin = adt.initial_state() if start is None else start
    invocations = adt.invocations(bounds)

    def extend(prefix: History, state: AbstractState) -> Iterator[tuple[History, AbstractState]]:
        yield prefix, state
        if len(prefix) >= max_length:
            return
        for invocation in invocations:
            execution = execute_invocation(adt, state, invocation)
            event = HistoryEvent(invocation, execution.returned)
            yield from extend(prefix + (event,), execution.post_state)

    return extend((), origin)


def event_alphabet(
    adt: ADTSpec, bounds: EnumerationBounds | None = None, evidence=None
) -> set[HistoryEvent]:
    """Every event an ADT can exhibit over its bounded state space.

    The alphabet over which the serial-dependency relation quantifies: for
    each invocation, each return value it produces in some enumerated
    state.  With an :class:`~repro.perf.evidence.EvidenceBase` the events
    are read off its precomputed execution matrix.
    """
    if evidence is not None:
        return evidence.event_alphabet()
    events = set()
    for state in adt.states(bounds or adt.default_bounds):
        for invocation in adt.invocations(bounds):
            execution = execute_invocation(adt, state, invocation)
            events.add(HistoryEvent(invocation, execution.returned))
    return events

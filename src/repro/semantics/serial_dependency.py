"""Serial dependency relations [Herlihy & Weihl 1988] (Section 3).

"An operation ``o1`` conflicts with another operation ``o2`` according to
a serial dependency relation if ``o1`` can invalidate ``o2`` by appearing
earlier in a serial sequence.  Specifically, if there exist operation
sequences ``h1`` and ``h2`` such that ``h1.o2.h2`` and ``o1.h1.h2`` are
legal sequences, but ``o1.h1.o2.h2`` is not, then ``o1`` invalidates
``o2`` and ``o2`` has a serial dependency on ``o1``."

Operations here are *events* (invocations with recorded return values);
legality is replay-legality from the object's initial state.  The
existential quantifiers over ``h1`` and ``h2`` are decided by bounded
enumeration; determinism keeps the search tractable (from any state each
invocation yields exactly one legal event).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.cache import ensure_execution_cache
from repro.semantics.history import (
    History,
    HistoryEvent,
    is_legal,
    legal_histories,
    replay,
)
from repro.spec.adt import ADTSpec, EnumerationBounds

__all__ = ["InvalidationWitness", "find_invalidation", "invalidates", "serial_dependency_relation"]


@dataclass(frozen=True)
class InvalidationWitness:
    """A concrete (h1, h2) pair witnessing that ``first`` invalidates ``second``."""

    first: HistoryEvent
    second: HistoryEvent
    h1: History
    h2: History

    def render(self) -> str:
        h1 = ".".join(e.render() for e in self.h1) or "ε"
        h2 = ".".join(e.render() for e in self.h2) or "ε"
        return (
            f"{self.first.render()} invalidates {self.second.render()} "
            f"with h1={h1}, h2={h2}"
        )


def find_invalidation(
    adt: ADTSpec,
    first: HistoryEvent,
    second: HistoryEvent,
    max_h1: int = 2,
    max_h2: int = 2,
    bounds: EnumerationBounds | None = None,
) -> InvalidationWitness | None:
    """Search for a witness that ``first`` (o1) invalidates ``second`` (o2).

    Enumerates legal ``h1`` from the initial state (up to ``max_h1``
    events); for each, requires ``h1.o2`` and ``o1.h1`` legal, then
    enumerates ``h2`` continuations of ``h1.o2`` (up to ``max_h2``) such
    that ``o1.h1.h2`` is also legal, and reports the first combination for
    which ``o1.h1.o2.h2`` is *not* legal.
    """
    initial = adt.initial_state()
    with ensure_execution_cache():
        return _find_invalidation(
            adt, first, second, max_h1, max_h2, bounds, initial
        )


def _find_invalidation(
    adt: ADTSpec,
    first: HistoryEvent,
    second: HistoryEvent,
    max_h1: int,
    max_h2: int,
    bounds: EnumerationBounds | None,
    initial,
) -> InvalidationWitness | None:
    for h1, state_after_h1 in legal_histories(adt, max_h1, bounds=bounds):
        # h1 . o2 legal?
        if replay(adt, (second,), state_after_h1) is None:
            continue
        # o1 . h1 legal?
        after_first = replay(adt, (first,), initial)
        if after_first is None:
            continue
        if replay(adt, h1, after_first) is None:
            continue
        # Enumerate h2 as continuations of h1 . o2 (their natural returns).
        state_after_h1_o2 = replay(adt, (second,), state_after_h1)
        assert state_after_h1_o2 is not None
        for h2, _ in legal_histories(
            adt, max_h2, start=state_after_h1_o2, bounds=bounds
        ):
            # o1 . h1 . h2 legal with the same h2 events?
            if not is_legal(adt, (first, *h1, *h2), start=initial):
                continue
            # Is o1 . h1 . o2 . h2 legal?  If not: invalidation.
            if not is_legal(adt, (first, *h1, second, *h2), start=initial):
                return InvalidationWitness(first, second, h1, h2)
    return None


def invalidates(
    adt: ADTSpec,
    first: HistoryEvent,
    second: HistoryEvent,
    max_h1: int = 2,
    max_h2: int = 2,
    bounds: EnumerationBounds | None = None,
) -> bool:
    """Whether ``first`` invalidates ``second`` within the search bounds."""
    return (
        find_invalidation(adt, first, second, max_h1, max_h2, bounds) is not None
    )


def find_invocation_invalidation(
    adt: ADTSpec,
    first,
    second,
    max_h1: int = 1,
    max_h2: int = 1,
    bounds: EnumerationBounds | None = None,
) -> InvalidationWitness | None:
    """Invocation-level invalidation search over every reachable base state.

    The paper's definition places ``o1`` at the very front of the history,
    i.e. in the initial state; for a fair comparison with recoverability
    (which quantifies over *all* states) the history is generalised with a
    prefix ``h0`` reaching an arbitrary enumerated state — equivalently,
    the search below runs the o1/h1/o2/h2 conditions from every state.
    Events are instantiated with their natural (replay-determined) return
    values.
    """
    with ensure_execution_cache():
        return _find_invocation_invalidation(
            adt, first, second, max_h1, max_h2, bounds
        )


def _find_invocation_invalidation(adt, first, second, max_h1, max_h2, bounds):
    from repro.spec.adt import execute_invocation

    for base in adt.states(bounds or adt.default_bounds):
        first_execution = execute_invocation(adt, base, first)
        first_event = HistoryEvent(first, first_execution.returned)
        for h1, state_after_h1 in legal_histories(
            adt, max_h1, start=base, bounds=bounds
        ):
            second_execution = execute_invocation(adt, state_after_h1, second)
            second_event = HistoryEvent(second, second_execution.returned)
            # o1 . h1 legal (h1 replays identically after o1)?
            after_o1_h1 = replay(adt, h1, first_execution.post_state)
            if after_o1_h1 is None:
                continue
            for h2, _ in legal_histories(
                adt, max_h2, start=second_execution.post_state, bounds=bounds
            ):
                # o1 . h1 . h2 legal with the same h2 events?
                if replay(adt, h2, after_o1_h1) is None:
                    continue
                # o1 . h1 . o2 . h2 legal?  If not: invalidation.
                if replay(adt, (second_event, *h2), after_o1_h1) is None:
                    return InvalidationWitness(first_event, second_event, h1, h2)
    return None


def serial_dependency_relation(
    adt: ADTSpec,
    events: set[HistoryEvent] | None = None,
    max_h1: int = 1,
    max_h2: int = 1,
    bounds: EnumerationBounds | None = None,
) -> dict[tuple[HistoryEvent, HistoryEvent], bool]:
    """The full event-level serial dependency relation.

    Keys are ``(second, first)`` — "``second`` has a serial dependency on
    ``first``" — matching the (invoked, executing) orientation used by the
    compatibility tables.  ``events`` defaults to the ADT's full bounded
    event alphabet; the history bounds default to 1 to keep the relation
    computable in tests (raise them for stronger evidence).
    """
    from repro.semantics.history import event_alphabet

    with ensure_execution_cache():
        alphabet = events if events is not None else event_alphabet(adt, bounds)
        relation = {}
        for first in sorted(alphabet, key=lambda e: e.render()):
            for second in sorted(alphabet, key=lambda e: e.render()):
                relation[(second, first)] = invalidates(
                    adt, first, second, max_h1, max_h2, bounds
                )
    return relation

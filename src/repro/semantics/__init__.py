"""The Section-3 semantic notions: commutativity, serial dependency,
recoverability — implemented over the same executable specifications as
the methodology, so the unification claims can be tested empirically.
"""

from repro.semantics.commutativity import (
    backward_commute_events,
    backward_commutativity_table,
    commutativity_table,
    commute_in_state,
    forward_commute_events,
    forward_commute_invocations,
    forward_commutativity_table,
)
from repro.semantics.disciplines import (
    DisciplineReport,
    SerialOutcome,
    compare_disciplines,
    intentions_outcomes,
    interleavings,
    recoverability_outcomes,
    serial_outcome,
)
from repro.semantics.equivalence import EquivalenceReport, compare_relations
from repro.semantics.history import (
    History,
    HistoryEvent,
    event_alphabet,
    is_legal,
    legal_histories,
    replay,
)
from repro.semantics.recoverability import (
    recoverability_table,
    recoverable,
    recoverable_in_state,
    recoverable_operations,
)
from repro.semantics.serial_dependency import (
    InvalidationWitness,
    find_invalidation,
    invalidates,
    serial_dependency_relation,
)

__all__ = [
    "History",
    "HistoryEvent",
    "replay",
    "is_legal",
    "legal_histories",
    "event_alphabet",
    "commute_in_state",
    "forward_commute_invocations",
    "forward_commute_events",
    "backward_commute_events",
    "commutativity_table",
    "forward_commutativity_table",
    "backward_commutativity_table",
    "invalidates",
    "find_invalidation",
    "serial_dependency_relation",
    "InvalidationWitness",
    "recoverable",
    "recoverable_in_state",
    "recoverable_operations",
    "recoverability_table",
    "compare_relations",
    "EquivalenceReport",
    "DisciplineReport",
    "SerialOutcome",
    "compare_disciplines",
    "intentions_outcomes",
    "recoverability_outcomes",
    "interleavings",
    "serial_outcome",
]

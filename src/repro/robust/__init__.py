"""Robustness layer: fault injection, crash recovery, invariant monitoring.

Three pillars over the deterministic scheduler stack (see
``docs/ROBUSTNESS.md``):

* :mod:`repro.robust.faults` — seeded, reproducible fault plans consulted
  at named fault points by the harness and simulator;
* :mod:`repro.robust.decision_log` — a write-ahead record of every
  scheduler decision, and crash recovery by verified replay;
* :mod:`repro.robust.monitor` — live invariant auditing with a
  degradation ladder (quarantine the fast paths, then fall back to the
  bit-parity reference scheduler);
* :mod:`repro.robust.crash` / :mod:`repro.robust.chaos` — the
  crash-point sweep and the chaos campaign drivers built on them.
"""

from repro.robust.chaos import render_report, run_chaos
from repro.robust.crash import (
    CrashPointResult,
    CrashSweepResult,
    baseline_run,
    crash_sweep,
)
from repro.robust.decision_log import (
    Decision,
    DecisionLog,
    LoggingScheduler,
    recover,
    replay_into,
)
from repro.robust.faults import (
    FAULT_KINDS,
    MESSAGE_FAULT_KINDS,
    FaultPlan,
    FaultRecord,
    FaultSpec,
    RobustStats,
)
from repro.robust.monitor import INVARIANTS, MonitoredScheduler

__all__ = [
    "FAULT_KINDS",
    "INVARIANTS",
    "MESSAGE_FAULT_KINDS",
    "CrashPointResult",
    "CrashSweepResult",
    "Decision",
    "DecisionLog",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "LoggingScheduler",
    "MonitoredScheduler",
    "RobustStats",
    "baseline_run",
    "crash_sweep",
    "recover",
    "render_report",
    "replay_into",
    "run_chaos",
]

"""Crash-point sweep: prove recovery at *every* decision point.

The strongest recovery claim the decision log supports is not "a crashed
run can continue" but "a crashed-and-recovered run is *indistinguishable*
from one that never crashed".  The sweep proves it exhaustively for a
workload: first an uncrashed baseline run records its full
:class:`~repro.cc.harness.Transcript` and counts its decision points
(every ``request`` / ``try_commit`` / voluntary ``abort``); then, for
each decision point ``k``, a fresh run is killed immediately before
decision ``k`` — the scheduler is discarded and rebuilt from the
decision log by verified replay — and driven to completion.  Each
recovered run must produce a transcript **bit-identical** to the
baseline (operation decisions, dependency edges, final state, statuses
and the seed-comparable counters) and a committed history that passes
the serializability checker.

Because the harness and schedulers are deterministic, a sweep is a pure
function of ``(adt, table, workload, policy)``; its report is therefore
byte-stable and diffable across commits, which is what the ``chaos``
CLI and the CI ``chaos-smoke`` job rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.harness import Transcript, drive
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.serializability import is_serializable
from repro.robust.decision_log import LoggingScheduler

__all__ = ["CrashPointResult", "CrashSweepResult", "baseline_run", "crash_sweep"]


@dataclass(frozen=True)
class CrashPointResult:
    """Outcome of crashing at one decision point and recovering."""

    #: The decision point the crash preceded (0-based).
    index: int
    #: Decision-log records available to the recovery.
    log_records: int
    #: Continuation transcript equals the uncrashed baseline, bit for bit.
    transcript_identical: bool
    #: The recovered run's committed history admits a serial witness.
    serializable: bool

    @property
    def passed(self) -> bool:
        return self.transcript_identical and self.serializable

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "log_records": self.log_records,
            "transcript_identical": self.transcript_identical,
            "serializable": self.serializable,
        }


@dataclass(frozen=True)
class CrashSweepResult:
    """One workload's complete sweep over every decision point."""

    policy: str
    decision_points: int
    results: tuple[CrashPointResult, ...]

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> tuple[CrashPointResult, ...]:
        return tuple(result for result in self.results if not result.passed)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "decision_points": self.decision_points,
            "passed": self.passed,
            "failures": [result.to_dict() for result in self.failures],
        }


def baseline_run(
    adt,
    table,
    workload,
    policy: str = "optimistic",
    object_name: str = "obj",
    concurrency: int | None = None,
) -> tuple[Transcript, int]:
    """The uncrashed reference: ``(transcript, decision point count)``."""
    count = 0

    def tally(index, _scheduler):
        nonlocal count
        count = index + 1
        return None

    transcript = drive(
        TableDrivenScheduler(policy=policy),
        adt,
        table,
        workload,
        object_name=object_name,
        concurrency=concurrency,
        checkpoint=tally,
    )
    return transcript, count


def crash_sweep(
    adt,
    table,
    workload,
    policy: str = "optimistic",
    object_name: str = "obj",
    concurrency: int | None = None,
    crash_points: list[int] | None = None,
) -> CrashSweepResult:
    """Crash before every decision point (or just ``crash_points``) and
    verify each recovered continuation against the uncrashed baseline."""
    baseline, decisions = baseline_run(
        adt,
        table,
        workload,
        policy=policy,
        object_name=object_name,
        concurrency=concurrency,
    )
    points = (
        list(range(decisions))
        if crash_points is None
        else [point for point in crash_points if 0 <= point < decisions]
    )
    results = []
    for point in points:
        final = {}
        records_at_crash = 0

        def crash_at(index, scheduler, _point=point):
            nonlocal records_at_crash
            final["scheduler"] = scheduler
            if index != _point:
                return None
            # The crash: the live scheduler is abandoned wholesale and a
            # replacement is rebuilt from the decision log by verified
            # replay.  Nothing of the old instance is reused.
            records_at_crash = len(scheduler.log)
            reborn = scheduler.reincarnate()
            final["scheduler"] = reborn
            return reborn

        transcript = drive(
            LoggingScheduler(TableDrivenScheduler(policy=policy)),
            adt,
            table,
            workload,
            object_name=object_name,
            concurrency=concurrency,
            checkpoint=crash_at,
        )
        results.append(
            CrashPointResult(
                index=point,
                log_records=records_at_crash,
                transcript_identical=transcript == baseline,
                serializable=is_serializable(final["scheduler"]),
            )
        )
    return CrashSweepResult(
        policy=policy,
        decision_points=decisions,
        results=tuple(results),
    )

"""Crash recovery via a durable decision log.

The schedulers in this repository are deterministic: the same sequence
of ``register_object`` / ``begin`` / ``request`` / ``try_commit`` /
``abort`` calls always produces the same grants, the same dependency
edges, the same object logs and the same counters.  That turns crash
recovery into log replay: record every call with its observed outcome
(the **decision log**), and a crashed scheduler is reconstructed —
dependency graph, per-object operation logs, shadow/flat-table caches
and statistics, all of it — by replaying the log into a fresh instance
and *verifying* each replayed outcome against the recorded one.  A
mismatch means the log is corrupt (or determinism was lost) and raises
:class:`~repro.errors.RecoveryError` instead of silently diverging.

Three pieces:

* :class:`DecisionLog` — the append-only record.  In memory it keeps
  live object references (ADT specs, tables) so replay needs no
  re-derivation; attached to a JSONL stream it additionally persists a
  durable, self-describing form that :meth:`DecisionLog.load` restores
  with a resolver for the non-serialisable objects.
* :class:`LoggingScheduler` — a transparent wrapper that appends one
  record per completed call and forwards everything else.  Crashing
  between calls loses nothing that was not already re-derivable; a call
  in flight at the crash is equivalent to the crash having struck just
  before it (its effects die with the process).
* :func:`recover` / :func:`replay_into` — rebuild a scheduler from the
  log.  ``recover`` builds the default
  :class:`~repro.cc.scheduler.TableDrivenScheduler`; ``replay_into``
  replays into any scheduler exposing the same surface (the degradation
  path replays into a :class:`~repro.cc.reference.ReferenceScheduler`).
"""

from __future__ import annotations

import ast
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import IO, Callable

from repro.errors import RecoveryError
from repro.spec.operation import Invocation

__all__ = [
    "Decision",
    "DecisionLog",
    "LoggingScheduler",
    "apply_record",
    "recover",
    "replay_into",
]


@dataclass(frozen=True)
class Decision:
    """One appended record: a completed scheduler call and its outcome.

    ``kind`` is one of ``register``, ``begin``, ``request``, ``commit``,
    ``abort``, ``policy`` (a per-object discipline switch — replayed so
    recovered schedulers and backup replicas re-decide subsequent
    requests under the same discipline the original run used) — or a
    ``2pc-``-prefixed protocol kind appended by the distributed layer
    (:mod:`repro.dist`), which scheduler replay skips.
    Only the fields meaningful for the kind are populated; everything is
    a JSON-friendly primitive so a record serialises to one JSONL line
    via :meth:`to_dict`.
    """

    kind: str
    txn: int = -1
    object_name: str = ""
    operation: str = ""
    args: tuple = ()
    #: request: ``executed``/``blocked``/``aborted``;
    #: commit: ``committed``/``waiting``/``must-abort``.
    outcome: str = ""
    #: ``repr`` of the returned value of an executed request (verified on
    #: replay) or of the registered object's initial state.
    returned: str = ""
    reason: str = ""
    adt: str = ""
    #: Sorted blocker set of a ``blocked`` request or ``waiting`` commit.
    #: Verified on replay: a matching outcome alone cannot certify the
    #: wait graph, and a divergent graph picks divergent deadlock
    #: victims — silently, since victim aborts happen inside the call.
    blocked_on: tuple = ()
    #: JSON payload of a ``2pc-`` protocol record (gtxn mapping, shipped
    #: dependency sets, logged decisions); empty for scheduler records.
    extra: str = ""

    def to_dict(self) -> dict:
        payload = {"kind": self.kind}
        if self.txn >= 0:
            payload["txn"] = self.txn
        for name in ("object_name", "operation", "outcome", "returned",
                     "reason", "adt", "extra"):
            value = getattr(self, name)
            if value:
                payload[name] = value
        if self.args:
            payload["args"] = repr(self.args)
        if self.blocked_on:
            payload["blocked_on"] = list(self.blocked_on)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Decision":
        args = payload.get("args", "")
        return cls(
            kind=payload["kind"],
            txn=payload.get("txn", -1),
            object_name=payload.get("object_name", ""),
            operation=payload.get("operation", ""),
            args=ast.literal_eval(args) if args else (),
            outcome=payload.get("outcome", ""),
            returned=payload.get("returned", ""),
            reason=payload.get("reason", ""),
            adt=payload.get("adt", ""),
            blocked_on=tuple(payload.get("blocked_on", ())),
            extra=payload.get("extra", ""),
        )


@dataclass
class _RegisteredSource:
    """Live objects needed to replay one ``register`` record."""

    adt: object
    table: object
    initial_state: object


class DecisionLog:
    """Append-only record of scheduler decisions, optionally JSONL-durable.

    ``policy`` is captured from the first wrapped scheduler so
    :func:`recover` can rebuild one without extra arguments.  Attach a
    stream with :meth:`attach_jsonl` (or pass ``stream=``) and every
    subsequent append is flushed as one JSON line — the durable form a
    crashed process leaves behind.
    """

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.records: list[Decision] = []
        self.policy: str = ""
        #: Torn final lines tolerated by :meth:`load` (crash mid-append).
        self.torn_tail_records: int = 0
        self._sources: dict[str, _RegisteredSource] = {}
        self._stream: IO[str] | None = stream

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, decision: Decision) -> None:
        self.records.append(decision)
        if self._stream is not None:
            json.dump(decision.to_dict(), self._stream, ensure_ascii=False)
            self._stream.write("\n")
            self._stream.flush()

    def note_register(
        self, name: str, adt, table, initial_state, state_repr: str
    ) -> None:
        """Record a registration, keeping live replay sources in memory."""
        self._sources[name] = _RegisteredSource(
            adt=adt, table=table, initial_state=initial_state
        )
        self.append(
            Decision(
                kind="register",
                object_name=name,
                adt=getattr(adt, "name", type(adt).__name__),
                returned=state_repr,
            )
        )

    def source_of(self, name: str) -> _RegisteredSource:
        try:
            return self._sources[name]
        except KeyError:
            raise RecoveryError(
                f"decision log has no replay source for object {name!r}; "
                "load it with a resolver"
            ) from None

    def fork(self) -> "DecisionLog":
        """An independent in-memory copy: a backup's seed log.

        The copy shares the (immutable) :class:`Decision` records and
        replay sources but has its own record list and no stream, so a
        replica group can seed backups from the primary's log and let
        each side append independently afterwards.
        """
        forked = DecisionLog()
        forked.records = list(self.records)
        forked.policy = self.policy
        forked._sources = dict(self._sources)
        return forked

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def attach_jsonl(self, stream: IO[str]) -> None:
        """Start streaming records to ``stream``, after writing a header
        and the records appended so far (so late attachment still yields a
        complete durable log)."""
        self._stream = stream
        json.dump({"kind": "header", "policy": self.policy}, stream)
        stream.write("\n")
        for decision in self.records:
            json.dump(decision.to_dict(), stream, ensure_ascii=False)
            stream.write("\n")
        stream.flush()

    def dump_jsonl(self, path: str) -> None:
        """Atomically write the complete log to ``path``.

        The header and records are written to a temp file in the target
        directory, flushed and fsynced, then moved into place with
        ``os.replace`` — so a crash mid-dump leaves either the previous
        durable copy or the new one, never a half-written file.
        """
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                previous, self._stream = self._stream, None
                try:
                    self.attach_jsonl(stream)
                finally:
                    self._stream = previous
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(
        cls,
        path: str,
        resolve: Callable[[str, str, str], tuple] | None = None,
    ) -> "DecisionLog":
        """Restore a durable log written by :meth:`dump_jsonl`.

        ``resolve(object_name, adt_name, initial_state_repr)`` must return
        ``(adt, table, initial_state)`` for every registered object — the
        live objects a JSONL file cannot carry.  Without a resolver the
        log still loads for inspection, but :func:`recover` will refuse to
        replay registrations.

        A torn tail — a final line that is not valid JSON **and** is not
        newline-terminated, the signature of a crash mid-append — is
        tolerated: the partial record is discarded and counted in
        ``torn_tail_records``.  A non-JSON line anywhere else (including
        a newline-terminated garbage tail) still raises
        :class:`~repro.errors.RecoveryError`: that is corruption, not a
        torn append.
        """
        log = cls()
        with open(path, "r", encoding="utf-8") as stream:
            text = stream.read()
        terminated = text.endswith("\n")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                payload = json.loads(stripped)
            except json.JSONDecodeError as error:
                if number == len(lines) and not terminated:
                    log.torn_tail_records += 1
                    break
                raise RecoveryError(
                    f"decision log line {number} is not JSON: {error}"
                ) from None
            if payload.get("kind") == "header":
                log.policy = payload.get("policy", "")
                continue
            decision = Decision.from_dict(payload)
            log.records.append(decision)
            if decision.kind == "register" and resolve is not None:
                adt, table, initial = resolve(
                    decision.object_name, decision.adt, decision.returned
                )
                log._sources[decision.object_name] = _RegisteredSource(
                    adt=adt, table=table, initial_state=initial
                )
        return log


class LoggingScheduler:
    """Transparent write-ahead wrapper over any scheduler surface.

    Logs one :class:`Decision` per completed ``register_object`` /
    ``begin`` / ``request`` / ``try_commit`` / ``abort`` call and forwards
    everything else (``transaction``, ``stats``, ``dependency_graph``,
    ``object`` …) untouched, so drivers written against the bare
    scheduler work unchanged against the wrapped one.
    """

    def __init__(self, inner, log: DecisionLog | None = None) -> None:
        self.inner = inner
        self.log = log if log is not None else DecisionLog()
        if not self.log.policy:
            self.log.policy = inner.policy

    # -- logged surface -------------------------------------------------

    def register_object(self, name, adt, table, initial_state=None):
        shared = self.inner.register_object(name, adt, table, initial_state)
        self.log.note_register(
            name, adt, table, shared.initial_state, repr(shared.initial_state)
        )
        return shared

    def begin(self):
        txn = self.inner.begin()
        self.log.append(Decision(kind="begin", txn=txn))
        return txn

    def request(self, txn, object_name, invocation):
        decision = self.inner.request(txn, object_name, invocation)
        blocked_on = ()
        if decision.executed:
            outcome, returned = "executed", repr(decision.returned)
        elif decision.aborted:
            outcome, returned = "aborted", ""
        else:
            outcome, returned = "blocked", ""
            blocked_on = tuple(sorted(decision.blocked_on))
        self.log.append(
            Decision(
                kind="request",
                txn=txn,
                object_name=object_name,
                operation=invocation.operation,
                args=tuple(invocation.args),
                outcome=outcome,
                returned=returned,
                blocked_on=blocked_on,
            )
        )
        return decision

    def try_commit(self, txn):
        decision = self.inner.try_commit(txn)
        blocked_on = ()
        if decision.committed:
            outcome = "committed"
        elif decision.must_abort:
            outcome = "must-abort"
        else:
            outcome = "waiting"
            blocked_on = tuple(sorted(decision.waiting_on))
        self.log.append(
            Decision(
                kind="commit", txn=txn, outcome=outcome, blocked_on=blocked_on
            )
        )
        return decision

    def abort(self, txn, reason="requested"):
        extra = self.inner.abort(txn, reason=reason)
        self.log.append(Decision(kind="abort", txn=txn, reason=reason))
        return extra

    def set_object_policy(self, name, policy):
        # A per-object discipline switch changes every subsequent
        # scheduling decision on the object; left unlogged it would
        # make verified replay diverge (recovery and backup replicas
        # would replay under the base policy).  Log it like any other
        # decision.  The inner call validates the safe boundary first,
        # so a rejected switch appends nothing.
        self.inner.set_object_policy(name, policy)
        self.log.append(
            Decision(kind="policy", object_name=name, outcome=policy)
        )

    # -- crash/recovery -------------------------------------------------

    def reincarnate(self, scheduler_factory=None) -> "LoggingScheduler":
        """A fresh wrapper around a scheduler recovered from this log.

        Models the crash of the underlying scheduler process: the old
        inner instance is discarded, a new one is rebuilt by verified
        replay, and the (durable) log keeps accumulating subsequent
        decisions.
        """
        recovered = recover(
            self.log,
            policy=self.inner.policy,
            scheduler_factory=scheduler_factory,
            compiled=getattr(self.inner, "compiled", True),
        )
        recovered.tracer = self.inner.tracer
        recovered.now = self.inner.now
        return LoggingScheduler(recovered, log=self.log)

    # -- passthrough ----------------------------------------------------

    @property
    def now(self):
        return self.inner.now

    @now.setter
    def now(self, value):
        self.inner.now = value

    def __getattr__(self, name):
        if name == "inner":  # not yet set during construction/unpickling
            raise AttributeError(name)
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LoggingScheduler over {self.inner!r} ({len(self.log)} records)>"


def replay_into(scheduler, log: DecisionLog, verify: bool = True):
    """Replay ``log`` into ``scheduler``, verifying outcomes as recorded.

    The replay is *silent*: the target scheduler should carry a null
    tracer while replaying (recovery must not re-emit the crashed run's
    events); callers attach the live tracer afterwards.  Returns the
    scheduler for chaining.
    """
    for index, record in enumerate(log.records):
        apply_record(scheduler, log, record, index, verify=verify)
    return scheduler


def apply_record(
    scheduler, log: DecisionLog, record: Decision, index: int,
    verify: bool = True,
) -> None:
    """Apply one decision record to ``scheduler``, verifying its outcome.

    The single-record body of :func:`replay_into`, exposed so a backup
    replica can apply shipped records incrementally as they arrive
    (:mod:`repro.dist.replication`) with the same verification the
    crash-recovery path runs.  ``log`` supplies the replay sources for
    ``register`` records; ``index`` only labels errors.
    """
    if record.kind == "register":
        source = log.source_of(record.object_name)
        scheduler.register_object(
            record.object_name,
            source.adt,
            source.table,
            source.initial_state,
        )
    elif record.kind == "begin":
        txn = scheduler.begin()
        if verify and txn != record.txn:
            raise RecoveryError(
                f"replay record {index}: begin produced transaction "
                f"{txn}, log recorded {record.txn}"
            )
    elif record.kind == "request":
        decision = scheduler.request(
            record.txn,
            record.object_name,
            Invocation(operation=record.operation, args=record.args),
        )
        if decision.executed:
            outcome, returned = "executed", repr(decision.returned)
        elif decision.aborted:
            outcome, returned = "aborted", ""
        else:
            outcome, returned = "blocked", ""
        if verify and (
            outcome != record.outcome
            or (outcome == "executed" and returned != record.returned)
        ):
            raise RecoveryError(
                f"replay record {index}: request {record.operation} by "
                f"txn {record.txn} produced {outcome}/{returned!r}, log "
                f"recorded {record.outcome}/{record.returned!r}"
            )
        if verify and record.blocked_on and outcome == "blocked":
            blocked_on = tuple(sorted(decision.blocked_on))
            if blocked_on != tuple(record.blocked_on):
                # Same outcome, different wait graph: the histories
                # have already diverged (deadlock victims are chosen
                # from this graph, inside the call and unlogged).
                raise RecoveryError(
                    f"replay record {index}: request {record.operation}"
                    f" by txn {record.txn} blocked on {blocked_on}, log"
                    f" recorded {tuple(record.blocked_on)}"
                )
    elif record.kind == "commit":
        decision = scheduler.try_commit(record.txn)
        if decision.committed:
            outcome = "committed"
        elif decision.must_abort:
            outcome = "must-abort"
        else:
            outcome = "waiting"
        if verify and outcome != record.outcome:
            raise RecoveryError(
                f"replay record {index}: commit of txn {record.txn} "
                f"produced {outcome}, log recorded {record.outcome}"
            )
        if verify and record.blocked_on and outcome == "waiting":
            waiting_on = tuple(sorted(decision.waiting_on))
            if waiting_on != tuple(record.blocked_on):
                raise RecoveryError(
                    f"replay record {index}: commit of txn {record.txn} "
                    f"waited on {waiting_on}, log recorded "
                    f"{tuple(record.blocked_on)}"
                )
    elif record.kind == "abort":
        scheduler.abort(record.txn, reason=record.reason)
    elif record.kind == "policy":
        switch = getattr(scheduler, "set_object_policy", None)
        if switch is not None:
            switch(record.object_name, record.outcome)
        # A target without per-object disciplines (the degradation
        # path's ReferenceScheduler) runs everything under its single
        # conservative policy; the switch is meaningless there.
    elif record.kind.startswith("2pc-"):
        # Commit-protocol records of the distributed layer: they carry
        # no scheduler call, so scheduler replay skips them.  The
        # distributed recovery path re-reads them itself to rebuild
        # gtxn mappings and in-doubt state (see repro.dist.node).
        pass
    else:
        raise RecoveryError(
            f"replay record {index}: unknown decision kind {record.kind!r}"
        )


def recover(
    log: DecisionLog,
    policy: str | None = None,
    scheduler_factory=None,
    verify: bool = True,
    compiled: bool = True,
):
    """Reconstruct a scheduler from ``log`` by verified replay.

    With no ``scheduler_factory`` a fresh
    :class:`~repro.cc.scheduler.TableDrivenScheduler` under the log's
    recorded policy is built; the factory hook lets the degradation path
    recover into a :class:`~repro.cc.reference.ReferenceScheduler`
    instead.  ``compiled`` must carry the crashed scheduler's dispatch
    mode so that recovery does not silently flip a reference run onto
    the compiled hot path (or vice versa).  The replay runs untraced;
    attach a tracer to the returned scheduler afterwards if the run is
    being traced.
    """
    if scheduler_factory is not None:
        scheduler = scheduler_factory()
    else:
        from repro.cc.scheduler import TableDrivenScheduler

        chosen = policy or log.policy or "optimistic"
        scheduler = TableDrivenScheduler(policy=chosen, compiled=compiled)
    return replay_into(scheduler, log, verify=verify)

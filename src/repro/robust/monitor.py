"""Invariant monitoring with graceful degradation.

The optimized scheduler owes its speed to derived structures — the
:class:`~repro.perf.shadow.ShadowStateIndex`, the precompiled
:class:`~repro.perf.flat_table.FlatTable`, the
:class:`~repro.perf.cache.ExecutionCache` — every one of which is
*redundant*: each can be rebuilt from the authoritative state (object
logs, compatibility tables, operation specs).  Redundancy is what makes
graceful degradation possible: when a derived structure goes wrong, the
correct response is not to crash but to throw it away and recompute.

The :class:`MonitoredScheduler` wraps a scheduler (over the decision-log
layer, so the last degradation rung can replay) and audits three
invariants every ``check_interval``-th call, *before* forwarding the
call — a violated invariant is caught before it can poison a scheduling
decision, which is what keeps the decision log clean enough for the
degraded replay to verify:

``acyclicity``
    The inter-transaction dependency graph has no cycle among unresolved
    edges.  :class:`~repro.cc.dependencies.DependencyGraph` refuses to
    create cycles, so a cycle here means the graph structure itself was
    corrupted.
``serializability``
    The committed prefix admits a serial witness
    (:func:`repro.cc.serializability.find_serialization`) — the paper's
    ground truth, checked live instead of post-hoc.
``shadow_freshness``
    Every maintained shadow state equals a fresh *uncached* "log minus
    txn" replay.  Bypassing the execution cache is the point: a poisoned
    cache entry shows up exactly here.

On violation the monitor walks the **degradation ladder**:

1. emit :class:`~repro.obs.events.InvariantViolated` (one per failed
   invariant) and count it;
2. **quarantine** — ``rebuild_fast_paths()``: drop the shadow index,
   clear the execution cache, recompile flat tables; recheck;
3. **degrade** — replay the decision log into a bit-parity
   :class:`~repro.cc.reference.ReferenceScheduler` (no fast paths at
   all) and continue on it, emitting
   :class:`~repro.obs.events.DegradedMode`; recheck;
4. if the invariant *still* fails, raise
   :class:`~repro.errors.InvariantViolationError` — the corruption is in
   the authoritative state and no rebuild can help.

Counters flow through the shared :class:`~repro.robust.faults.RobustStats`
sink and out the metrics registry.
"""

from __future__ import annotations

from repro.errors import InvariantViolationError, RecoveryError
from repro.graph.instrument import EdgeAttribution
from repro.obs.events import DegradedMode, InvariantViolated
from repro.robust.decision_log import DecisionLog, LoggingScheduler, recover
from repro.robust.faults import RobustStats
from repro.spec.adt import execute_uncached

__all__ = ["INVARIANTS", "MonitoredScheduler"]

#: The monitored invariants, in check order.
INVARIANTS = ("acyclicity", "serializability", "shadow_freshness")


class MonitoredScheduler(LoggingScheduler):
    """A logging wrapper that audits invariants and degrades gracefully.

    ``check_interval`` sets the audit cadence: every N-th forwarded
    ``request``/``try_commit`` is preceded by a full check round (1 =
    check before every call).  ``max_recoveries`` bounds the quarantine
    rung; once spent, the next violation degrades straight to reference
    execution.  ``robust_stats`` is the shared counter sink (the
    scheduler's own ``stats`` keeps forwarding to the wrapped scheduler
    unchanged).
    """

    def __init__(
        self,
        inner,
        log: DecisionLog | None = None,
        check_interval: int = 1,
        max_recoveries: int = 1,
        robust_stats: RobustStats | None = None,
        serializability_limit: int = 6,
    ) -> None:
        super().__init__(inner, log)
        if check_interval < 1:
            raise ValueError("check_interval must be at least 1")
        self.check_interval = check_interval
        self.max_recoveries = max_recoveries
        self.robust_stats = (
            robust_stats if robust_stats is not None else RobustStats()
        )
        self.serializability_limit = serializability_limit
        self.degraded = False
        self._calls = 0
        #: Quarantine rebuilds performed by *this* monitor, bounded by
        #: ``max_recoveries`` (the shared ``robust_stats.recoveries``
        #: counter also absorbs crash recoveries, so it cannot be the bound).
        self._rebuilds = 0

    # ------------------------------------------------------------------
    # Audited surface
    # ------------------------------------------------------------------

    def request(self, txn, object_name, invocation):
        self._preflight()
        return super().request(txn, object_name, invocation)

    def try_commit(self, txn):
        self._preflight()
        return super().try_commit(txn)

    def reincarnate(self, scheduler_factory=None) -> "MonitoredScheduler":
        """Crash-recover the wrapped scheduler, keeping the monitor alive.

        The rebuilt wrapper preserves the audit configuration, the shared
        counters and the degraded flag (a degraded run stays degraded:
        recovery replays into the reference scheduler again).
        """
        if scheduler_factory is None and self.degraded:
            scheduler_factory = self._reference_factory()
        inner = super().reincarnate(scheduler_factory).inner
        rebuilt = MonitoredScheduler(
            inner,
            log=self.log,
            check_interval=self.check_interval,
            max_recoveries=self.max_recoveries,
            robust_stats=self.robust_stats,
            serializability_limit=self.serializability_limit,
        )
        rebuilt.degraded = self.degraded
        rebuilt._calls = self._calls
        rebuilt._rebuilds = self._rebuilds
        return rebuilt

    # ------------------------------------------------------------------
    # Invariant checks
    # ------------------------------------------------------------------

    def check_invariants(self) -> list[tuple[str, str]]:
        """Run every applicable check; returns ``(invariant, detail)`` failures."""
        failures: list[tuple[str, str]] = []
        detail = self._check_acyclicity()
        if detail:
            failures.append(("acyclicity", detail))
        detail = self._check_serializability()
        if detail:
            failures.append(("serializability", detail))
        detail = self._check_shadow_freshness()
        if detail:
            failures.append(("shadow_freshness", detail))
        return failures

    def _check_acyclicity(self) -> str:
        """Iterative three-colour DFS over the recorded dependency edges."""
        successors: dict[int, list[int]] = {}
        for (later, earlier) in self.inner.dependency_graph().edges():
            successors.setdefault(earlier, []).append(later)
        state: dict[int, int] = {}  # 1 = on stack, 2 = done
        for root in successors:
            if state.get(root):
                continue
            stack = [(root, iter(successors.get(root, ())))]
            state[root] = 1
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    mark = state.get(child)
                    if mark == 1:
                        return f"dependency cycle through txns {child} and {node}"
                    if mark is None:
                        state[child] = 1
                        stack.append(
                            (child, iter(successors.get(child, ())))
                        )
                        advanced = True
                        break
                if not advanced:
                    state[node] = 2
                    stack.pop()
        return ""

    def _check_serializability(self) -> str:
        """The committed prefix must admit a serial witness *now*.

        Unlike the post-hoc checker this runs mid-transaction: active
        transactions' operations are still in the object logs, so final
        states cannot be compared — the witness must reproduce every
        *recorded return value* of the committed transactions.  (A
        committed transaction can never have observed a still-active one:
        such an observation records an AD/CD edge, and commitment waits
        for every predecessor to resolve — so committed returns are
        explainable by committed transactions alone.)
        """
        committed = sorted(
            (
                txn
                for txn in self._all_transactions()
                if txn.is_committed
            ),
            key=lambda txn: txn.commit_sequence or 0,
        )
        if not committed:
            return ""
        if self._serial_returns_ok(committed):
            return ""
        if len(committed) <= self.serializability_limit:
            from itertools import permutations

            for candidate in permutations(committed):
                if self._serial_returns_ok(list(candidate)):
                    return ""
        return "committed prefix admits no serial witness"

    def _all_transactions(self):
        found = []
        index = 0
        while True:
            try:
                found.append(self.inner.transaction(index))
            except Exception:
                return found
            index += 1

    def _serial_returns_ok(self, order) -> bool:
        """Whether serial execution in ``order`` reproduces every recorded
        return value (uncached — a poisoned cache must not vouch for
        itself)."""
        states: dict[str, object] = {}
        for transaction in order:
            for record in transaction.records:
                name = record.object_name
                shared = self.inner.object(name)
                state = states.get(name, shared.initial_state)
                execution = execute_uncached(
                    shared.adt, state, record.invocation, EdgeAttribution.BOTH
                )
                if execution.returned != record.returned:
                    return False
                states[name] = execution.post_state
        return True

    def _check_shadow_freshness(self) -> str:
        """Compare every maintained shadow state to an uncached replay."""
        index = getattr(self.inner, "shadow_index", None)
        if index is None:  # reference scheduler: no fast path to audit
            return ""
        shadow = index()
        for name in self.inner.object_names():
            shared = self.inner.object(name)
            for txn, state in sorted(shadow.maintained(name).items()):
                fresh = shared.initial_state
                for entry in shared.log():
                    if entry.txn == txn:
                        continue
                    fresh = execute_uncached(
                        shared.adt,
                        fresh,
                        entry.invocation,
                        EdgeAttribution.BOTH,
                    ).post_state
                if state != fresh:
                    return (
                        f"object {name!r}: maintained shadow state for txn "
                        f"{txn} is {state!r}, uncached replay gives {fresh!r}"
                    )
        return ""

    # ------------------------------------------------------------------
    # The degradation ladder
    # ------------------------------------------------------------------

    def _preflight(self) -> None:
        self._calls += 1
        if self._calls % self.check_interval:
            return
        self.enforce()

    def enforce(self) -> None:
        """One audit round, walking the ladder until the checks pass."""
        stats = self.robust_stats
        stats.invariant_checks += 1
        failures = self.check_invariants()
        if not failures:
            return
        self._report(failures)

        # Rung 1: quarantine — rebuild the derived fast paths.
        rebuild = getattr(self.inner, "rebuild_fast_paths", None)
        while (
            failures
            and rebuild is not None
            and not self.degraded
            and self._rebuilds < self.max_recoveries
        ):
            rebuild()
            self._rebuilds += 1
            stats.recoveries += 1
            failures = self.check_invariants()
            if failures:
                self._report(failures)

        # Rung 2: degrade — replay the log into the reference scheduler.
        if failures and not self.degraded:
            self._degrade(failures[0][0])
            failures = self.check_invariants()
            if failures:
                self._report(failures)

        if failures:
            raise InvariantViolationError(
                "invariants still violated after degradation: "
                + "; ".join(f"{name}: {detail}" for name, detail in failures)
            )

    def _report(self, failures: list[tuple[str, str]]) -> None:
        self.robust_stats.invariant_violations += len(failures)
        tracer = self.inner.tracer
        if tracer:
            for invariant, detail in failures:
                tracer.emit(
                    InvariantViolated(
                        time=self.inner.now,
                        invariant=invariant,
                        detail=detail,
                    )
                )

    def _reference_factory(self):
        from repro.cc.reference import ReferenceScheduler

        policy = self.inner.policy
        return lambda: ReferenceScheduler(policy=policy)

    def _degrade(self, reason: str) -> None:
        """Replace the wrapped scheduler by a reference replay of the log.

        The reference scheduler maintains no shadow index, flat tables or
        execution cache, so nothing the corrupted fast paths could have
        touched survives; replay verification doubles as proof that every
        decision already logged was fast-path-independent.  When it is
        *not* — a corrupted fast path influenced a decision in the window
        between two audits, so the log itself is tainted — no fallback
        can reproduce the recorded history, and the ladder ends in
        :class:`~repro.errors.InvariantViolationError` (tightening
        ``check_interval`` shrinks that window).
        """
        tracer, now = self.inner.tracer, self.inner.now
        try:
            recovered = recover(
                self.log,
                policy=self.inner.policy,
                scheduler_factory=self._reference_factory(),
            )
        except RecoveryError as error:
            raise InvariantViolationError(
                f"cannot degrade after {reason} violation: the decision "
                f"log is tainted by a pre-audit corrupted decision "
                f"({error})"
            ) from error
        recovered.tracer = tracer
        recovered.now = now
        self.inner = recovered
        self.degraded = True
        self.robust_stats.degradations += 1
        if tracer:
            tracer.emit(DegradedMode(time=now, reason=reason))

"""Deterministic fault injection: seeded plans consulted at named points.

The schedulers and drivers in this repository are deterministic by
design, so failures can be too: a :class:`FaultPlan` is a pure function
of ``(seed, spec)`` and the sequence of fault points the run consults.
Re-running the same workload with the same plan reproduces every
injected fault — spurious aborts, operation failures, delayed commits,
execution-cache poisoning and scheduler crashes — byte for byte, which
is what makes chaos reports diffable and chaos regressions bisectable.

Fault points are *named*; the drivers consult the plan at exactly these
points, in a deterministic order:

``spurious_abort``
    Before a transaction issues an operation: the transaction is aborted
    as if an operator or an external failure detector killed it.
``op_failure``
    Before an operation executes: the execution fails transiently and
    the program retries later (exercising retry paths, not atomicity).
``commit_delay``
    Before a commit attempt: the attempt is postponed, widening the
    window in which other transactions conflict with a finished one.
``cache_poison``
    Between events: the scheduler's :class:`~repro.perf.cache.ExecutionCache`
    is force-evicted or an entry is corrupted (the invariant monitor's
    corruption-detection target).
``crash``
    Between events: the scheduler "process" dies; with a
    :class:`~repro.robust.decision_log.DecisionLog` attached the driver
    recovers by replay, otherwise the crash point is skipped.

An all-zero :class:`FaultSpec` produces a falsy plan; every consultation
site is guarded with ``if plan:``, so fault-free runs never draw from
the RNG and remain bit-identical to runs without a plan at all.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field

__all__ = ["FAULT_KINDS", "FaultRecord", "FaultSpec", "FaultPlan", "RobustStats"]

#: The named fault points, in a stable order used by reports.
FAULT_KINDS = (
    "spurious_abort",
    "op_failure",
    "commit_delay",
    "cache_poison",
    "crash",
)


@dataclass(frozen=True)
class FaultSpec:
    """Rates and caps of one fault campaign (all rates are per consult).

    The spec is immutable and hashable so ``(seed, spec)`` fully
    identifies a plan; :meth:`FaultPlan.report` embeds both.
    """

    spurious_abort_rate: float = 0.0
    op_failure_rate: float = 0.0
    commit_delay_rate: float = 0.0
    cache_poison_rate: float = 0.0
    crash_rate: float = 0.0
    #: Sim-time delay applied to a delayed commit / failed operation retry.
    commit_delay: float = 1.0
    op_failure_retry_delay: float = 0.25
    #: Hard caps: a campaign never exceeds these, whatever the rates say.
    max_faults: int = 1_000
    max_crashes: int = 2

    def __post_init__(self) -> None:
        for name in (
            "spurious_abort_rate",
            "op_failure_rate",
            "commit_delay_rate",
            "cache_poison_rate",
            "crash_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate}")

    @property
    def is_empty(self) -> bool:
        """Whether every rate is zero (the plan will never fire)."""
        return not (
            self.spurious_abort_rate
            or self.op_failure_rate
            or self.commit_delay_rate
            or self.cache_poison_rate
            or self.crash_rate
        )

    @classmethod
    def storm(cls, intensity: float = 0.05) -> "FaultSpec":
        """A balanced everything-on campaign scaled by ``intensity``."""
        return cls(
            spurious_abort_rate=intensity,
            op_failure_rate=intensity,
            commit_delay_rate=intensity,
            cache_poison_rate=intensity / 2,
            crash_rate=intensity / 2,
        )


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, in injection order."""

    index: int  #: 0-based injection sequence number
    kind: str
    txn: int = -1
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "txn": self.txn,
            "detail": self.detail,
        }


@dataclass
class RobustStats:
    """Counters of the robustness layer, shared by plans and monitors.

    One instance is threaded through the :class:`FaultPlan`, the
    :class:`~repro.robust.monitor.MonitoredScheduler` and the recovery
    path of a run (the :class:`~repro.cc.scheduler.SchedulerStats`
    pattern), then exported through the metrics registry by
    :meth:`publish` — which is what ``simulate --metrics-format`` shows.
    """

    faults_injected: int = 0
    #: Per-kind injection counts (keys from :data:`FAULT_KINDS`).
    faults_by_kind: dict = field(
        default_factory=lambda: {kind: 0 for kind in FAULT_KINDS}
    )
    #: Crash recoveries plus fast-path rebuilds after a violation.
    recoveries: int = 0
    invariant_checks: int = 0
    invariant_violations: int = 0
    degradations: int = 0

    def publish(self, registry) -> None:
        """Export the counters into a :class:`~repro.obs.registry.MetricsRegistry`."""
        registry.counter(
            "robust_faults_injected", "Faults injected by the fault plan."
        ).inc(self.faults_injected)
        for kind in FAULT_KINDS:
            registry.counter(
                "robust_faults",
                "Faults injected, by fault-point kind.",
                labels={"kind": kind},
            ).inc(self.faults_by_kind.get(kind, 0))
        registry.counter(
            "robust_recoveries",
            "Crash recoveries and post-violation fast-path rebuilds.",
        ).inc(self.recoveries)
        registry.counter(
            "robust_invariant_checks", "Invariant-monitor check rounds."
        ).inc(self.invariant_checks)
        registry.counter(
            "robust_invariant_violations", "Invariant checks that failed."
        ).inc(self.invariant_violations)
        registry.counter(
            "robust_degradations",
            "Falls back to bit-parity reference execution.",
        ).inc(self.degradations)

    def to_dict(self) -> dict:
        return {
            "faults_injected": self.faults_injected,
            "faults_by_kind": dict(self.faults_by_kind),
            "recoveries": self.recoveries,
            "invariant_checks": self.invariant_checks,
            "invariant_violations": self.invariant_violations,
            "degradations": self.degradations,
        }


class FaultPlan:
    """A seeded, reproducible schedule of fault injections.

    The plan owns a private ``random.Random(seed)``; every consult of a
    fault point with a non-zero rate draws exactly one uniform variate,
    so the injection schedule is a deterministic function of
    ``(seed, spec)`` and the (deterministic) consult sequence of the run.
    Consults of zero-rate points draw nothing, which is what keeps an
    all-zero spec bit-identical to running without a plan.

    Truthiness: a plan is falsy when its spec is empty, so hot paths can
    guard with ``if plan:`` and pay a single branch in fault-free runs.
    """

    def __init__(
        self,
        seed: int,
        spec: FaultSpec | None = None,
        stats: RobustStats | None = None,
    ) -> None:
        self.seed = seed
        self.spec = spec if spec is not None else FaultSpec.storm()
        self.stats = stats if stats is not None else RobustStats()
        self.records: list[FaultRecord] = []
        self._rng = random.Random(seed)
        self._crashes = 0

    def __bool__(self) -> bool:
        return not self.spec.is_empty

    # ------------------------------------------------------------------
    # Fault points
    # ------------------------------------------------------------------

    def spurious_abort(self, txn: int) -> bool:
        """Should ``txn`` be spuriously aborted before its next operation?"""
        return self._fires("spurious_abort", self.spec.spurious_abort_rate, txn)

    def op_failure(self, txn: int) -> bool:
        """Should the next operation execution fail transiently?"""
        return self._fires("op_failure", self.spec.op_failure_rate, txn)

    def commit_delay(self, txn: int) -> float | None:
        """Delay to impose on the commit attempt, or ``None``."""
        if self._fires(
            "commit_delay",
            self.spec.commit_delay_rate,
            txn,
            detail=f"+{self.spec.commit_delay}",
        ):
            return self.spec.commit_delay
        return None

    def cache_poison(self) -> str | None:
        """Cache fault to inject now: ``"evict"``, ``"corrupt"`` or ``None``.

        The mode itself is part of the seeded schedule (a second draw
        made only when the point fires).
        """
        if not self._may_fire(self.spec.cache_poison_rate):
            return None
        mode = "evict" if self._rng.random() < 0.5 else "corrupt"
        self._record("cache_poison", detail=mode)
        return mode

    def crash(self) -> bool:
        """Should the scheduler crash now?  Capped by ``max_crashes``."""
        if self._crashes >= self.spec.max_crashes:
            return False
        if not self._may_fire(self.spec.crash_rate):
            return False
        self._crashes += 1
        self._record("crash")
        return True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> dict:
        """A JSON-ready account of the campaign (deterministic field order)."""
        return {
            "seed": self.seed,
            "spec": asdict(self.spec),
            "faults_injected": self.stats.faults_injected,
            "faults_by_kind": dict(self.stats.faults_by_kind),
            "records": [record.to_dict() for record in self.records],
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _may_fire(self, rate: float) -> bool:
        """One seeded draw against ``rate`` (no draw for zero rates)."""
        if rate <= 0.0:
            return False
        if self.stats.faults_injected >= self.spec.max_faults:
            return False
        return self._rng.random() < rate

    def _fires(self, kind: str, rate: float, txn: int, detail: str = "") -> bool:
        if not self._may_fire(rate):
            return False
        self._record(kind, txn=txn, detail=detail)
        return True

    def _record(self, kind: str, txn: int = -1, detail: str = "") -> None:
        self.records.append(
            FaultRecord(
                index=self.stats.faults_injected,
                kind=kind,
                txn=txn,
                detail=detail,
            )
        )
        self.stats.faults_injected += 1
        self.stats.faults_by_kind[kind] = (
            self.stats.faults_by_kind.get(kind, 0) + 1
        )

"""Deterministic fault injection: seeded plans consulted at named points.

The schedulers and drivers in this repository are deterministic by
design, so failures can be too: a :class:`FaultPlan` is a pure function
of ``(seed, spec)`` and the sequence of fault points the run consults.
Re-running the same workload with the same plan reproduces every
injected fault — spurious aborts, operation failures, delayed commits,
execution-cache poisoning and scheduler crashes — byte for byte, which
is what makes chaos reports diffable and chaos regressions bisectable.

Fault points are *named*; the drivers consult the plan at exactly these
points, in a deterministic order:

``spurious_abort``
    Before a transaction issues an operation: the transaction is aborted
    as if an operator or an external failure detector killed it.
``op_failure``
    Before an operation executes: the execution fails transiently and
    the program retries later (exercising retry paths, not atomicity).
``commit_delay``
    Before a commit attempt: the attempt is postponed, widening the
    window in which other transactions conflict with a finished one.
``cache_poison``
    Between events: the scheduler's :class:`~repro.perf.cache.ExecutionCache`
    is force-evicted or an entry is corrupted (the invariant monitor's
    corruption-detection target).
``crash``
    Between events: the scheduler "process" dies; with a
    :class:`~repro.robust.decision_log.DecisionLog` attached the driver
    recovers by replay, otherwise the crash point is skipped.

The distributed layer (:mod:`repro.dist`) adds *message-level* fault
points, consulted by the :class:`~repro.dist.bus.SimBus` per sent
message:

``msg_drop`` / ``msg_duplicate`` / ``msg_delay`` / ``msg_reorder``
    The message is silently dropped, enqueued twice, delayed by a
    bounded seeded amount, or jittered past later sends (reordered).
``partition``
    A bidirectional network partition opens between the coordinator and
    a seeded-chosen node for ``partition_duration`` sim-time units;
    messages crossing it in either direction are dropped until it heals.

Every fault point owns a **private RNG stream** seeded as
``f"{seed}:{kind}"``, so consulting one point never perturbs another:
adding message faults to a spec leaves the five scheduler-level streams
byte-identical (the PR 4 determinism contract), and an all-zero rate
draws nothing at all.  An all-zero :class:`FaultSpec` produces a falsy
plan; every consultation site is guarded with ``if plan:``, so
fault-free runs never draw from any RNG and remain bit-identical to
runs without a plan at all.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field

__all__ = [
    "FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "REPLICA_FAULT_KINDS",
    "FaultRecord",
    "FaultSpec",
    "FaultPlan",
    "RobustStats",
]

#: The named scheduler-level fault points, in a stable order used by reports.
FAULT_KINDS = (
    "spurious_abort",
    "op_failure",
    "commit_delay",
    "cache_poison",
    "crash",
)

#: The named message-level fault points consulted by the SimBus.
MESSAGE_FAULT_KINDS = (
    "msg_drop",
    "msg_duplicate",
    "msg_delay",
    "msg_reorder",
    "partition",
)

#: The named replication-level fault points consulted by the replication
#: manager at cluster boundaries.  A separate tuple (and therefore a
#: separate set of private RNG streams) so enabling replica faults
#: leaves every pre-existing plan's schedule byte-identical.
REPLICA_FAULT_KINDS = ("replica_crash",)


@dataclass(frozen=True)
class FaultSpec:
    """Rates and caps of one fault campaign (all rates are per consult).

    The spec is immutable and hashable so ``(seed, spec)`` fully
    identifies a plan; :meth:`FaultPlan.report` embeds both.
    """

    spurious_abort_rate: float = 0.0
    op_failure_rate: float = 0.0
    commit_delay_rate: float = 0.0
    cache_poison_rate: float = 0.0
    crash_rate: float = 0.0
    #: Message-level rates, consulted by the SimBus per sent message.
    msg_drop_rate: float = 0.0
    msg_duplicate_rate: float = 0.0
    msg_delay_rate: float = 0.0
    msg_reorder_rate: float = 0.0
    partition_rate: float = 0.0
    #: Sim-time delay applied to a delayed commit / failed operation retry.
    commit_delay: float = 1.0
    op_failure_retry_delay: float = 0.25
    #: Bound of the seeded extra latency of a delayed message.
    msg_delay_max: float = 2.0
    #: Bound of the seeded jitter that reorders a message past later sends.
    msg_reorder_window: float = 0.5
    #: Sim-time a partition stays open before healing.
    partition_duration: float = 5.0
    #: Hard caps: a campaign never exceeds these, whatever the rates say.
    max_faults: int = 1_000
    max_crashes: int = 2
    max_partitions: int = 4
    #: Replication-level rate, consulted once per backup per boundary.
    replica_crash_rate: float = 0.0
    max_replica_crashes: int = 2

    def __post_init__(self) -> None:
        for name in (
            "spurious_abort_rate",
            "op_failure_rate",
            "commit_delay_rate",
            "cache_poison_rate",
            "crash_rate",
            "msg_drop_rate",
            "msg_duplicate_rate",
            "msg_delay_rate",
            "msg_reorder_rate",
            "partition_rate",
            "replica_crash_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate}")

    @property
    def is_empty(self) -> bool:
        """Whether every rate is zero (the plan will never fire)."""
        return not (
            self.spurious_abort_rate
            or self.op_failure_rate
            or self.commit_delay_rate
            or self.cache_poison_rate
            or self.crash_rate
            or self.replica_crash_rate
            or self.has_message_faults
        )

    @property
    def has_message_faults(self) -> bool:
        """Whether any message-level rate is non-zero (bus consults pay off)."""
        return bool(
            self.msg_drop_rate
            or self.msg_duplicate_rate
            or self.msg_delay_rate
            or self.msg_reorder_rate
            or self.partition_rate
        )

    @classmethod
    def storm(cls, intensity: float = 0.05) -> "FaultSpec":
        """A balanced everything-on campaign scaled by ``intensity``."""
        return cls(
            spurious_abort_rate=intensity,
            op_failure_rate=intensity,
            commit_delay_rate=intensity,
            cache_poison_rate=intensity / 2,
            crash_rate=intensity / 2,
        )

    @classmethod
    def message_storm(cls, intensity: float = 0.05) -> "FaultSpec":
        """A message-level-only campaign scaled by ``intensity``."""
        return cls(
            msg_drop_rate=intensity,
            msg_duplicate_rate=intensity,
            msg_delay_rate=intensity,
            msg_reorder_rate=intensity,
            partition_rate=intensity / 4,
        )

    @classmethod
    def dist_storm(cls, intensity: float = 0.05) -> "FaultSpec":
        """Message faults plus node crashes: the distributed chaos mix."""
        return cls(
            msg_drop_rate=intensity,
            msg_duplicate_rate=intensity,
            msg_delay_rate=intensity,
            msg_reorder_rate=intensity,
            partition_rate=intensity / 4,
            crash_rate=intensity / 2,
        )

    @classmethod
    def replication_storm(cls, intensity: float = 0.05) -> "FaultSpec":
        """The dist storm plus seeded backup crashes: the replication mix."""
        return cls(
            msg_drop_rate=intensity,
            msg_duplicate_rate=intensity,
            msg_delay_rate=intensity,
            msg_reorder_rate=intensity,
            partition_rate=intensity / 4,
            crash_rate=intensity / 2,
            replica_crash_rate=intensity,
        )


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault, in injection order."""

    index: int  #: 0-based injection sequence number
    kind: str
    txn: int = -1
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "txn": self.txn,
            "detail": self.detail,
        }


@dataclass
class RobustStats:
    """Counters of the robustness layer, shared by plans and monitors.

    One instance is threaded through the :class:`FaultPlan`, the
    :class:`~repro.robust.monitor.MonitoredScheduler` and the recovery
    path of a run (the :class:`~repro.cc.scheduler.SchedulerStats`
    pattern), then exported through the metrics registry by
    :meth:`publish` — which is what ``simulate --metrics-format`` shows.
    """

    faults_injected: int = 0
    #: Per-kind injection counts (keys from :data:`FAULT_KINDS`).
    faults_by_kind: dict = field(
        default_factory=lambda: {kind: 0 for kind in FAULT_KINDS}
    )
    #: Crash recoveries plus fast-path rebuilds after a violation.
    recoveries: int = 0
    invariant_checks: int = 0
    invariant_violations: int = 0
    degradations: int = 0

    def publish(self, registry) -> None:
        """Export the counters into a :class:`~repro.obs.registry.MetricsRegistry`."""
        registry.counter(
            "robust_faults_injected", "Faults injected by the fault plan."
        ).inc(self.faults_injected)
        for kind in FAULT_KINDS + MESSAGE_FAULT_KINDS + REPLICA_FAULT_KINDS:
            registry.counter(
                "robust_faults",
                "Faults injected, by fault-point kind.",
                labels={"kind": kind},
            ).inc(self.faults_by_kind.get(kind, 0))
        registry.counter(
            "robust_recoveries",
            "Crash recoveries and post-violation fast-path rebuilds.",
        ).inc(self.recoveries)
        registry.counter(
            "robust_invariant_checks", "Invariant-monitor check rounds."
        ).inc(self.invariant_checks)
        registry.counter(
            "robust_invariant_violations", "Invariant checks that failed."
        ).inc(self.invariant_violations)
        registry.counter(
            "robust_degradations",
            "Falls back to bit-parity reference execution.",
        ).inc(self.degradations)

    def to_dict(self) -> dict:
        return {
            "faults_injected": self.faults_injected,
            "faults_by_kind": dict(self.faults_by_kind),
            "recoveries": self.recoveries,
            "invariant_checks": self.invariant_checks,
            "invariant_violations": self.invariant_violations,
            "degradations": self.degradations,
        }


class FaultPlan:
    """A seeded, reproducible schedule of fault injections.

    Every fault point owns a private ``random.Random(f"{seed}:{kind}")``
    stream (string seeds hash through SHA-512, so streams are stable
    across processes and Python versions); a consult of a point with a
    non-zero rate draws exactly one uniform variate *from that point's
    stream*, so the injection schedule is a deterministic function of
    ``(seed, spec)`` and the (deterministic) consult sequence of the run
    — and consulting one point never perturbs another.  That per-point
    isolation is what lets the distributed bus add message-level
    consults without changing where the five scheduler-level points
    fire.  Consults of zero-rate points draw nothing, which is what
    keeps an all-zero spec bit-identical to running without a plan.

    Truthiness: a plan is falsy when its spec is empty, so hot paths can
    guard with ``if plan:`` and pay a single branch in fault-free runs.
    """

    def __init__(
        self,
        seed: int,
        spec: FaultSpec | None = None,
        stats: RobustStats | None = None,
    ) -> None:
        self.seed = seed
        self.spec = spec if spec is not None else FaultSpec.storm()
        self.stats = stats if stats is not None else RobustStats()
        self.records: list[FaultRecord] = []
        self._streams = {
            kind: random.Random(f"{seed}:{kind}")
            for kind in FAULT_KINDS + MESSAGE_FAULT_KINDS + REPLICA_FAULT_KINDS
        }
        self._crashes = 0
        self._partitions = 0
        self._replica_crashes = 0

    def __bool__(self) -> bool:
        return not self.spec.is_empty

    # ------------------------------------------------------------------
    # Fault points
    # ------------------------------------------------------------------

    def spurious_abort(self, txn: int) -> bool:
        """Should ``txn`` be spuriously aborted before its next operation?"""
        return self._fires("spurious_abort", self.spec.spurious_abort_rate, txn)

    def op_failure(self, txn: int) -> bool:
        """Should the next operation execution fail transiently?"""
        return self._fires("op_failure", self.spec.op_failure_rate, txn)

    def commit_delay(self, txn: int) -> float | None:
        """Delay to impose on the commit attempt, or ``None``."""
        if self._fires(
            "commit_delay",
            self.spec.commit_delay_rate,
            txn,
            detail=f"+{self.spec.commit_delay}",
        ):
            return self.spec.commit_delay
        return None

    def cache_poison(self) -> str | None:
        """Cache fault to inject now: ``"evict"``, ``"corrupt"`` or ``None``.

        The mode itself is part of the seeded schedule (a second draw,
        from the point's own stream, made only when the point fires).
        """
        if not self._may_fire("cache_poison", self.spec.cache_poison_rate):
            return None
        mode = "evict" if self._streams["cache_poison"].random() < 0.5 else "corrupt"
        self._record("cache_poison", detail=mode)
        return mode

    def crash(self) -> bool:
        """Should the scheduler crash now?  Capped by ``max_crashes``."""
        if self._crashes >= self.spec.max_crashes:
            return False
        if not self._may_fire("crash", self.spec.crash_rate):
            return False
        self._crashes += 1
        self._record("crash")
        return True

    # ------------------------------------------------------------------
    # Message-level fault points (consulted by the SimBus per send)
    # ------------------------------------------------------------------

    def msg_drop(self, detail: str = "") -> bool:
        """Should this message be silently dropped?"""
        return self._fires("msg_drop", self.spec.msg_drop_rate, -1, detail)

    def msg_duplicate(self, detail: str = "") -> bool:
        """Should this message be delivered twice?"""
        return self._fires(
            "msg_duplicate", self.spec.msg_duplicate_rate, -1, detail
        )

    def msg_delay(self, detail: str = "") -> float | None:
        """Extra bounded latency for this message, or ``None``.

        The amount is a second seeded draw from the point's own stream,
        made only when the point fires, scaled by ``msg_delay_max``.
        """
        if not self._may_fire("msg_delay", self.spec.msg_delay_rate):
            return None
        delay = self._streams["msg_delay"].random() * self.spec.msg_delay_max
        self._record("msg_delay", detail=f"{detail}+{delay:.6f}".strip("+"))
        return delay

    def msg_reorder(self, detail: str = "") -> float | None:
        """Jitter that pushes this message past later sends, or ``None``."""
        if not self._may_fire("msg_reorder", self.spec.msg_reorder_rate):
            return None
        jitter = (
            self._streams["msg_reorder"].random() * self.spec.msg_reorder_window
        )
        self._record("msg_reorder", detail=f"{detail}+{jitter:.6f}".strip("+"))
        return jitter

    def partition(self, choices: int) -> tuple[int, float] | None:
        """Open a partition now?  ``(seeded choice, duration)`` or ``None``.

        ``choices`` is the number of candidate links; the pick is a
        second draw from the point's own stream.  Capped by
        ``max_partitions``.
        """
        if choices <= 0 or self._partitions >= self.spec.max_partitions:
            return None
        if not self._may_fire("partition", self.spec.partition_rate):
            return None
        pick = min(
            int(self._streams["partition"].random() * choices), choices - 1
        )
        self._partitions += 1
        duration = self.spec.partition_duration
        self._record("partition", detail=f"link={pick} duration={duration}")
        return pick, duration

    # ------------------------------------------------------------------
    # Replication-level fault points (consulted at cluster boundaries)
    # ------------------------------------------------------------------

    def replica_crash(self, choices: int) -> int | None:
        """Crash a backup replica now?  Seeded victim index or ``None``.

        ``choices`` is the number of live backups; the pick is a second
        draw from the point's own stream (the :meth:`partition`
        pattern).  Capped by ``max_replica_crashes``.  The point owns a
        private stream, so plans without ``replica_crash_rate`` never
        draw from it and stay bit-identical to pre-replication runs.
        """
        if choices <= 0 or self._replica_crashes >= self.spec.max_replica_crashes:
            return None
        if not self._may_fire("replica_crash", self.spec.replica_crash_rate):
            return None
        pick = min(
            int(self._streams["replica_crash"].random() * choices), choices - 1
        )
        self._replica_crashes += 1
        self._record("replica_crash", detail=f"backup={pick}")
        return pick

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> dict:
        """A JSON-ready account of the campaign (deterministic field order)."""
        return {
            "seed": self.seed,
            "spec": asdict(self.spec),
            "faults_injected": self.stats.faults_injected,
            "faults_by_kind": dict(self.stats.faults_by_kind),
            "records": [record.to_dict() for record in self.records],
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _may_fire(self, kind: str, rate: float) -> bool:
        """One draw from ``kind``'s stream against ``rate`` (no draw for
        zero rates, so untouched points stay byte-identical)."""
        if rate <= 0.0:
            return False
        if self.stats.faults_injected >= self.spec.max_faults:
            return False
        return self._streams[kind].random() < rate

    def _fires(self, kind: str, rate: float, txn: int, detail: str = "") -> bool:
        if not self._may_fire(kind, rate):
            return False
        self._record(kind, txn=txn, detail=detail)
        return True

    def _record(self, kind: str, txn: int = -1, detail: str = "") -> None:
        self.records.append(
            FaultRecord(
                index=self.stats.faults_injected,
                kind=kind,
                txn=txn,
                detail=detail,
            )
        )
        self.stats.faults_injected += 1
        self.stats.faults_by_kind[kind] = (
            self.stats.faults_by_kind.get(kind, 0) + 1
        )

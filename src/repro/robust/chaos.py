"""Chaos campaigns: fault storms + crash sweeps over an ADT/seed matrix.

The ``chaos`` CLI subcommand and the CI ``chaos-smoke`` job both bottom
out here: :func:`run_chaos` takes a matrix of (ADT × policy × seed)
cells and, per cell, (a) runs the exhaustive crash-point sweep
(:func:`repro.robust.crash.crash_sweep`) and (b) drives the workload
under a seeded fault storm with the invariant monitor attached,
verifying the run completes with a serializable committed history.  The
result is a plain JSON-ready report; everything feeding it is seeded
and clock-free, so the same matrix and spec produce a **byte-identical**
report (``render_report`` serialises with sorted keys) — chaos results
are diffable artifacts, not flaky dashboards.
"""

from __future__ import annotations

import json

from repro.cc.harness import drive
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.serializability import is_serializable
from repro.cc.workload import WorkloadConfig, generate
from repro.robust.crash import crash_sweep
from repro.robust.decision_log import DecisionLog
from repro.robust.faults import FaultPlan, FaultSpec, RobustStats
from repro.robust.monitor import MonitoredScheduler

__all__ = ["run_chaos", "render_report"]


def _storm_cell(
    adt, table, workload, policy: str, seed: int, spec: FaultSpec,
    check_interval: int,
) -> dict:
    """One fault-storm run under the monitor; returns its report cell."""
    stats = RobustStats()
    plan = FaultPlan(seed, spec, stats=stats)
    monitored = MonitoredScheduler(
        TableDrivenScheduler(policy=policy),
        log=DecisionLog(),
        check_interval=check_interval,
        robust_stats=stats,
    )
    final = {"scheduler": monitored}

    def remember(_index, scheduler):
        # The fault plan may crash-swap the scheduler mid-run; the cell
        # audits whichever instance finished the workload.
        final["scheduler"] = scheduler
        return None

    transcript = drive(
        monitored, adt, table, workload, checkpoint=remember, fault_plan=plan
    )
    survivor = final["scheduler"]
    return {
        "serializable": is_serializable(survivor),
        "degraded": bool(getattr(survivor, "degraded", False)),
        "committed": list(transcript.committed()),
        "final_state": transcript.final_state,
        "faults": plan.report(),
        "robust": stats.to_dict(),
    }


def run_chaos(
    adts: dict[str, tuple],
    policies: tuple[str, ...] = ("optimistic", "blocking"),
    seeds: tuple[int, ...] = (1991,),
    transactions: int = 6,
    operations: int = 3,
    spec: FaultSpec | None = None,
    check_interval: int = 4,
    crash_sweep_enabled: bool = True,
    distributed: bool = False,
    shard_counts: tuple[int, ...] = (1, 2),
    serving: bool = False,
    replication: bool = False,
) -> dict:
    """Run the full chaos matrix and return the JSON-ready report.

    ``adts`` maps ADT name to ``(adt, table)`` — callers derive the
    tables (the CLI via :func:`repro.core.methodology.derive`).  The
    report's ``"passed"`` field is the CI gate: every sweep transcript
    identical and every storm serializable.

    ``distributed=True`` additionally runs the sharded campaign
    (:func:`repro.dist.chaos.run_dist_chaos`) over ``shard_counts`` —
    message storms over the simulated bus plus the distributed
    crash-point sweep — and embeds its report under ``"distributed"``,
    folding its verdict into ``"passed"``.

    ``serving=True`` additionally runs the serving campaign
    (:func:`repro.serve.chaos.run_serving_chaos`) — overload plus
    faults against the hardened serving loop, with the graceful-
    degradation goodput gate and the no-resurrection certification —
    and embeds its report under ``"serving"``, folding its verdict
    into ``"passed"``.

    ``replication=True`` additionally runs the replicated-failover
    campaign (:func:`repro.dist.chaos.run_replication_chaos`) — primary
    kills mid-2PC, partition-then-heal false suspicion, dueling-primary
    fencing, and backup-crash storms over replica groups — and embeds
    its report under ``"replication"``, folding its verdict into
    ``"passed"``.
    """
    spec = spec if spec is not None else FaultSpec.storm()
    cells = []
    passed = True
    for adt_name in sorted(adts):
        adt, table = adts[adt_name]
        for policy in policies:
            for seed in seeds:
                workload = generate(
                    adt,
                    "obj",
                    WorkloadConfig(
                        transactions=transactions,
                        operations_per_transaction=operations,
                        seed=seed,
                    ),
                )
                cell: dict = {"adt": adt_name, "policy": policy, "seed": seed}
                if crash_sweep_enabled:
                    sweep = crash_sweep(adt, table, workload, policy=policy)
                    cell["crash_sweep"] = sweep.to_dict()
                    passed = passed and sweep.passed
                storm = _storm_cell(
                    adt, table, workload, policy, seed, spec, check_interval
                )
                cell["fault_storm"] = storm
                passed = passed and storm["serializable"]
                cells.append(cell)
    dist_report = None
    if distributed:
        # Imported lazily: repro.dist builds on this module's siblings.
        from repro.dist.chaos import run_dist_chaos

        dist_report = run_dist_chaos(
            adts,
            shard_counts=shard_counts,
            seeds=seeds,
            policy=policies[0],
            transactions=transactions,
            operations=operations,
            crash_sweep_enabled=crash_sweep_enabled,
        )
        passed = passed and dist_report["passed"]
    serving_report = None
    if serving:
        # Imported lazily: repro.serve builds on this module's siblings.
        from repro.serve.chaos import run_serving_chaos

        serving_report = run_serving_chaos(
            adts,
            shard_counts=tuple(n for n in shard_counts if n > 0) or (1,),
            seeds=seeds,
            intensity=spec.spurious_abort_rate or 0.05,
        )
        passed = passed and serving_report["passed"]
    replication_report = None
    if replication:
        # Imported lazily: repro.dist builds on this module's siblings.
        from repro.dist.chaos import run_replication_chaos

        replication_report = run_replication_chaos(
            adts,
            shard_counts=tuple(n for n in shard_counts if n > 1) or (2,),
            seeds=seeds,
        )
        passed = passed and replication_report["passed"]
    report = {
        "matrix": {
            "adts": sorted(adts),
            "policies": list(policies),
            "seeds": list(seeds),
            "transactions": transactions,
            "operations": operations,
        },
        "spec": {
            "spurious_abort_rate": spec.spurious_abort_rate,
            "op_failure_rate": spec.op_failure_rate,
            "commit_delay_rate": spec.commit_delay_rate,
            "cache_poison_rate": spec.cache_poison_rate,
            "crash_rate": spec.crash_rate,
            "max_faults": spec.max_faults,
            "max_crashes": spec.max_crashes,
        },
        "cells": cells,
        "passed": passed,
    }
    if dist_report is not None:
        report["distributed"] = dist_report
        report["matrix"]["shard_counts"] = list(shard_counts)
    if serving_report is not None:
        report["serving"] = serving_report
    if replication_report is not None:
        report["replication"] = replication_report
    return report


def render_report(report: dict) -> str:
    """Byte-stable serialisation of a chaos report (sorted keys)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"

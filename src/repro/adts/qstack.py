"""The QStack of the paper (Section 2), specified as graph programs.

A QStack combines the properties of a stack and a queue.  Elements enter at
the *back* (``Push``/``Enq``) and can leave from the back (``Pop``) or from
the *front* (``Deq``).  The object graph (Figure 2) is a chain of component
vertices whose ordering edges point towards the front, with two implicit
references: ``b`` (the back/stack pointer) used by ``Push``, ``Pop``,
``Top`` and ``XTop``, and ``f`` (the front pointer) used by ``Deq``.

Note on reference names: the *text* of the paper (Section 4.3 and Figure 2)
says the back pointer ``b`` is used by Enq/Push/Pop/Top and the front
pointer ``f`` by Deq, while the paper's Table 9 prints the opposite
assignment.  This module follows the text (and Figure 2); the discrepancy
is recorded in EXPERIMENTS.md and handled by the Table-9 experiment.

The abstract state of a QStack is the tuple of its elements from front to
back: ``("x", "y")`` is a QStack whose front element is ``"x"`` and whose
back element is ``"y"``.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.graph.builder import build_chain
from repro.graph.instrument import InstrumentedGraph
from repro.graph.object_graph import ObjectGraph
from repro.graph.analysis import ordering_walk
from repro.spec.adt import ADTSpec, EnumerationBounds
from repro.spec.operation import OperationSpec
from repro.spec.returnvalue import ReturnValue, nok, ok, result_only

__all__ = ["QStackSpec", "QSTACK_OPERATIONS"]

#: Names of the full QStack operation set, in the paper's order of
#: introduction (Section 2).  ``Enq`` is an alias of ``Push`` and is only
#: included when the spec is built with ``include_enq=True``.
QSTACK_OPERATIONS = ("Push", "Pop", "Deq", "Top", "Size", "Replace", "XTop")


class _QStackOperation(OperationSpec):
    """Base class carrying the capacity shared by all QStack operations."""

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [()]

    # -- shared graph-program helpers ----------------------------------

    def _is_full(self, view: InstrumentedGraph) -> bool:
        """Occupancy check against the capacity.

        Occupancy is maintained as metadata of the object (like the
        references), so checking it does not by itself observe any
        component vertex; the return-value dependence it induces is
        captured by the modifier-observer classification instead.
        """
        return len(view.graph) >= self._capacity

    @staticmethod
    def _single(vids: set[int]) -> int | None:
        """The only element of a 0/1-element set (chains guarantee this)."""
        return next(iter(vids)) if vids else None


class PushOp(_QStackOperation):
    """``Push(e): ok/nok`` — add ``e`` at the back of the QStack.

    Returns ``ok`` if the QStack is not full, ``nok`` (overflow) otherwise.
    A successful Push inserts a vertex, chains it before the old back
    vertex and retargets ``b`` (and ``f`` too when the QStack was empty).
    """

    name = "Push"
    referencing = "implicit"
    references_used = frozenset({"b"})
    declared_profile = {
        "class": "MO",
        "observer_kind": "S",
        "modifier_kind": "CS",
        "is_global": False,
        "outcomes": {"ok", "nok"},
        "has_result": False,
    }

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [(element,) for element in bounds.domain]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        (element,) = args
        if self._is_full(view):
            return nok()
        back = view.deref("b")
        new_back = view.insert_vertex(element)
        if back is not None:
            view.add_ordering_edge(new_back, back)
        view.retarget("b", new_back)
        if back is None:
            view.retarget("f", new_back)
        return ok()


class EnqOp(PushOp):
    """``Enq(e): ok/nok`` — the paper's alternative name for ``Push``."""

    name = "Enq"


class PopOp(_QStackOperation):
    """``Pop(): e/nok`` — delete and return the element at the back.

    Returns the element if the QStack is not empty, ``nok`` otherwise.
    The composed-of edge that is the current stack pointer is deleted; the
    ordering edges define which composed-of edge becomes the new stack
    pointer (Section 4.3).
    """

    name = "Pop"
    referencing = "implicit"
    references_used = frozenset({"b"})
    declared_profile = {
        "class": "MO",
        "observer_kind": "CS",
        "modifier_kind": "CS",
        "is_global": False,
        "outcomes": {"result", "nok"},
        "has_result": True,
    }

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        back = view.deref("b")
        if back is None:
            return nok()
        towards_front = view.observe_order(back)
        value = view.delete_vertex(back)
        new_back = self._single(towards_front)
        view.retarget("b", new_back)
        if new_back is None:
            view.retarget("f", None)
        return result_only(value)


class DeqOp(_QStackOperation):
    """``Deq(): e/nok`` — delete and return the element at the front.

    Returns the element if the QStack is not empty, ``nok`` otherwise.
    Uses the front pointer ``f``; the new front is the component whose
    ordering edge pointed at the old front.
    """

    name = "Deq"
    referencing = "implicit"
    references_used = frozenset({"f"})
    declared_profile = {
        "class": "MO",
        "observer_kind": "CS",
        "modifier_kind": "CS",
        "is_global": False,
        "outcomes": {"result", "nok"},
        "has_result": True,
    }

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        front = view.deref("f")
        if front is None:
            return nok()
        behind_front = view.observe_predecessors(front)
        value = view.delete_vertex(front)
        new_front = self._single(behind_front)
        view.retarget("f", new_front)
        if new_front is None:
            view.retarget("b", None)
        return result_only(value)


class TopOp(_QStackOperation):
    """``Top(): e/nok`` — return (without removing) the element at the back.

    Observes both the structure (the existence of the back component,
    through the ``b`` reference) and its content, making Top a CSO
    operation in the paper's Section 4.4 discussion.
    """

    name = "Top"
    referencing = "implicit"
    references_used = frozenset({"b"})
    declared_profile = {
        "class": "O",
        "observer_kind": "CS",
        "modifier_kind": None,
        "is_global": False,
        "outcomes": {"result", "nok"},
        "has_result": True,
    }

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        back = view.deref("b")
        if back is None:
            return nok()
        return result_only(view.observe_content(back))


class SizeOp(_QStackOperation):
    """``Size(): n`` — return the number of elements.

    "Size observes the structure and counts the vertices present"
    (Section 4.2): every component's presence is observed, which makes Size
    a *global structure observer* (Def. 19).  Size uses no reference —
    counting composed-of edges requires no specific order (Section 5).
    """

    name = "Size"
    referencing = "none"
    references_used = frozenset()
    declared_profile = {
        "class": "O",
        "observer_kind": "S",
        "modifier_kind": None,
        "is_global": True,
        "global_kinds": {"so"},
        "outcomes": {"result"},
        "has_result": True,
    }

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        return result_only(len(view.observe_all_presence()))


class ReplaceOp(_QStackOperation):
    """``Replace(e1, e2): ok`` — replace every ``e1`` element with ``e2``.

    Always returns ``ok``.  Replace reads the content of *every* component
    (making it a global content observer, the paper's Def. 19 example) and
    rewrites the matching ones; it never touches the structure.  The
    components are visited through their composed-of edges in no
    particular order, so no structure observation is recorded — the same
    rationale the paper gives for Size not using a reference.
    """

    name = "Replace"
    referencing = "explicit"
    references_used = frozenset()
    declared_profile = {
        "class": "M",
        "observer_kind": "C",
        "modifier_kind": "C",
        "is_global": True,
        "global_kinds": {"co"},
        "outcomes": {"ok"},
        "has_result": False,
    }

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [
            (old, new)
            for old in bounds.domain
            for new in bounds.domain
            if old != new
        ]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        old, new = args
        for vid in sorted(view.graph.vertex_ids()):
            if view.observe_content(vid) == old:
                view.modify_content(vid, new)
        return ok()


class XTopOp(_QStackOperation):
    """``XTop(): ok/nok`` — exchange the first two elements at the back.

    Returns ``ok`` if two elements exist, ``nok`` otherwise.  As specified
    by the paper, XTop re-wires ordering edges without touching any
    vertex's content: its content-modification locality is empty while its
    structure-modification locality is not (Section 4.2).
    """

    name = "XTop"
    referencing = "implicit"
    references_used = frozenset({"b"})
    #: XTop's abstract locality is the back three components — local for
    #: any unbounded QStack (enumeration at capacity 3 over-approximates
    #: it as global; see the bound-sensitivity tests).
    declared_profile = {
        "class": "MO",
        "observer_kind": "S",
        "modifier_kind": "S",
        "is_global": False,
        "outcomes": {"ok", "nok"},
        "has_result": False,
    }

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        back = view.deref("b")
        if back is None:
            return nok()
        second = self._single(view.observe_order(back))
        if second is None:
            return nok()
        third = self._single(view.observe_order(second))
        view.remove_ordering_edge(back, second)
        if third is not None:
            view.remove_ordering_edge(second, third)
            view.add_ordering_edge(back, third)
        view.add_ordering_edge(second, back)
        view.retarget("b", second)
        if third is None:
            # With exactly two elements the exchange also changes which
            # component is at the front.
            view.retarget("f", back)
        return ok()


class QStackSpec(ADTSpec):
    """Executable specification of the paper's QStack.

    Args:
        capacity: Maximum number of elements (``Push`` overflows beyond it).
        domain: Element universe used for state/argument enumeration.
        operations: Optional subset of operation names to expose (the
            Section-5 worked example uses only Push/Pop/Deq/Top/Size).
        include_enq: Also expose ``Enq``, the paper's alias for ``Push``.
    """

    name = "QStack"

    def __init__(
        self,
        capacity: int = 3,
        domain: tuple[Any, ...] = ("a", "b"),
        operations: Iterable[str] | None = None,
        include_enq: bool = False,
    ) -> None:
        self._capacity = capacity
        self._domain = tuple(domain)
        self.default_bounds = EnumerationBounds(capacity=capacity, domain=self._domain)
        available: dict[str, OperationSpec] = {
            "Push": PushOp(capacity),
            "Pop": PopOp(capacity),
            "Deq": DeqOp(capacity),
            "Top": TopOp(capacity),
            "Size": SizeOp(capacity),
            "Replace": ReplaceOp(capacity),
            "XTop": XTopOp(capacity),
        }
        if include_enq:
            available["Enq"] = EnqOp(capacity)
        if operations is None:
            selected = dict(available)
        else:
            selected = {name: available[name] for name in operations}
        self._operations = selected

    @property
    def capacity(self) -> int:
        """Maximum number of elements the QStack holds."""
        return self._capacity

    @property
    def operations(self) -> Mapping[str, OperationSpec]:
        return self._operations

    def states(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        """All element tuples (front to back) up to the bounded capacity."""
        capacity = min(bounds.capacity, self._capacity)

        def extend(prefix: tuple) -> Iterable[tuple]:
            yield prefix
            if len(prefix) < capacity:
                for element in bounds.domain:
                    yield from extend(prefix + (element,))

        return extend(())

    def initial_state(self) -> tuple:
        return ()

    def build_graph(self, state: tuple) -> ObjectGraph:
        """Materialise Figure 2: a front-to-back chain with ``f``/``b``."""
        values = list(state)
        references = [
            ("f", 0 if values else None),
            ("b", len(values) - 1 if values else None),
        ]
        return build_chain("QStack", values, references=references)

    def abstract_state(self, graph: ObjectGraph) -> tuple:
        """Read the front-to-back element tuple off the ordering chain."""
        vids = graph.vertex_ids()
        if not vids:
            return ()
        heads = [vid for vid in vids if not graph.predecessors(vid)]
        if len(heads) != 1:
            raise ValueError("QStack graph is not a linear chain")
        back_to_front = list(ordering_walk(graph, heads[0]))
        if len(back_to_front) != len(vids):
            raise ValueError("QStack ordering chain does not cover all components")
        return tuple(graph.vertex(vid).value for vid in reversed(back_to_front))

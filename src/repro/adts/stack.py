"""A bounded LIFO stack, specified as graph programs.

The Stack is the QStack without the queue-side operations: all access goes
through the single implicit stack-pointer reference ``b``.  It is the
classic example used by the commutativity literature the paper builds on
(two Pushes do not commute; Push and Pop conflict), and it exercises the
methodology on an object with exactly one reference.

Abstract state: tuple of elements from bottom to top.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.graph.analysis import ordering_walk
from repro.graph.builder import build_chain
from repro.graph.instrument import InstrumentedGraph
from repro.graph.object_graph import ObjectGraph
from repro.spec.adt import ADTSpec, EnumerationBounds
from repro.spec.operation import OperationSpec
from repro.spec.returnvalue import ReturnValue, nok, ok, result_only

__all__ = ["StackSpec"]


class _StackOperation(OperationSpec):
    def __init__(self, capacity: int) -> None:
        self._capacity = capacity

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [()]


class StackPushOp(_StackOperation):
    """``Push(e): ok/nok`` — add ``e`` at the top; overflow returns ``nok``."""

    name = "Push"
    referencing = "implicit"
    references_used = frozenset({"b"})

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [(element,) for element in bounds.domain]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        (element,) = args
        if len(view.graph) >= self._capacity:
            return nok()
        top = view.deref("b")
        new_top = view.insert_vertex(element)
        if top is not None:
            view.add_ordering_edge(new_top, top)
        view.retarget("b", new_top)
        return ok()


class StackPopOp(_StackOperation):
    """``Pop(): e/nok`` — remove and return the top element."""

    name = "Pop"
    referencing = "implicit"
    references_used = frozenset({"b"})

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        top = view.deref("b")
        if top is None:
            return nok()
        below = view.observe_order(top)
        value = view.delete_vertex(top)
        view.retarget("b", next(iter(below)) if below else None)
        return result_only(value)


class StackTopOp(_StackOperation):
    """``Top(): e/nok`` — return (without removing) the top element."""

    name = "Top"
    referencing = "implicit"
    references_used = frozenset({"b"})

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        top = view.deref("b")
        if top is None:
            return nok()
        return result_only(view.observe_content(top))


class StackSizeOp(_StackOperation):
    """``Size(): n`` — count the elements (global structure observer)."""

    name = "Size"
    referencing = "none"
    references_used = frozenset()

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        return result_only(len(view.observe_all_presence()))


class StackSpec(ADTSpec):
    """Executable specification of a bounded LIFO stack."""

    name = "Stack"

    def __init__(self, capacity: int = 3, domain: tuple[Any, ...] = ("a", "b")) -> None:
        self._capacity = capacity
        self.default_bounds = EnumerationBounds(capacity=capacity, domain=tuple(domain))
        self._operations: dict[str, OperationSpec] = {
            "Push": StackPushOp(capacity),
            "Pop": StackPopOp(capacity),
            "Top": StackTopOp(capacity),
            "Size": StackSizeOp(capacity),
        }

    @property
    def operations(self) -> Mapping[str, OperationSpec]:
        return self._operations

    def states(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        capacity = min(bounds.capacity, self._capacity)

        def extend(prefix: tuple) -> Iterable[tuple]:
            yield prefix
            if len(prefix) < capacity:
                for element in bounds.domain:
                    yield from extend(prefix + (element,))

        return extend(())

    def initial_state(self) -> tuple:
        return ()

    def build_graph(self, state: tuple) -> ObjectGraph:
        """A bottom-to-top chain with the stack pointer ``b`` at the top."""
        values = list(state)
        references = [("b", len(values) - 1 if values else None)]
        return build_chain("Stack", values, references=references)

    def abstract_state(self, graph: ObjectGraph) -> tuple:
        vids = graph.vertex_ids()
        if not vids:
            return ()
        heads = [vid for vid in vids if not graph.predecessors(vid)]
        if len(heads) != 1:
            raise ValueError("Stack graph is not a linear chain")
        top_to_bottom = list(ordering_walk(graph, heads[0]))
        return tuple(graph.vertex(vid).value for vid in reversed(top_to_bottom))

"""Composite (complex) objects: ADTs whose components are ADT instances.

Section 4.1: "In case an object has components which are themselves
objects, then concurrent access to that object ... are controlled by the
component object", with the multilevel concurrency-control literature
[9, 10, 11] handling the hierarchy.  A :class:`CompositeSpec` realises
this model:

* the object graph has one **complex vertex per component**, whose value
  is the component's own object graph (Def. 10's recursive content,
  Def. 18's path-based ``V_simple``);
* the operations are the components' operations, namespaced
  ``<component>.<operation>`` and delegated;
* at the *parent* level a delegated operation is a content access on the
  component's vertex — the multilevel abstraction: whatever happens
  inside a component is, to the parent, a change/observation of one
  composed-of child;
* each component doubles as a declared **reference** of the parent, so
  Stage 5 derives ``a ≠ b`` no-dependency predicates between operations
  on distinct components — operations on different components never
  conflict, which is the concurrency composition buys.

Component state spaces multiply, so composites should be built from small
components (two accounts, an account and a mailbox, ...).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import SpecError
from repro.graph.instrument import InstrumentedGraph
from repro.graph.object_graph import ObjectGraph
from repro.spec.adt import ADTSpec, EnumerationBounds, execute_invocation
from repro.spec.operation import Invocation, OperationSpec
from repro.spec.returnvalue import ReturnValue

__all__ = ["CompositeSpec", "DelegatedOp"]


class DelegatedOp(OperationSpec):
    """A component operation lifted to the composite.

    Executing it locates the component's vertex through the component's
    named reference, runs the inner operation against the component's own
    graph, and records the access at the parent level: a content
    observation always (the outcome reflects the component's state), plus
    a content modification when the component's state changed.
    """

    referencing = "implicit"

    def __init__(
        self, component: str, component_adt: ADTSpec, inner: OperationSpec
    ) -> None:
        self.component = component
        self.component_adt = component_adt
        self.inner = inner
        self.name = f"{component}.{inner.name}"
        self.references_used = frozenset({component})

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return self.inner.argument_tuples(self.component_adt.default_bounds)

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        vid = view.deref(self.component)
        if vid is None:  # pragma: no cover - components are permanent
            raise SpecError(f"component {self.component!r} is missing")
        before = view.observe_content(vid)
        inner_graph: ObjectGraph = view.graph.vertex(vid).value
        inner_view = InstrumentedGraph(inner_graph, attribution=view.attribution)
        returned = self.inner.execute(inner_view, *args)
        after = view.graph.content(vid)
        if after != before:
            view.modify_content(vid, inner_graph)
        return returned


class CompositeSpec(ADTSpec):
    """An object composed of named component objects.

    Args:
        name: Composite type name.
        components: Ordered mapping of component name to its ADT spec.

    Abstract states are tuples of component abstract states, in component
    declaration order.
    """

    def __init__(self, name: str, components: Mapping[str, ADTSpec]) -> None:
        if not components:
            raise SpecError("a composite needs at least one component")
        self.name = name
        self._components = dict(components)
        self._order = list(components)
        self.default_bounds = EnumerationBounds(
            capacity=max(
                adt.default_bounds.capacity for adt in components.values()
            ),
            domain=tuple(
                sorted(
                    {
                        value
                        for adt in components.values()
                        for value in adt.default_bounds.domain
                    },
                    key=repr,
                )
            ),
        )
        self._operations: dict[str, OperationSpec] = {}
        for component, adt in self._components.items():
            for inner in adt.operations.values():
                delegated = DelegatedOp(component, adt, inner)
                self._operations[delegated.name] = delegated

    @property
    def components(self) -> Mapping[str, ADTSpec]:
        """The component specs, by name."""
        return dict(self._components)

    @property
    def operations(self) -> Mapping[str, OperationSpec]:
        return self._operations

    def states(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        """The product of the component state spaces."""
        del bounds  # components enumerate under their own bounds

        def extend(index: int, prefix: tuple) -> Iterable[tuple]:
            if index == len(self._order):
                yield prefix
                return
            component = self._components[self._order[index]]
            for state in component.states(component.default_bounds):
                yield from extend(index + 1, prefix + (state,))

        return extend(0, ())

    def initial_state(self) -> tuple:
        return tuple(
            self._components[name].initial_state() for name in self._order
        )

    def build_graph(self, state: tuple) -> ObjectGraph:
        """One complex vertex per component, referenced by component name."""
        graph = ObjectGraph(self.name)
        for name, component_state in zip(self._order, state):
            inner = self._components[name].build_graph(component_state)
            vid = graph.add_vertex(value=inner, label=name)
            graph.declare_reference(name, vid)
        return graph

    def abstract_state(self, graph: ObjectGraph) -> tuple:
        parts = []
        for name in self._order:
            vid = graph.reference(name)
            inner: ObjectGraph = graph.vertex(vid).value
            parts.append(self._components[name].abstract_state(inner))
        return tuple(parts)

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------

    def component_invocation(
        self, component: str, operation: str, *args: Any
    ) -> Invocation:
        """Build an invocation of ``<component>.<operation>``."""
        name = f"{component}.{operation}"
        if name not in self._operations:
            raise SpecError(f"unknown composite operation {name!r}")
        return Invocation(name, tuple(args))

    def component_state(self, state: tuple, component: str):
        """Project a composite state onto one component."""
        return state[self._order.index(component)]

    def run_component(
        self, state: tuple, component: str, operation: str, *args: Any
    ):
        """Execute a component operation on a composite state (testing aid)."""
        return execute_invocation(
            self, state, self.component_invocation(component, operation, *args)
        )

"""A Directory (key-value map) ADT, specified as graph programs.

The Directory models the paper's relation example: operations locate their
record by key (*explicit referencing*, like ``search(x)`` in Section 4.3).
Operations on different keys have disjoint localities, so the derived table
contains input-inequality no-dependency conditions; operations on the same
key conflict exactly as reads/writes on a record would.

Abstract state: ``frozenset`` of ``(key, value)`` pairs with unique keys.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.graph.instrument import InstrumentedGraph
from repro.graph.object_graph import ObjectGraph
from repro.graph.vertex import VertexId
from repro.spec.adt import ADTSpec, EnumerationBounds
from repro.spec.operation import OperationSpec
from repro.spec.returnvalue import ReturnValue, nok, ok, result_only

__all__ = ["DirectorySpec"]


def _locate(view: InstrumentedGraph, key: Any) -> VertexId | None:
    """Find the record vertex for ``key`` (explicit referencing by key)."""
    for vid in view.graph.vertex_ids():
        record = view.graph.vertex(vid).value
        if record[0] == key:
            view.observe_presence(vid)
            return vid
    return None


class _DirectoryOperation(OperationSpec):
    referencing = "explicit"
    references_used = frozenset()

    def __init__(self, keys: tuple, values: tuple) -> None:
        self._keys = keys
        self._values = values


class DirInsertOp(_DirectoryOperation):
    """``Insert(k, v): ok/nok`` — add a record; ``nok`` if the key exists."""

    name = "Insert"

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [(key, value) for key in self._keys for value in self._values]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        key, value = args
        if _locate(view, key) is not None:
            return nok()
        view.insert_vertex((key, value))
        return ok()


class DirDeleteOp(_DirectoryOperation):
    """``Delete(k): ok/nok`` — remove a record; ``nok`` if the key is absent."""

    name = "Delete"

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [(key,) for key in self._keys]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        (key,) = args
        vid = _locate(view, key)
        if vid is None:
            return nok()
        # Delete discards the stored value: no content observation.
        view.delete_vertex(vid, observe_value=False)
        return ok()


class DirLookupOp(_DirectoryOperation):
    """``Lookup(k): v/nok`` — return the value stored under ``k``."""

    name = "Lookup"

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [(key,) for key in self._keys]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        (key,) = args
        vid = _locate(view, key)
        if vid is None:
            return nok()
        return result_only(view.observe_content(vid)[1])


class DirUpdateOp(_DirectoryOperation):
    """``Update(k, v): ok/nok`` — overwrite the value; ``nok`` if absent."""

    name = "Update"

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [(key, value) for key in self._keys for value in self._values]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        key, value = args
        vid = _locate(view, key)
        if vid is None:
            return nok()
        view.modify_content(vid, (key, value))
        return ok()


class DirectorySpec(ADTSpec):
    """Executable specification of a key-value directory."""

    name = "Directory"

    def __init__(
        self,
        keys: tuple = ("k1", "k2"),
        values: tuple = ("u", "v"),
    ) -> None:
        self._keys = tuple(keys)
        self._values = tuple(values)
        self.default_bounds = EnumerationBounds(
            capacity=len(self._keys), domain=self._keys + self._values
        )
        self._operations: dict[str, OperationSpec] = {
            "Insert": DirInsertOp(self._keys, self._values),
            "Delete": DirDeleteOp(self._keys, self._values),
            "Lookup": DirLookupOp(self._keys, self._values),
            "Update": DirUpdateOp(self._keys, self._values),
        }

    @property
    def operations(self) -> Mapping[str, OperationSpec]:
        return self._operations

    def states(self, bounds: EnumerationBounds) -> Iterable[frozenset]:
        """Every partial mapping from the key universe to the value universe."""

        def extend(remaining: tuple, acc: frozenset) -> Iterable[frozenset]:
            if not remaining:
                yield acc
                return
            key, rest = remaining[0], remaining[1:]
            yield from extend(rest, acc)  # key absent
            for value in self._values:
                yield from extend(rest, acc | {(key, value)})

        return extend(self._keys, frozenset())

    def initial_state(self) -> frozenset:
        return frozenset()

    def build_graph(self, state: frozenset) -> ObjectGraph:
        graph = ObjectGraph("Directory")
        for record in sorted(state, key=repr):
            graph.add_vertex(value=record)
        return graph

    def abstract_state(self, graph: ObjectGraph) -> frozenset:
        return frozenset(vertex.value for vertex in graph.vertices())

"""Built-in abstract data types.

The QStack is the paper's running example (Section 2); the other types
demonstrate that the methodology is generic: a LIFO Stack (single
reference), a FIFO Queue (two disjoint references), an unordered Set and a
keyed Directory (explicit referencing, no ordering semantics), and a bank
Account (content-only semantics, the recoverability literature's classic).
"""

from repro.adts.account import AccountSpec
from repro.adts.composite import CompositeSpec, DelegatedOp
from repro.adts.directory import DirectorySpec
from repro.adts.fifo_queue import FifoQueueSpec
from repro.adts.priority_queue import PriorityQueueSpec
from repro.adts.qstack import QSTACK_OPERATIONS, QStackSpec
from repro.adts.registry import BUILTIN_ADTS, builtin_names, make_adt
from repro.adts.set_adt import SetSpec
from repro.adts.stack import StackSpec

__all__ = [
    "QStackSpec",
    "CompositeSpec",
    "DelegatedOp",
    "QSTACK_OPERATIONS",
    "StackSpec",
    "FifoQueueSpec",
    "SetSpec",
    "PriorityQueueSpec",
    "AccountSpec",
    "DirectorySpec",
    "BUILTIN_ADTS",
    "builtin_names",
    "make_adt",
]

"""A bounded FIFO queue, specified as graph programs.

The queue is the second half of the QStack: elements enter at the back
(``Enq``, reference ``b``) and leave at the front (``Deq``, reference
``f``).  Because its two mutators work on *disjoint* references whenever
the queue holds two or more elements, the queue is the cleanest showcase
of the paper's Stage-5 refinement (the ``f != b`` locality predicate).

Abstract state: tuple of elements from front to back.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.graph.analysis import ordering_walk
from repro.graph.builder import build_chain
from repro.graph.instrument import InstrumentedGraph
from repro.graph.object_graph import ObjectGraph
from repro.spec.adt import ADTSpec, EnumerationBounds
from repro.spec.operation import OperationSpec
from repro.spec.returnvalue import ReturnValue, nok, ok, result_only

__all__ = ["FifoQueueSpec"]


class _QueueOperation(OperationSpec):
    def __init__(self, capacity: int) -> None:
        self._capacity = capacity

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [()]

    @staticmethod
    def _single(vids: set[int]) -> int | None:
        return next(iter(vids)) if vids else None


class EnqueueOp(_QueueOperation):
    """``Enq(e): ok/nok`` — append ``e`` at the back of the queue."""

    name = "Enq"
    referencing = "implicit"
    references_used = frozenset({"b"})

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [(element,) for element in bounds.domain]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        (element,) = args
        if len(view.graph) >= self._capacity:
            return nok()
        back = view.deref("b")
        new_back = view.insert_vertex(element)
        if back is not None:
            view.add_ordering_edge(new_back, back)
        view.retarget("b", new_back)
        if back is None:
            view.retarget("f", new_back)
        return ok()


class DequeueOp(_QueueOperation):
    """``Deq(): e/nok`` — remove and return the element at the front."""

    name = "Deq"
    referencing = "implicit"
    references_used = frozenset({"f"})

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        front = view.deref("f")
        if front is None:
            return nok()
        behind = view.observe_predecessors(front)
        value = view.delete_vertex(front)
        new_front = self._single(behind)
        view.retarget("f", new_front)
        if new_front is None:
            view.retarget("b", None)
        return result_only(value)


class HeadOp(_QueueOperation):
    """``Head(): e/nok`` — return (without removing) the front element."""

    name = "Head"
    referencing = "implicit"
    references_used = frozenset({"f"})

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        front = view.deref("f")
        if front is None:
            return nok()
        return result_only(view.observe_content(front))


class LengthOp(_QueueOperation):
    """``Length(): n`` — count the elements (global structure observer)."""

    name = "Length"
    referencing = "none"
    references_used = frozenset()

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        return result_only(len(view.observe_all_presence()))


class FifoQueueSpec(ADTSpec):
    """Executable specification of a bounded FIFO queue."""

    name = "FifoQueue"

    def __init__(self, capacity: int = 3, domain: tuple[Any, ...] = ("a", "b")) -> None:
        self._capacity = capacity
        self.default_bounds = EnumerationBounds(capacity=capacity, domain=tuple(domain))
        self._operations: dict[str, OperationSpec] = {
            "Enq": EnqueueOp(capacity),
            "Deq": DequeueOp(capacity),
            "Head": HeadOp(capacity),
            "Length": LengthOp(capacity),
        }

    @property
    def operations(self) -> Mapping[str, OperationSpec]:
        return self._operations

    def states(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        capacity = min(bounds.capacity, self._capacity)

        def extend(prefix: tuple) -> Iterable[tuple]:
            yield prefix
            if len(prefix) < capacity:
                for element in bounds.domain:
                    yield from extend(prefix + (element,))

        return extend(())

    def initial_state(self) -> tuple:
        return ()

    def build_graph(self, state: tuple) -> ObjectGraph:
        values = list(state)
        references = [
            ("f", 0 if values else None),
            ("b", len(values) - 1 if values else None),
        ]
        return build_chain("FifoQueue", values, references=references)

    def abstract_state(self, graph: ObjectGraph) -> tuple:
        vids = graph.vertex_ids()
        if not vids:
            return ()
        heads = [vid for vid in vids if not graph.predecessors(vid)]
        if len(heads) != 1:
            raise ValueError("FifoQueue graph is not a linear chain")
        back_to_front = list(ordering_walk(graph, heads[0]))
        return tuple(graph.vertex(vid).value for vid in reversed(back_to_front))

"""A bank Account ADT, specified as graph programs.

The Account is the canonical example of the *recoverability* literature the
paper characterises in Section 3 (Badrinath & Ramamritham): ``Deposit``
always succeeds and returns a constant outcome (a pure modifier, class M),
``Withdraw`` succeeds only when funds suffice (a modifier-observer, class
MO), and ``Balance`` observes.  Two Deposits never form an
abort-dependency — only a commit-dependency — which is exactly what the
derived compatibility table must show.

The object graph is a single primitive component holding the balance; all
operations are content-only (no structure semantics), so the Account also
exercises the degenerate corner of the D2 dimension.

Abstract state: the integer balance.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.graph.instrument import InstrumentedGraph
from repro.graph.object_graph import ObjectGraph
from repro.spec.adt import ADTSpec, EnumerationBounds
from repro.spec.operation import OperationSpec
from repro.spec.returnvalue import ReturnValue, nok, ok, result_only

__all__ = ["AccountSpec"]


class _AccountOperation(OperationSpec):
    referencing = "implicit"
    references_used = frozenset({"acct"})

    def __init__(self, max_balance: int) -> None:
        self._max_balance = max_balance

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [(amount,) for amount in bounds.domain]


class DepositOp(_AccountOperation):
    """``Deposit(n): ok`` — add ``n`` to the balance (saturating at the cap).

    Always returns ``ok``; deposits above the cap saturate rather than
    fail, keeping Deposit a pure modifier (constant return value).
    """

    name = "Deposit"

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        (amount,) = args
        vid = view.deref("acct")
        balance = view.observe_content(vid)
        view.modify_content(vid, min(balance + amount, self._max_balance))
        return ok()


class WithdrawOp(_AccountOperation):
    """``Withdraw(n): ok/nok`` — subtract ``n``; ``nok`` on insufficient funds."""

    name = "Withdraw"

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        (amount,) = args
        vid = view.deref("acct")
        balance = view.observe_content(vid)
        if balance < amount:
            return nok()
        view.modify_content(vid, balance - amount)
        return ok()


class BalanceOp(_AccountOperation):
    """``Balance(): n`` — return the current balance (content observer)."""

    name = "Balance"

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [()]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        vid = view.deref("acct")
        return result_only(view.observe_content(vid))


class AccountSpec(ADTSpec):
    """Executable specification of a capped bank account."""

    name = "Account"

    def __init__(self, max_balance: int = 4, amounts: tuple[int, ...] = (1, 2)) -> None:
        self._max_balance = max_balance
        self.default_bounds = EnumerationBounds(
            capacity=max_balance, domain=tuple(amounts)
        )
        self._operations: dict[str, OperationSpec] = {
            "Deposit": DepositOp(max_balance),
            "Withdraw": WithdrawOp(max_balance),
            "Balance": BalanceOp(max_balance),
        }

    @property
    def operations(self) -> Mapping[str, OperationSpec]:
        return self._operations

    def states(self, bounds: EnumerationBounds) -> Iterable[int]:
        return range(min(bounds.capacity, self._max_balance) + 1)

    def initial_state(self) -> int:
        return 0

    def build_graph(self, state: int) -> ObjectGraph:
        graph = ObjectGraph("Account")
        vid = graph.add_vertex(value=state, label="balance")
        graph.declare_reference("acct", vid)
        return graph

    def abstract_state(self, graph: ObjectGraph) -> int:
        (vertex,) = list(graph.vertices())
        return vertex.value

"""Registry of the built-in ADT specifications.

Lets examples, experiments and the CLI construct any built-in ADT by name
with its default parameters.
"""

from __future__ import annotations

from typing import Callable

from repro.adts.account import AccountSpec
from repro.adts.composite import CompositeSpec
from repro.adts.directory import DirectorySpec
from repro.adts.fifo_queue import FifoQueueSpec
from repro.adts.priority_queue import PriorityQueueSpec
from repro.adts.qstack import QStackSpec
from repro.adts.set_adt import SetSpec
from repro.adts.stack import StackSpec
from repro.errors import SpecError
from repro.spec.adt import ADTSpec

__all__ = ["BUILTIN_ADTS", "make_adt", "builtin_names"]

def _bank() -> CompositeSpec:
    """A two-account composite (the multilevel/complex-object showcase)."""
    return CompositeSpec(
        "Bank",
        {
            "a": AccountSpec(max_balance=2, amounts=(1,)),
            "b": AccountSpec(max_balance=2, amounts=(1,)),
        },
    )


#: Factories for the built-in ADTs, by canonical name.
BUILTIN_ADTS: dict[str, Callable[[], ADTSpec]] = {
    "QStack": QStackSpec,
    "Bank": _bank,
    "Stack": StackSpec,
    "FifoQueue": FifoQueueSpec,
    "Set": SetSpec,
    "PriorityQueue": PriorityQueueSpec,
    "Account": AccountSpec,
    "Directory": DirectorySpec,
}


def builtin_names() -> list[str]:
    """Names of all built-in ADTs."""
    return sorted(BUILTIN_ADTS)


def make_adt(name: str) -> ADTSpec:
    """Construct a built-in ADT by name with default parameters."""
    try:
        factory = BUILTIN_ADTS[name]
    except KeyError:
        known = ", ".join(builtin_names())
        raise SpecError(f"unknown ADT {name!r}; known ADTs: {known}") from None
    return factory()

"""A bounded priority queue, specified as graph programs.

The PriorityQueue keeps its components *sorted*: the ordering chain runs
from the maximum element down to the minimum, and ``Insert`` splices the
new component into the middle of the chain — the one built-in operation
that rewires ordering edges deep inside the structure rather than at an
end.  That makes it the stress case for the ordering-edge machinery and
for the locality analysis: an interior insert touches its two neighbours'
ordering edges, so unlike a QStack ``Push`` its structural footprint is
not confined to a reference position.

Operations:

* ``Insert(e): ok/nok`` — splice ``e`` into sorted position (``nok`` when
  full),
* ``ExtractMin(): e/nok`` — remove and return the minimum,
* ``Min(): e/nok`` — observe the minimum,
* ``Size(): n`` — count the elements.

Abstract state: a tuple of elements sorted ascending (duplicates allowed).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.graph.analysis import ordering_walk
from repro.graph.builder import build_chain
from repro.graph.instrument import InstrumentedGraph
from repro.graph.object_graph import ObjectGraph
from repro.spec.adt import ADTSpec, EnumerationBounds
from repro.spec.operation import OperationSpec
from repro.spec.returnvalue import ReturnValue, nok, ok, result_only

__all__ = ["PriorityQueueSpec"]


class _PqOperation(OperationSpec):
    def __init__(self, capacity: int) -> None:
        self._capacity = capacity

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [()]

    @staticmethod
    def _single(vids: set[int]) -> int | None:
        return next(iter(vids)) if vids else None


class PqInsertOp(_PqOperation):
    """``Insert(e): ok/nok`` — splice ``e`` into its sorted position.

    Walks the chain from the minimum upwards (observing content along the
    way — a sorted insert must compare) until it finds the splice point,
    then rewires the ordering edges around the new component.
    """

    name = "Insert"
    referencing = "implicit"
    references_used = frozenset({"min"})

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [(element,) for element in bounds.domain]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        (element,) = args
        if len(view.graph) >= self._capacity:
            return nok()
        # Walk upward from the minimum until the first element > e.
        below: int | None = None  # largest element <= e seen so far
        current = view.deref("min")
        while current is not None:
            if view.observe_content(current) > element:
                break
            below = current
            current = self._single(view.observe_predecessors(current))
        above = current  # smallest element > e (None when e is the max)
        new = view.insert_vertex(element)
        if below is not None and above is not None:
            view.remove_ordering_edge(above, below)
        if below is not None:
            view.add_ordering_edge(new, below)
        else:
            view.retarget("min", new)
        if above is not None:
            view.add_ordering_edge(above, new)
        return ok()


class PqExtractMinOp(_PqOperation):
    """``ExtractMin(): e/nok`` — remove and return the minimum element."""

    name = "ExtractMin"
    referencing = "implicit"
    references_used = frozenset({"min"})

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        minimum = view.deref("min")
        if minimum is None:
            return nok()
        above = view.observe_predecessors(minimum)
        value = view.delete_vertex(minimum)
        view.retarget("min", self._single(above))
        return result_only(value)


class PqMinOp(_PqOperation):
    """``Min(): e/nok`` — observe the minimum element."""

    name = "Min"
    referencing = "implicit"
    references_used = frozenset({"min"})

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        minimum = view.deref("min")
        if minimum is None:
            return nok()
        return result_only(view.observe_content(minimum))


class PqSizeOp(_PqOperation):
    """``Size(): n`` — count the elements (global structure observer)."""

    name = "Size"
    referencing = "none"
    references_used = frozenset()

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        return result_only(len(view.observe_all_presence()))


class PriorityQueueSpec(ADTSpec):
    """Executable specification of a bounded min-priority queue."""

    name = "PriorityQueue"

    def __init__(
        self, capacity: int = 3, domain: tuple[Any, ...] = (1, 2, 3)
    ) -> None:
        self._capacity = capacity
        self.default_bounds = EnumerationBounds(
            capacity=capacity, domain=tuple(domain)
        )
        self._operations: dict[str, OperationSpec] = {
            "Insert": PqInsertOp(capacity),
            "ExtractMin": PqExtractMinOp(capacity),
            "Min": PqMinOp(capacity),
            "Size": PqSizeOp(capacity),
        }

    @property
    def operations(self) -> Mapping[str, OperationSpec]:
        return self._operations

    def states(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        """All sorted tuples (with repetition) up to the bounded capacity."""
        capacity = min(bounds.capacity, self._capacity)
        domain = sorted(bounds.domain)

        def extend(prefix: tuple, start: int) -> Iterable[tuple]:
            yield prefix
            if len(prefix) < capacity:
                for index in range(start, len(domain)):
                    yield from extend(prefix + (domain[index],), index)

        return extend((), 0)

    def initial_state(self) -> tuple:
        return ()

    def build_graph(self, state: tuple) -> ObjectGraph:
        """A max-to-min chain with the ``min`` reference at the minimum."""
        # build_chain lays out values front-first with back-to-front
        # ordering edges; giving it the sorted tuple makes the "front" the
        # minimum and points edges from larger to smaller elements.
        return build_chain(
            "PriorityQueue",
            list(state),
            references=[("min", 0 if state else None)],
        )

    def abstract_state(self, graph: ObjectGraph) -> tuple:
        vids = graph.vertex_ids()
        if not vids:
            return ()
        heads = [vid for vid in vids if not graph.predecessors(vid)]
        if len(heads) != 1:
            raise ValueError("PriorityQueue graph is not a linear chain")
        max_to_min = list(ordering_walk(graph, heads[0]))
        values = tuple(graph.vertex(vid).value for vid in reversed(max_to_min))
        if any(a > b for a, b in zip(values, values[1:])):
            raise ValueError("PriorityQueue chain lost its sorted order")
        return values

"""An unordered Set ADT, specified as graph programs.

The Set demonstrates the methodology on an object *without* ordering
semantics: its object graph has component vertices but no ordering edges,
and its operations use *explicit referencing* (Def. 20 discussion) — the
input element determines which composed-of edge an operation works on,
like the paper's ``search(x)`` example on a relation.

Two operations on *different* elements therefore have disjoint localities,
which Stage 5 turns into input-inequality no-dependency conditions.

Abstract state: ``frozenset`` of the member elements.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.graph.instrument import InstrumentedGraph
from repro.graph.object_graph import ObjectGraph
from repro.graph.vertex import VertexId
from repro.spec.adt import ADTSpec, EnumerationBounds
from repro.spec.operation import OperationSpec
from repro.spec.returnvalue import ReturnValue, nok, ok, result_only

__all__ = ["SetSpec"]


def _locate(view: InstrumentedGraph, element: Any) -> VertexId | None:
    """Find the component holding ``element`` via explicit referencing.

    The element value determines the composed-of edge directly (as a key
    determines a hash slot), so locating it is not an enumeration of the
    structure; only the located vertex's presence is observed.
    """
    for vid in view.graph.vertex_ids():
        if view.graph.vertex(vid).value == element:
            view.observe_presence(vid)
            return vid
    return None


class _SetOperation(OperationSpec):
    referencing = "explicit"
    references_used = frozenset()

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [(element,) for element in bounds.domain]


class InsertOp(_SetOperation):
    """``Insert(e): ok/nok`` — add ``e``; ``nok`` when already a member."""

    name = "Insert"

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        (element,) = args
        if _locate(view, element) is not None:
            return nok()
        view.insert_vertex(element)
        return ok()


class RemoveOp(_SetOperation):
    """``Remove(e): ok/nok`` — delete ``e``; ``nok`` when not a member."""

    name = "Remove"

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        (element,) = args
        vid = _locate(view, element)
        if vid is None:
            return nok()
        # The deleted content equals the argument, so no information is
        # observed through the deletion.
        view.delete_vertex(vid, observe_value=False)
        return ok()


class MemberOp(_SetOperation):
    """``Member(e): ok/nok`` — membership test (pure structure observer)."""

    name = "Member"

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        (element,) = args
        return ok() if _locate(view, element) is not None else nok()


class CardinalityOp(OperationSpec):
    """``Cardinality(): n`` — count the members (global structure observer)."""

    name = "Cardinality"
    referencing = "none"
    references_used = frozenset()

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [()]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        return result_only(len(view.observe_all_presence()))


class SetSpec(ADTSpec):
    """Executable specification of an unordered, duplicate-free Set."""

    name = "Set"

    def __init__(self, domain: tuple[Any, ...] = ("a", "b", "c")) -> None:
        self._domain = tuple(domain)
        self.default_bounds = EnumerationBounds(
            capacity=len(self._domain), domain=self._domain
        )
        self._operations: dict[str, OperationSpec] = {
            "Insert": InsertOp(),
            "Remove": RemoveOp(),
            "Member": MemberOp(),
            "Cardinality": CardinalityOp(),
        }

    @property
    def operations(self) -> Mapping[str, OperationSpec]:
        return self._operations

    def states(self, bounds: EnumerationBounds) -> Iterable[frozenset]:
        """Every subset of the bounded domain."""
        domain = list(bounds.domain)
        count = len(domain)
        for mask in range(2**count):
            yield frozenset(
                domain[index] for index in range(count) if mask & (1 << index)
            )

    def initial_state(self) -> frozenset:
        return frozenset()

    def build_graph(self, state: frozenset) -> ObjectGraph:
        """One component per member; no ordering edges (unordered object)."""
        graph = ObjectGraph("Set")
        for element in sorted(state, key=repr):
            graph.add_vertex(value=element)
        return graph

    def abstract_state(self, graph: ObjectGraph) -> frozenset:
        return frozenset(vertex.value for vertex in graph.vertices())

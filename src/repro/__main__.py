"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``adts`` — list the built-in abstract data types.
* ``classify <ADT>`` — Table-1 style O/M/MO classification.
* ``characterize <ADT>`` — the Stage-2 (Table-9 style) questionnaire.
* ``derive <ADT>`` — run the five-stage pipeline and print the tables.
* ``graph <ADT>`` — render the object graph (Stage 1 / Figure 2).
* ``simulate <ADT>`` — run a seeded workload under the derived table
  (``--trace out.jsonl`` records a structured event trace,
  ``--metrics-format {json,prom}`` exports the run's metrics registry,
  ``--fault-plan SEED`` injects a reproducible fault storm under the
  decision log + invariant monitor).
* ``chaos <ADT...>`` — chaos campaign: exhaustive crash-point sweep and
  seeded fault storms over an ADT × policy × seed matrix, emitting a
  byte-stable JSON report.
* ``trace <file>`` — analyse a recorded trace: summary, per-transaction
  timeline, per-table-entry firing histogram.
* ``report <file>`` — observability dashboard from a recorded trace:
  cross-node span trees with critical paths, per-object latency
  quantiles, conflict heatmap.
* ``tables`` — generate per-ADT compatibility-table documentation.
* ``experiments [ids...]`` — run the paper-reproduction experiments.
"""

from __future__ import annotations

import argparse
import sys

from repro.adts.registry import builtin_names, make_adt
from repro.core.classification import classify_all_operations
from repro.errors import InvariantViolationError, RecoveryError
from repro.core.methodology import MethodologyOptions, derive
from repro.core.profile import characterize_all


def _cmd_adts(_args: argparse.Namespace) -> int:
    for name in builtin_names():
        adt = make_adt(name)
        operations = ", ".join(adt.operation_names())
        print(f"{name:12} operations: {operations}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    adt = make_adt(args.adt)
    for name, op_class in classify_all_operations(adt).items():
        print(f"{name:12} {op_class.name}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    adt = make_adt(args.adt)
    header = ("Op", "obs/mod", "Cont/Str", "return", "Locality", "Refs")
    print("{:12} {:8} {:9} {:12} {:9} {}".format(*header))
    for profile in characterize_all(adt).values():
        print("{:12} {:8} {:9} {:12} {:9} {}".format(*profile.table9_row()))
    return 0


def _cmd_derive(args: argparse.Namespace) -> int:
    adt = make_adt(args.adt)
    options = MethodologyOptions(
        validate_conditions=not args.paper,
        use_cache=not args.no_cache,
        jobs=args.jobs,
    )
    result = derive(adt, options=options)
    stage_tables = dict(result.stage_tables())
    table = stage_tables[f"stage{args.stage}"]
    print(table.render_ascii())
    conditional = [
        (invoked, executing, entry)
        for invoked, executing, entry in table.cells()
        if entry.is_conditional
    ]
    if conditional:
        print()
        print("conditional entries:")
        for invoked, executing, entry in conditional:
            rendered = entry.render().replace("\n", "; ")
            print(f"  ({invoked}, {executing}): {rendered}")
    if result.notes and args.verbose:
        print()
        print("derivation notes:")
        for note in result.notes:
            print(f"  - {note}")
    if args.profile and result.profile is not None:
        print()
        print("derivation profile:")
        for line in result.profile.summary().splitlines():
            print(f"  {line}")
    if args.metrics_format and result.profile is not None:
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        result.profile.publish(registry)
        if args.metrics_format == "json":
            print(registry.render_json())
        else:
            print(registry.render_prometheus(), end="")
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro.graph.render import render_ascii, render_dot

    adt = make_adt(args.adt)
    state = adt.initial_state()
    if args.adt in ("QStack", "Stack", "FifoQueue"):
        state = ("e1", "e2", "e3")
    graph = adt.build_graph(state)
    print(render_dot(graph) if args.dot else render_ascii(graph))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.cc.serializability import is_serializable
    from repro.cc.simulator import SimulationConfig, simulate_with_scheduler
    from repro.cc.workload import WorkloadConfig, generate
    from repro.obs.tracers import JsonlTracer

    adt = make_adt(args.adt)
    result = derive(adt)
    table = result.final_table
    if args.shards is not None:
        return _simulate_distributed(args, adt, table)
    workload = generate(
        adt,
        "shared",
        WorkloadConfig(
            transactions=args.transactions,
            operations_per_transaction=args.operations,
            seed=args.seed,
        ),
    )
    try:
        tracer = JsonlTracer(args.trace) if args.trace else None
    except OSError as error:
        print(f"cannot open trace file: {error}", file=sys.stderr)
        return 2
    fault_plan = None
    scheduler_wrapper = None
    if args.fault_plan is not None:
        from repro.robust import (
            DecisionLog,
            FaultPlan,
            FaultSpec,
            MonitoredScheduler,
            RobustStats,
        )

        stats = RobustStats()
        fault_plan = FaultPlan(
            args.fault_plan,
            FaultSpec.storm(args.fault_intensity),
            stats=stats,
        )
        # Chaos runs get the full robustness stack: a decision log (so
        # induced crashes recover) and the invariant monitor, sharing the
        # plan's counter sink.
        scheduler_wrapper = lambda scheduler: MonitoredScheduler(  # noqa: E731
            scheduler,
            log=DecisionLog(),
            check_interval=8,
            robust_stats=stats,
        )
    try:
        metrics, scheduler = simulate_with_scheduler(
            SimulationConfig(
                adt=adt,
                table=table,
                workload=workload,
                policy=args.policy,
                restart_aborted=True,
                restart_policy=args.restart_policy,
                tracer=tracer,
                fault_plan=fault_plan,
                scheduler_wrapper=scheduler_wrapper,
                compiled=not args.no_compiled,
            )
        )
    except (InvariantViolationError, RecoveryError) as error:
        # A fault campaign can win: corruption that slips between two
        # audits taints the decision log beyond any recovery rung — the
        # monitor raises on a failed degraded replay, and a crash fault
        # landing on the tainted log surfaces the same taint as a
        # recovery divergence.  That is a *finding*, reproducible from
        # the same seed — report it as a failed run, not a crash.
        print(f"unrecoverable: {error}", file=sys.stderr)
        return 1
    finally:
        if tracer is not None:
            tracer.close()
    # One-line run header so a pasted summary is reproducible as-is.
    print(
        f"run: adt={args.adt} policy={args.policy} "
        f"transactions={args.transactions} operations={args.operations} "
        f"seed={args.seed} table={table.name}"
    )
    print(metrics.summary())
    print(metrics.latency_summary())
    if fault_plan is not None:
        stats = fault_plan.stats
        print(
            f"faults: injected={stats.faults_injected} "
            f"recoveries={stats.recoveries} "
            f"invariant_checks={stats.invariant_checks} "
            f"degradations={stats.degradations}"
        )
    print("serializable:", is_serializable(scheduler))
    if tracer is not None:
        print(f"trace: {args.trace} ({tracer.emitted} events)")
    if args.metrics_format:
        registry = metrics.to_registry()
        if args.metrics_format == "json":
            print(registry.render_json())
        else:
            print(registry.render_prometheus(), end="")
    return 0


def _simulate_distributed(args: argparse.Namespace, adt, table) -> int:
    """``simulate --shards N``: the workload over a sharded cluster."""
    from repro.cc.workload import WorkloadConfig, generate
    from repro.dist import Cluster, audit_global
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracers import JsonlTracer

    workload = generate(
        adt,
        "shared",
        WorkloadConfig(
            transactions=args.transactions,
            operations_per_transaction=args.operations,
            seed=args.seed,
        ),
    )
    try:
        tracer = JsonlTracer(args.trace) if args.trace else None
    except OSError as error:
        print(f"cannot open trace file: {error}", file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan is not None:
        from repro.robust import FaultPlan, FaultSpec, RobustStats

        fault_plan = FaultPlan(
            args.fault_plan,
            FaultSpec.dist_storm(args.fault_intensity),
            stats=RobustStats(),
        )
    from repro.obs.tracers import NULL_TRACER

    cluster = Cluster(
        adt,
        table,
        shards=args.shards,
        policy=args.policy,
        fault_plan=fault_plan,
        tracer=tracer if tracer is not None else NULL_TRACER,
    )
    try:
        transcript = cluster.run(workload, seed=args.seed)
    except (InvariantViolationError, RecoveryError) as error:
        print(f"unrecoverable: {error}", file=sys.stderr)
        return 1
    finally:
        if tracer is not None:
            tracer.close()
    audit = audit_global(cluster)
    committed = [g for g, status in transcript.statuses if status == "COMMITTED"]
    print(
        f"run: adt={args.adt} policy={args.policy} shards={args.shards} "
        f"transactions={args.transactions} operations={args.operations} "
        f"seed={args.seed} table={table.name}"
    )
    print(
        f"distributed: committed={len(committed)}/{len(transcript.statuses)} "
        f"messages={cluster.stats.messages_sent} "
        f"one_phase={cluster.stats.one_phase_commits} "
        f"prepares={cluster.stats.prepares_sent} "
        f"crashes={cluster.stats.node_crashes}"
    )
    e2e = cluster.latency.merged("e2e")
    rpc_bits = " ".join(
        f"{key}:p50={histogram.p50:.2f}/p99={histogram.p99:.2f}"
        for metric, key, histogram in cluster.latency.rows()
        if metric == "rpc"
    )
    print(
        f"latency: e2e {e2e.summary()}"
        + (f" | rpc {rpc_bits}" if rpc_bits else "")
    )
    if fault_plan is not None:
        stats = fault_plan.stats
        print(
            f"faults: injected={stats.faults_injected} "
            f"dropped={cluster.stats.messages_dropped} "
            f"partitions={cluster.stats.partitions_opened}"
        )
    print(
        "audit: passed={} serializable={} in_doubt={}".format(
            audit.passed, audit.serializable, list(audit.in_doubt)
        )
    )
    if tracer is not None:
        print(f"trace: {args.trace} ({tracer.emitted} events)")
    if args.metrics_format:
        registry = MetricsRegistry()
        cluster.stats.publish(registry)
        if args.metrics_format == "json":
            print(registry.render_json())
        else:
            print(registry.render_prometheus(), end="")
    return 0 if audit.passed else 1


def _chaos_passed(report: dict) -> bool:
    """The chaos exit-code gate: the top-level verdict AND every
    embedded sub-campaign verdict.

    ``run_chaos`` already folds the distributed/serving/replication
    verdicts into ``report["passed"]``, but the exit code is the CI
    contract — re-AND the embedded verdicts here so a regression in
    that folding (or a hand-assembled report) can never turn a failing
    sub-campaign into a zero exit.
    """
    passed = bool(report.get("passed"))
    for section in ("distributed", "serving", "replication"):
        embedded = report.get(section)
        if embedded is not None:
            passed = passed and bool(embedded.get("passed"))
    return passed


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.robust import FaultSpec, render_report, run_chaos

    adts = {}
    for name in args.adts:
        adt = make_adt(name)
        adts[name] = (adt, derive(adt).final_table)
    report = run_chaos(
        adts,
        policies=tuple(args.policies),
        seeds=tuple(args.seeds),
        transactions=args.transactions,
        operations=args.operations,
        spec=FaultSpec.storm(args.intensity),
        crash_sweep_enabled=not args.no_crash_sweep,
        distributed=args.dist,
        shard_counts=tuple(args.shards),
        serving=args.serve,
        replication=args.replication,
    )
    rendered = render_report(report)
    if args.report:
        try:
            with open(args.report, "w", encoding="utf-8") as stream:
                stream.write(rendered)
        except OSError as error:
            print(f"cannot write report: {error}", file=sys.stderr)
            return 2
        print(f"report: {args.report}")
    else:
        print(rendered, end="")
    sweeps = [cell.get("crash_sweep") for cell in report["cells"]]
    swept = sum(sweep["decision_points"] for sweep in sweeps if sweep)
    summary = (
        f"chaos: cells={len(report['cells'])} crash_points={swept} "
        f"passed={report['passed']}"
    )
    if args.dist:
        dist = report["distributed"]
        dist_swept = sum(
            sweep["points_reached"] for sweep in dist.get("crash_sweeps", ())
        )
        summary += (
            f" dist_cells={len(dist['cells'])} dist_crash_points={dist_swept}"
        )
    if args.serve:
        serving = report["serving"]
        worst = min(
            (group["goodput_ratio"] for group in serving["groups"]),
            default=0.0,
        )
        summary += (
            f" serving_groups={len(serving['groups'])} "
            f"worst_goodput_ratio={worst:.3f} "
            f"serving_passed={serving['passed']}"
        )
    if args.replication:
        replication = report["replication"]
        scenarios = [
            scenario
            for cell in replication["cells"]
            for scenario in cell["scenarios"].values()
        ]
        fenced = sum(s["fenced_messages"] for s in scenarios)
        views = sum(s["view_changes"] for s in scenarios)
        summary += (
            f" replication_cells={len(replication['cells'])} "
            f"view_changes={views} fenced={fenced} "
            f"replication_passed={replication['passed']}"
        )
    print(summary)
    return 0 if _chaos_passed(report) else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.analysis import (
        firing_histogram,
        render_event,
        summarize,
        transaction_timeline,
    )
    from repro.obs.tracers import read_trace

    try:
        events = read_trace(args.file)
    except (OSError, ValueError) as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return 2
    if args.timeline is not None:
        timeline = transaction_timeline(events, args.timeline)
        if not timeline:
            print(f"no events involve transaction {args.timeline}")
            return 1
        for event in timeline:
            print(render_event(event))
        return 0
    if args.entries:
        firings = firing_histogram(events)
        if not firings:
            print("no dependencies were recorded in this trace")
            return 0
        for firing in firings:
            condition = firing.condition or "<fallback: strongest>"
            print(
                f"{firing.count:6}x {firing.object_name}: "
                f"({firing.invoked}, {firing.executing}) -> "
                f"{firing.dependency} [{firing.source}] {condition}"
                + (f"  entry: {firing.entry}" if firing.entry else "")
            )
        return 0
    summary = summarize(events)
    print(summary.render())
    if args.verify:
        from repro.obs.analysis import serializable_from_trace

        print("serializable (from trace):", serializable_from_trace(events))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.analysis import render_dashboard
    from repro.obs.tracers import read_trace

    try:
        events = read_trace(args.file)
    except (OSError, ValueError) as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return 2
    print(render_dashboard(events, top=args.top, window=args.window), end="")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.table_docs import generate_all

    written = generate_all(args.out)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_text, run_all

    only = set(args.ids) if args.ids else None
    outcomes = run_all(only)
    if not outcomes:
        print(f"no experiments matched: {sorted(only or set())}")
        return 2
    print(render_text(outcomes))
    return 0 if all(outcome.matches for outcome in outcomes) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Extracting Concurrency from Objects: "
            "A Methodology' (SIGMOD 1991)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("adts", help="list the built-in ADTs").set_defaults(
        func=_cmd_adts
    )

    classify = sub.add_parser("classify", help="O/M/MO classification")
    classify.add_argument("adt", choices=builtin_names())
    classify.set_defaults(func=_cmd_classify)

    characterize = sub.add_parser(
        "characterize", help="Stage-2 (Table-9 style) characterisation"
    )
    characterize.add_argument("adt", choices=builtin_names())
    characterize.set_defaults(func=_cmd_characterize)

    derive_cmd = sub.add_parser("derive", help="derive the compatibility table")
    derive_cmd.add_argument("adt", choices=builtin_names())
    derive_cmd.add_argument(
        "--stage", type=int, default=5, choices=(3, 4, 5),
        help="pipeline stage whose table to print (default 5)",
    )
    derive_cmd.add_argument(
        "--paper", action="store_true",
        help="paper-fidelity mode (disable condition validation)",
    )
    derive_cmd.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the Stage-4/5 pair fan-out "
             "(1 = sequential, 0 = one per CPU; results are identical)",
    )
    derive_cmd.add_argument(
        "--no-cache", action="store_true",
        help="disable the shared execution cache (for benchmarking/audit)",
    )
    derive_cmd.add_argument(
        "--profile", action="store_true",
        help="print the per-stage wall-time and cache profile",
    )
    derive_cmd.add_argument(
        "--metrics-format", choices=("json", "prom"), default=None,
        help="export the derivation's metrics (cache hit rate, stage "
             "timings) as JSON or Prometheus text",
    )
    derive_cmd.add_argument("--verbose", action="store_true")
    derive_cmd.set_defaults(func=_cmd_derive)

    graph = sub.add_parser("graph", help="render the object graph")
    graph.add_argument("adt", choices=builtin_names())
    graph.add_argument("--dot", action="store_true", help="Graphviz output")
    graph.set_defaults(func=_cmd_graph)

    simulate = sub.add_parser("simulate", help="run a workload simulation")
    simulate.add_argument("adt", choices=builtin_names())
    simulate.add_argument("--policy", default="blocking",
                          choices=("optimistic", "blocking"))
    simulate.add_argument("--transactions", type=int, default=12)
    simulate.add_argument("--operations", type=int, default=3)
    simulate.add_argument("--seed", type=int, default=1991)
    simulate.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a structured JSONL event trace to FILE",
    )
    simulate.add_argument(
        "--metrics-format", choices=("json", "prom"), default=None,
        help="also export the run's metrics registry (JSON or Prometheus text)",
    )
    simulate.add_argument(
        "--fault-plan", type=int, metavar="SEED", default=None,
        help="inject a seeded fault storm (reproducible from the seed) and "
             "run under the decision log + invariant monitor",
    )
    simulate.add_argument(
        "--fault-intensity", type=float, default=0.05, metavar="RATE",
        help="per-consult fault rate of the storm (default 0.05)",
    )
    simulate.add_argument(
        "--restart-policy", choices=("linear", "exponential"),
        default="linear",
        help="backoff growth for restarted programs (default linear, "
             "the bit-parity behaviour)",
    )
    simulate.add_argument(
        "--no-compiled", action="store_true",
        help="run the scheduler's pure-Python reference structures "
             "instead of the compiled hot path (bit-identical decisions; "
             "see docs/PERFORMANCE.md, 'Compiled dispatch')",
    )
    simulate.add_argument(
        "--shards", type=int, metavar="N", default=None,
        help="run the workload over an N-shard simulated cluster "
             "(one scheduler per node, dependency-aware 2PC, global "
             "serializability audit); with --fault-plan the storm is the "
             "distributed mix (message faults + node crashes)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    chaos = sub.add_parser(
        "chaos",
        help="chaos campaign: crash-point sweep + fault storms over a matrix",
    )
    chaos.add_argument(
        "adts", nargs="+", choices=builtin_names(),
        help="ADTs to sweep (each derives its own table)",
    )
    chaos.add_argument(
        "--policies", nargs="+", default=["optimistic", "blocking"],
        choices=("optimistic", "blocking"),
    )
    chaos.add_argument(
        "--seeds", nargs="+", type=int, default=[1991],
        help="workload seeds (one cell per ADT x policy x seed)",
    )
    chaos.add_argument("--transactions", type=int, default=6)
    chaos.add_argument("--operations", type=int, default=3)
    chaos.add_argument(
        "--intensity", type=float, default=0.05,
        help="fault-storm per-consult rate (default 0.05)",
    )
    chaos.add_argument(
        "--no-crash-sweep", action="store_true",
        help="skip the per-decision-point crash sweep (storms only)",
    )
    chaos.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the byte-stable JSON report to FILE instead of stdout",
    )
    chaos.add_argument(
        "--dist", action="store_true",
        help="also run the distributed campaign: message storms over "
             "sharded clusters plus the protocol crash-point sweep",
    )
    chaos.add_argument(
        "--shards", nargs="+", type=int, default=[1, 2], metavar="N",
        help="shard counts of the distributed campaign (default: 1 2)",
    )
    chaos.add_argument(
        "--serve", action="store_true",
        help="also run the serving campaign: overload plus faults "
             "against the hardened serving loop, gated on graceful "
             "degradation and no-resurrection certification",
    )
    chaos.add_argument(
        "--replication", action="store_true",
        help="also run the replicated-failover campaign: primary kills "
             "mid-2PC, partition-then-heal, dueling-primary fencing and "
             "backup-crash storms over replica groups, gated on zero "
             "committed-transaction loss and the global audit",
    )
    chaos.set_defaults(func=_cmd_chaos)

    trace = sub.add_parser(
        "trace", help="analyse a JSONL trace recorded with simulate --trace"
    )
    trace.add_argument("file", help="path to the .jsonl trace")
    trace_mode = trace.add_mutually_exclusive_group()
    trace_mode.add_argument(
        "--summary", action="store_true",
        help="aggregate summary (the default mode)",
    )
    trace_mode.add_argument(
        "--timeline", type=int, metavar="TXN", default=None,
        help="print every event involving one transaction",
    )
    trace_mode.add_argument(
        "--entries", action="store_true",
        help="full per-table-entry firing histogram",
    )
    trace.add_argument(
        "--verify", action="store_true",
        help="re-verify serializability from the trace alone (summary mode)",
    )
    trace.set_defaults(func=_cmd_trace)

    report = sub.add_parser(
        "report",
        help="observability dashboard from a JSONL trace: span trees, "
             "latency quantiles, conflict heatmap",
    )
    report.add_argument("file", help="path to the .jsonl trace")
    report.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="number of slowest transactions to show (default 10)",
    )
    report.add_argument(
        "--window", type=int, default=32, metavar="W",
        help="conflict-profile window size in requests (default 32)",
    )
    report.set_defaults(func=_cmd_report)

    tables = sub.add_parser(
        "tables", help="generate per-ADT compatibility-table docs"
    )
    tables.add_argument("--out", default="docs/tables")
    tables.set_defaults(func=_cmd_tables)

    experiments = sub.add_parser(
        "experiments", help="run the paper-reproduction experiments"
    )
    experiments.add_argument("ids", nargs="*")
    experiments.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``adts`` — list the built-in abstract data types.
* ``classify <ADT>`` — Table-1 style O/M/MO classification.
* ``characterize <ADT>`` — the Stage-2 (Table-9 style) questionnaire.
* ``derive <ADT>`` — run the five-stage pipeline and print the tables.
* ``graph <ADT>`` — render the object graph (Stage 1 / Figure 2).
* ``simulate <ADT>`` — run a seeded workload under the derived table.
* ``tables`` — generate per-ADT compatibility-table documentation.
* ``experiments [ids...]`` — run the paper-reproduction experiments.
"""

from __future__ import annotations

import argparse
import sys

from repro.adts.registry import builtin_names, make_adt
from repro.core.classification import classify_all_operations
from repro.core.methodology import MethodologyOptions, derive
from repro.core.profile import characterize_all


def _cmd_adts(_args: argparse.Namespace) -> int:
    for name in builtin_names():
        adt = make_adt(name)
        operations = ", ".join(adt.operation_names())
        print(f"{name:12} operations: {operations}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    adt = make_adt(args.adt)
    for name, op_class in classify_all_operations(adt).items():
        print(f"{name:12} {op_class.name}")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    adt = make_adt(args.adt)
    header = ("Op", "obs/mod", "Cont/Str", "return", "Locality", "Refs")
    print("{:12} {:8} {:9} {:12} {:9} {}".format(*header))
    for profile in characterize_all(adt).values():
        print("{:12} {:8} {:9} {:12} {:9} {}".format(*profile.table9_row()))
    return 0


def _cmd_derive(args: argparse.Namespace) -> int:
    adt = make_adt(args.adt)
    options = MethodologyOptions(validate_conditions=not args.paper)
    result = derive(adt, options=options)
    stage_tables = dict(result.stage_tables())
    table = stage_tables[f"stage{args.stage}"]
    print(table.render_ascii())
    conditional = [
        (invoked, executing, entry)
        for invoked, executing, entry in table.cells()
        if entry.is_conditional
    ]
    if conditional:
        print()
        print("conditional entries:")
        for invoked, executing, entry in conditional:
            rendered = entry.render().replace("\n", "; ")
            print(f"  ({invoked}, {executing}): {rendered}")
    if result.notes and args.verbose:
        print()
        print("derivation notes:")
        for note in result.notes:
            print(f"  - {note}")
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro.graph.render import render_ascii, render_dot

    adt = make_adt(args.adt)
    state = adt.initial_state()
    if args.adt in ("QStack", "Stack", "FifoQueue"):
        state = ("e1", "e2", "e3")
    graph = adt.build_graph(state)
    print(render_dot(graph) if args.dot else render_ascii(graph))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.cc.serializability import is_serializable
    from repro.cc.simulator import SimulationConfig, simulate_with_scheduler
    from repro.cc.workload import WorkloadConfig, generate

    adt = make_adt(args.adt)
    table = derive(adt).final_table
    workload = generate(
        adt,
        "shared",
        WorkloadConfig(
            transactions=args.transactions,
            operations_per_transaction=args.operations,
            seed=args.seed,
        ),
    )
    metrics, scheduler = simulate_with_scheduler(
        SimulationConfig(
            adt=adt,
            table=table,
            workload=workload,
            policy=args.policy,
            restart_aborted=True,
        )
    )
    print(metrics.summary())
    print("serializable:", is_serializable(scheduler))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.table_docs import generate_all

    written = generate_all(args.out)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_text, run_all

    only = set(args.ids) if args.ids else None
    outcomes = run_all(only)
    if not outcomes:
        print(f"no experiments matched: {sorted(only or set())}")
        return 2
    print(render_text(outcomes))
    return 0 if all(outcome.matches for outcome in outcomes) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Extracting Concurrency from Objects: "
            "A Methodology' (SIGMOD 1991)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("adts", help="list the built-in ADTs").set_defaults(
        func=_cmd_adts
    )

    classify = sub.add_parser("classify", help="O/M/MO classification")
    classify.add_argument("adt", choices=builtin_names())
    classify.set_defaults(func=_cmd_classify)

    characterize = sub.add_parser(
        "characterize", help="Stage-2 (Table-9 style) characterisation"
    )
    characterize.add_argument("adt", choices=builtin_names())
    characterize.set_defaults(func=_cmd_characterize)

    derive_cmd = sub.add_parser("derive", help="derive the compatibility table")
    derive_cmd.add_argument("adt", choices=builtin_names())
    derive_cmd.add_argument(
        "--stage", type=int, default=5, choices=(3, 4, 5),
        help="pipeline stage whose table to print (default 5)",
    )
    derive_cmd.add_argument(
        "--paper", action="store_true",
        help="paper-fidelity mode (disable condition validation)",
    )
    derive_cmd.add_argument("--verbose", action="store_true")
    derive_cmd.set_defaults(func=_cmd_derive)

    graph = sub.add_parser("graph", help="render the object graph")
    graph.add_argument("adt", choices=builtin_names())
    graph.add_argument("--dot", action="store_true", help="Graphviz output")
    graph.set_defaults(func=_cmd_graph)

    simulate = sub.add_parser("simulate", help="run a workload simulation")
    simulate.add_argument("adt", choices=builtin_names())
    simulate.add_argument("--policy", default="blocking",
                          choices=("optimistic", "blocking"))
    simulate.add_argument("--transactions", type=int, default=12)
    simulate.add_argument("--operations", type=int, default=3)
    simulate.add_argument("--seed", type=int, default=1991)
    simulate.set_defaults(func=_cmd_simulate)

    tables = sub.add_parser(
        "tables", help="generate per-ADT compatibility-table docs"
    )
    tables.add_argument("--out", default="docs/tables")
    tables.set_defaults(func=_cmd_tables)

    experiments = sub.add_parser(
        "experiments", help="run the paper-reproduction experiments"
    )
    experiments.add_argument("ids", nargs="*")
    experiments.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

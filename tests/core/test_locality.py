"""Unit tests for locality profiles (Defs. 11-19, dimension D2/D4)."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.core.locality import (
    LocalityProfile,
    profile_invocation,
    profile_operation,
)
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def qstack() -> QStackSpec:
    return QStackSpec()


class TestKinds:
    def test_size_is_pure_structure_observer(self, qstack):
        profile = profile_operation(qstack, "Size")
        assert profile.observer_kind == "S"
        assert profile.modifier_kind is None
        assert profile.combined_kind == "S"

    def test_replace_is_content_only(self, qstack):
        profile = profile_operation(qstack, "Replace")
        assert profile.observer_kind == "C"
        assert profile.modifier_kind == "C"
        assert profile.combined_kind == "C"

    def test_xtop_modifies_structure_only(self, qstack):
        profile = profile_operation(qstack, "XTop")
        assert profile.modifier_kind == "S"

    def test_push_is_cs(self, qstack):
        profile = profile_operation(qstack, "Push")
        assert profile.modifier_kind == "CS"
        assert profile.combined_kind == "CS"

    def test_top_observes_both(self, qstack):
        profile = profile_operation(qstack, "Top")
        assert profile.observer_kind == "CS"
        assert profile.modifier_kind is None


class TestGlobality:
    def test_size_is_global_structure_observer(self, qstack):
        profile = profile_operation(qstack, "Size")
        assert profile.is_global
        assert "so" in profile.global_kinds

    def test_replace_is_global_content_observer(self, qstack):
        # the paper's Def.-19 example of a global-content-observer
        profile = profile_operation(qstack, "Replace")
        assert profile.is_global
        assert "co" in profile.global_kinds
        assert "cm" not in profile.global_kinds

    @pytest.mark.parametrize("operation", ["Push", "Pop", "Deq", "Top"])
    def test_reference_operations_are_local(self, qstack, operation):
        assert not profile_operation(qstack, operation).is_global

    def test_xtop_globality_is_bound_sensitive(self):
        # XTop touches the back *three* vertices (back, second, and the
        # third gains/loses ordering edges), so at capacity 3 the bounded
        # enumeration over-approximates it as global; from capacity 4 a
        # state exists whose fourth vertex XTop never touches.
        assert profile_operation(QStackSpec(capacity=3), "XTop").is_global
        assert not profile_operation(QStackSpec(capacity=4), "XTop").is_global

    def test_locality_symbol(self, qstack):
        assert profile_operation(qstack, "Size").locality_symbol == "G"
        assert profile_operation(qstack, "Pop").locality_symbol == "L"


class TestComponents:
    def test_observer_only_component(self, qstack):
        profile = profile_operation(qstack, "Top")
        assert profile.components() == (("o", "CS"),)

    def test_modifier_and_observer_components(self, qstack):
        profile = profile_operation(qstack, "Pop")
        roles = {role for role, _ in profile.components()}
        assert roles == {"o", "m"}


class TestReferences:
    def test_push_reads_and_writes_b(self, qstack):
        profile = profile_operation(qstack, "Push")
        assert "b" in profile.references_read
        assert "b" in profile.references_written

    def test_deq_uses_f(self, qstack):
        profile = profile_operation(qstack, "Deq")
        assert "f" in profile.references_read

    def test_size_uses_no_references(self, qstack):
        profile = profile_operation(qstack, "Size")
        assert not profile.references_read
        assert not profile.references_written


class TestMerge:
    def test_merge_unions_kinds(self):
        content = LocalityProfile(
            observer_kind="C",
            modifier_kind=None,
            is_global=True,
            global_kinds=frozenset({"co"}),
            references_read=frozenset({"f"}),
            references_written=frozenset(),
        )
        structure = LocalityProfile(
            observer_kind="S",
            modifier_kind="S",
            is_global=False,
            global_kinds=frozenset(),
            references_read=frozenset(),
            references_written=frozenset({"b"}),
        )
        merged = content.merge(structure)
        assert merged.observer_kind == "CS"
        assert merged.modifier_kind == "S"
        assert not merged.is_global  # global only if global everywhere
        assert merged.global_kinds == frozenset()
        assert merged.references_read == {"f"}
        assert merged.references_written == {"b"}

    def test_profile_invocation_matches_operation_for_argless(self, qstack):
        assert profile_invocation(qstack, Invocation("Size")) == profile_operation(
            qstack, "Size"
        )

"""Unit tests for compatibility tables."""

import pytest

from repro.core.dependency import Dependency
from repro.core.entry import ConditionalDependency, Entry
from repro.core.conditions import OutcomeIs
from repro.core.table import CompatibilityTable
from repro.errors import MethodologyError


def small_table() -> CompatibilityTable:
    table = CompatibilityTable(["A", "B"], name="test")
    table.set_entry("A", "A", Entry.unconditional(Dependency.ND))
    table.set_entry("A", "B", Entry.unconditional(Dependency.AD))
    table.set_entry("B", "A", Entry.unconditional(Dependency.CD))
    table.set_entry(
        "B",
        "B",
        Entry(
            [
                ConditionalDependency(Dependency.CD, OutcomeIs("first", "nok")),
                ConditionalDependency(Dependency.AD, OutcomeIs("first", "ok")),
            ]
        ),
    )
    return table


class TestAccess:
    def test_entry_round_trip(self):
        table = small_table()
        assert table.entry("A", "B").strongest() is Dependency.AD

    def test_dependency_is_strongest(self):
        assert small_table().dependency("B", "B") is Dependency.AD

    def test_unknown_operation_rejected(self):
        with pytest.raises(MethodologyError):
            small_table().entry("A", "Z")

    def test_missing_entry_reported(self):
        table = CompatibilityTable(["A"])
        with pytest.raises(MethodologyError):
            table.entry("A", "A")

    def test_is_complete(self):
        assert small_table().is_complete()
        assert not CompatibilityTable(["A"]).is_complete()

    def test_cells_row_major(self):
        cells = list(small_table().cells())
        assert [(invoked, executing) for invoked, executing, _ in cells] == [
            ("A", "A"), ("A", "B"), ("B", "A"), ("B", "B"),
        ]


class TestDerived:
    def test_simple_projection(self):
        simple = small_table().simple()
        assert simple[("A", "B")] is Dependency.AD
        assert simple[("B", "B")] is Dependency.AD  # strongest of the pair

    def test_map_entries(self):
        weakened = small_table().map_entries(
            lambda *_: Entry.unconditional(Dependency.ND), name="weak"
        )
        assert weakened.name == "weak"
        assert all(dep is Dependency.ND for dep in weakened.simple().values())

    def test_diff(self):
        table = small_table()
        other = small_table()
        other.set_entry("A", "B", Entry.unconditional(Dependency.CD))
        differences = table.diff(other)
        assert len(differences) == 1
        assert differences[0][:2] == ("A", "B")

    def test_diff_requires_same_operations(self):
        with pytest.raises(MethodologyError):
            small_table().diff(CompatibilityTable(["X", "Y"]))

    def test_refines_is_reflexive(self):
        table = small_table()
        assert table.refines(table)

    def test_refines_detects_weakening(self):
        table = small_table()
        weaker = table.map_entries(
            lambda *_: Entry.unconditional(Dependency.ND)
        )
        assert weaker.refines(table)
        assert not table.refines(weaker)


class TestMetrics:
    def test_dependency_counts(self):
        counts = small_table().dependency_counts()
        assert counts[Dependency.ND] == 1
        assert counts[Dependency.CD] == 1
        assert counts[Dependency.AD] == 2

    def test_conditional_cell_count(self):
        assert small_table().conditional_cell_count() == 1

    def test_restrictiveness_uses_weakest(self):
        # cells weakest: ND, AD, CD, CD -> (0+2+1+1)/4
        assert small_table().restrictiveness() == pytest.approx(1.0)


class TestRendering:
    def test_markdown_contains_all_cells(self):
        text = small_table().render_markdown()
        assert "| (o1, o2) | A | B |" in text
        assert "AD" in text and "CD" in text

    def test_ascii_blank_nd(self):
        text = small_table().render_ascii()
        lines = text.splitlines()
        assert lines[0].startswith("(o1,o2)")
        assert "ND" not in text

    def test_ascii_explicit_nd(self):
        assert "ND" in small_table().render_ascii(blank_nd=False)


class TestConditionalRendering:
    def test_markdown_joins_conditional_pairs(self):
        table = small_table()
        text = table.render_markdown()
        # The conditional (B, B) cell renders its pairs on one line.
        assert "(CD, x_out = nok); (AD, x_out = ok)" in text

    def test_ascii_joins_conditional_pairs(self):
        text = small_table().render_ascii()
        assert "(CD, x_out = nok); (AD, x_out = ok)" in text

    def test_resolve_via_table(self):
        from repro.core.conditions import ConditionContext
        from repro.spec.operation import Invocation
        from repro.spec.returnvalue import nok

        table = small_table()
        context = ConditionContext(
            first_invocation=Invocation("B"),
            second_invocation=Invocation("B"),
            first_return=nok(),
        )
        assert table.resolve("B", "B", context) is Dependency.CD

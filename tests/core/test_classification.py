"""Unit tests for the O/M/MO classifiers (Defs. 1-6)."""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.core.classification import (
    OpClass,
    classify_all_operations,
    classify_executions,
    classify_in_state,
    classify_invocation,
    classify_operation,
    classify_with_outcome,
    outcome_label,
    outcome_labels_of,
)
from repro.spec.enumeration import executions_of
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def qstack() -> QStackSpec:
    return QStackSpec()


class TestStateIndependent:
    def test_paper_table1(self, qstack):
        classes = classify_all_operations(qstack)
        assert classes == {
            "Push": OpClass.MO,
            "Pop": OpClass.MO,
            "Deq": OpClass.MO,
            "Top": OpClass.O,
            "Size": OpClass.O,
            "Replace": OpClass.M,
            "XTop": OpClass.MO,
        }

    def test_observer_with_varying_result_is_still_observer(self, qstack):
        # Size returns a different result in every state but never
        # modifies — Defs. 4-6 only promote *modifiers* on return variance.
        assert classify_operation(qstack, "Size") is OpClass.O

    def test_modifier_with_constant_return(self, qstack):
        assert classify_operation(qstack, "Replace") is OpClass.M

    def test_invocation_level(self, qstack):
        assert classify_invocation(qstack, Invocation("Push", ("a",))) is OpClass.MO

    def test_account_classes(self):
        adt = AccountSpec()
        classes = classify_all_operations(adt)
        assert classes["Deposit"] is OpClass.M
        assert classes["Withdraw"] is OpClass.MO
        assert classes["Balance"] is OpClass.O

    def test_selected_operations_only(self, qstack):
        classes = classify_all_operations(qstack, operations=["Top", "Size"])
        assert set(classes) == {"Top", "Size"}

    def test_empty_execution_set_rejected(self):
        with pytest.raises(ValueError):
            classify_executions([])


class TestPerState:
    def test_push_is_observer_in_full_state(self, qstack):
        invocation = Invocation("Push", ("a",))
        executions = list(executions_of(qstack, invocation))
        assert classify_in_state(executions, ("a", "a", "a")) is OpClass.O

    def test_push_is_mo_in_nonfull_state(self, qstack):
        invocation = Invocation("Push", ("a",))
        executions = list(executions_of(qstack, invocation))
        assert classify_in_state(executions, ()) is OpClass.MO

    def test_replace_is_modifier_where_matching(self, qstack):
        invocation = Invocation("Replace", ("a", "b"))
        executions = list(executions_of(qstack, invocation))
        assert classify_in_state(executions, ("a",)) is OpClass.M
        assert classify_in_state(executions, ("b",)) is OpClass.O

    def test_unknown_state_rejected(self, qstack):
        executions = list(executions_of(qstack, Invocation("Pop")))
        with pytest.raises(ValueError):
            classify_in_state(executions, ("z", "z", "z", "z"))


class TestOutcomeLabels:
    def test_outcome_label_uses_result_for_pure_results(self, qstack):
        from repro.spec.adt import execute_invocation

        success = execute_invocation(qstack, ("a",), Invocation("Pop"))
        failure = execute_invocation(qstack, (), Invocation("Pop"))
        assert outcome_label(success) == "result"
        assert outcome_label(failure) == "nok"

    def test_labels_of_push(self, qstack):
        executions = list(executions_of(qstack, Invocation("Push", ("a",))))
        assert outcome_labels_of(executions) == {"ok", "nok"}


class TestOutcomeRestricted:
    def test_push_nok_is_observer(self, qstack):
        executions = list(executions_of(qstack, Invocation("Push", ("a",))))
        assert classify_with_outcome(executions, "nok") is OpClass.O

    def test_push_ok_is_pure_modifier(self, qstack):
        # conditioned on the outcome, the return carries no information
        executions = list(executions_of(qstack, Invocation("Push", ("a",))))
        assert classify_with_outcome(executions, "ok") is OpClass.M

    def test_pop_result_stays_mo(self, qstack):
        # the result component still varies with the state
        executions = list(executions_of(qstack, Invocation("Pop")))
        assert classify_with_outcome(executions, "result") is OpClass.MO

    def test_pop_nok_is_observer(self, qstack):
        executions = list(executions_of(qstack, Invocation("Pop")))
        assert classify_with_outcome(executions, "nok") is OpClass.O

    def test_unknown_label_returns_none(self, qstack):
        executions = list(executions_of(qstack, Invocation("Top")))
        assert classify_with_outcome(executions, "ok") is None


class TestOpClassComponents:
    def test_mo_decomposes(self):
        assert OpClass.MO.components() == (OpClass.M, OpClass.O)

    def test_pure_classes_are_their_own_component(self):
        assert OpClass.O.components() == (OpClass.O,)
        assert OpClass.M.components() == (OpClass.M,)

    def test_strength_order(self):
        assert OpClass.O < OpClass.M < OpClass.MO

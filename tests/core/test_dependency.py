"""Unit tests for the dependency lattice (AD > CD > ND)."""

import pytest

from repro.core.dependency import (
    Dependency,
    stronger,
    strongest,
    weaker,
    weakest,
)


class TestOrdering:
    def test_lattice_order(self):
        assert Dependency.ND < Dependency.CD < Dependency.AD

    def test_stronger(self):
        assert stronger(Dependency.ND, Dependency.CD) is Dependency.CD
        assert stronger(Dependency.AD, Dependency.CD) is Dependency.AD
        assert stronger(Dependency.ND, Dependency.ND) is Dependency.ND

    def test_weaker(self):
        assert weaker(Dependency.AD, Dependency.CD) is Dependency.CD
        assert weaker(Dependency.ND, Dependency.AD) is Dependency.ND

    def test_strongest_weakest_over_collections(self):
        deps = [Dependency.CD, Dependency.ND, Dependency.AD]
        assert strongest(deps) is Dependency.AD
        assert weakest(deps) is Dependency.ND

    def test_strongest_of_empty_raises(self):
        with pytest.raises(ValueError):
            strongest([])


class TestRendering:
    def test_nd_blank_by_default(self):
        assert Dependency.ND.render() == ""

    def test_nd_explicit(self):
        assert Dependency.ND.render(blank_nd=False) == "ND"

    def test_named_rendering(self):
        assert Dependency.AD.render() == "AD"
        assert Dependency.CD.render() == "CD"

    def test_is_restrictive(self):
        assert not Dependency.ND.is_restrictive
        assert Dependency.CD.is_restrictive
        assert Dependency.AD.is_restrictive

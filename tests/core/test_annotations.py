"""Tests for annotation-mode characterisation (the DESIGN §5.1 ablation)."""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.core.methodology import MethodologyOptions, derive
from repro.core.profile import characterize_all, characterize_from_annotations
from repro.errors import SpecError


@pytest.fixture(scope="module")
def qstack() -> QStackSpec:
    # Capacity 4 avoids the known capacity-3 globality artefact of XTop.
    return QStackSpec(capacity=4)


class TestDeclaredProfiles:
    def test_declared_matches_derived_for_every_operation(self, qstack):
        declared = characterize_from_annotations(qstack)
        derived = characterize_all(qstack)
        for name in qstack.operation_names():
            assert declared[name].table9_row() == derived[name].table9_row(), name

    def test_unannotated_operation_rejected(self):
        adt = AccountSpec()  # Account operations carry no declarations
        with pytest.raises(SpecError, match="declared_profile"):
            characterize_from_annotations(adt)

    def test_subset_selection(self, qstack):
        profiles = characterize_from_annotations(qstack, operations=["Top"])
        assert set(profiles) == {"Top"}


class TestAnnotationModeDerivation:
    def test_tables_identical_to_enumerated_stage2(self):
        adt = QStackSpec(operations=["Push", "Pop", "Deq", "Top", "Size"])
        annotated = derive(adt, options=MethodologyOptions(use_annotations=True))
        enumerated = derive(adt)
        assert annotated.stage3_table.diff(enumerated.stage3_table) == []
        assert annotated.stage5_table.diff(enumerated.stage5_table) == []

    def test_annotation_mode_requires_declarations(self):
        with pytest.raises(SpecError):
            derive(AccountSpec(), options=MethodologyOptions(use_annotations=True))

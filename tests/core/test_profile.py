"""Unit tests for the Stage-2 operation profiles (Table 9 rows)."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.core.classification import OpClass
from repro.core.profile import characterize_all, characterize_operation


@pytest.fixture(scope="module")
def qstack() -> QStackSpec:
    return QStackSpec(operations=["Push", "Pop", "Deq", "Top", "Size"])


class TestTable9Rows:
    def test_push_row(self, qstack):
        profile = characterize_operation(qstack, "Push")
        assert profile.table9_row() == ("Push", "MO", "CS", "ok/nok", "L", "b")

    def test_pop_row(self, qstack):
        profile = characterize_operation(qstack, "Pop")
        assert profile.table9_row() == ("Pop", "MO", "CS", "result/nok", "L", "b")

    def test_deq_row(self, qstack):
        profile = characterize_operation(qstack, "Deq")
        assert profile.table9_row() == ("Deq", "MO", "CS", "result/nok", "L", "f")

    def test_size_row(self, qstack):
        profile = characterize_operation(qstack, "Size")
        assert profile.table9_row() == ("Size", "O", "S", "result", "G", "")

    def test_top_row(self, qstack):
        profile = characterize_operation(qstack, "Top")
        assert profile.table9_row() == ("Top", "O", "CS", "result/nok", "L", "b")


class TestD3:
    def test_outcome_labels(self, qstack):
        assert characterize_operation(qstack, "Push").outcome_labels == {
            "ok",
            "nok",
        }
        assert characterize_operation(qstack, "Size").outcome_labels == {"result"}

    def test_has_result(self, qstack):
        assert characterize_operation(qstack, "Pop").has_result
        assert not characterize_operation(qstack, "Push").has_result

    def test_has_inputs(self, qstack):
        assert characterize_operation(qstack, "Push").has_inputs
        assert not characterize_operation(qstack, "Pop").has_inputs


class TestD5:
    def test_referencing_styles(self, qstack):
        assert characterize_operation(qstack, "Push").referencing == "implicit"
        assert characterize_operation(qstack, "Size").referencing == "none"

    def test_declared_references(self, qstack):
        assert characterize_operation(qstack, "Deq").declared_references == {"f"}


class TestCharacterizeAll:
    def test_covers_selected_operations(self, qstack):
        profiles = characterize_all(qstack)
        assert set(profiles) == {"Push", "Pop", "Deq", "Top", "Size"}

    def test_subset_selection(self, qstack):
        profiles = characterize_all(qstack, operations=["Top"])
        assert set(profiles) == {"Top"}
        assert profiles["Top"].op_class is OpClass.O

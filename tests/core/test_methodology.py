"""Unit tests for the five-stage derivation pipeline (Section 5)."""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.fifo_queue import FifoQueueSpec
from repro.adts.qstack import QStackSpec
from repro.core.dependency import Dependency
from repro.core.methodology import MethodologyOptions, derive, stage3_dependency
from repro.core.profile import characterize_operation


class TestStage1:
    def test_object_graph_and_references(self, derivation):
        assert derivation.object_graph.name == "QStack"
        assert derivation.references == ["b", "f"]

    def test_operations_recorded(self, derivation):
        assert derivation.operations == ["Push", "Pop", "Deq", "Top", "Size"]


class TestStage3:
    def test_reproduces_table10(self, derivation):
        table = derivation.stage3_table
        mutators = ["Push", "Pop", "Deq"]
        observers = ["Top", "Size"]
        for invoked in mutators + observers:
            for executing in mutators:
                assert table.dependency(invoked, executing) is Dependency.AD
        for invoked in mutators:
            for executing in observers:
                assert table.dependency(invoked, executing) is Dependency.CD
        for invoked in observers:
            for executing in observers:
                assert table.dependency(invoked, executing) is Dependency.ND

    def test_least_restrictive_across_dimensions(self):
        # Replace (M by D1) against XTop: D1 says CD, D2 says ND -> ND.
        adt = QStackSpec()
        replace = characterize_operation(adt, "Replace")
        xtop = characterize_operation(adt, "XTop")
        assert stage3_dependency(replace, xtop) is Dependency.ND
        assert stage3_dependency(xtop, replace) is Dependency.ND

    def test_d1_only_when_no_locality(self):
        adt = AccountSpec()
        deposit = characterize_operation(adt, "Deposit")
        balance = characterize_operation(adt, "Balance")
        # Balance after Deposit: observer after modifier -> AD.
        assert stage3_dependency(balance, deposit) is Dependency.AD
        # Deposit after Balance: modifier after observer -> CD.
        assert stage3_dependency(deposit, balance) is Dependency.CD


class TestStage4:
    def test_deq_push_outcome_cells(self, derivation):
        from repro.experiments.base import entry_signature

        assert entry_signature(
            derivation.stage4_table.entry("Deq", "Push")
        ) == frozenset({("CD", "x_out = nok"), ("AD", "x_out = ok")})

    def test_nd_entries_untouched(self, derivation):
        entry = derivation.stage4_table.entry("Top", "Size")
        assert not entry.is_conditional
        assert entry.strongest() is Dependency.ND

    def test_partition_none_disables_refinement(self, qstack_worked):
        options = MethodologyOptions(
            outcome_partition="none", refine_inputs=False
        )
        result = derive(qstack_worked, options=options)
        assert result.stage4_table.diff(result.stage3_table) == []

    def test_guarded_input_condition_note(self, derivation):
        assert any("outcome-guarded" in note for note in derivation.notes)

    def test_joint_cells_feasibility_serial(self, qstack_worked):
        from repro.experiments.base import entry_signature

        options = MethodologyOptions(
            outcome_partition="joint",
            outcome_feasibility="serial",
            refine_inputs=False,
        )
        result = derive(qstack_worked, options=options)
        signature = entry_signature(result.stage4_table.entry("Push", "Push"))
        # The serially infeasible (nok, ok) combination is absent.
        assert ("CD", "x_out = nok ∧ y_out = ok") not in signature
        assert ("ND", "x_out = nok ∧ y_out = nok") in signature


class TestStage5:
    def test_validated_deq_push_entry(self, derivation):
        from repro.experiments.base import entry_signature

        assert entry_signature(
            derivation.stage5_table.entry("Deq", "Push")
        ) == frozenset(
            {
                ("CD", "x_out = nok"),
                ("AD", "x_out = ok ∧ f = b"),
                ("ND", "x_out = ok ∧ f ≠ b"),
            }
        )

    def test_paper_fidelity_reproduces_table14(self, paper_derivation):
        from repro.experiments.base import entry_signature

        assert entry_signature(
            paper_derivation.stage5_table.entry("Deq", "Push")
        ) == frozenset(
            {("CD", "x_out = nok"), ("AD", "f = b"), ("ND", "f ≠ b")}
        )

    def test_same_reference_pairs_not_refined(self, derivation):
        # Push and Pop share b: no locality predicate applies.
        entry = derivation.stage5_table.entry("Pop", "Push")
        assert entry == derivation.stage4_table.entry("Pop", "Push")

    def test_global_operations_not_refined(self, derivation):
        entry = derivation.stage5_table.entry("Size", "Push")
        assert entry == derivation.stage4_table.entry("Size", "Push")

    def test_explicit_referencing_refinement(self):
        from repro.adts.directory import DirectorySpec
        from repro.core.conditions import ArgsDistinct, And

        result = derive(DirectorySpec())
        entry = result.stage5_table.entry("Delete", "Insert")
        conditions = [pair.condition for pair in entry.pairs]
        assert any(
            isinstance(condition, ArgsDistinct)
            or (
                isinstance(condition, And)
                and any(isinstance(part, ArgsDistinct) for part in condition.parts)
            )
            for condition in conditions
        )

    def test_refine_localities_off(self, qstack_worked):
        options = MethodologyOptions(refine_localities=False)
        result = derive(qstack_worked, options=options)
        assert result.stage5_table.diff(result.stage4_table) == []


class TestMonotonicity:
    def test_stages_never_strengthen(self, derivation):
        assert derivation.stage4_table.refines(derivation.stage3_table)
        assert derivation.stage5_table.refines(derivation.stage4_table)

    def test_final_table_alias(self, derivation):
        assert derivation.final_table is derivation.stage5_table

    def test_stage_tables_listing(self, derivation):
        labels = [label for label, _ in derivation.stage_tables()]
        assert labels == ["stage3", "stage4", "stage5"]


class TestOtherADTs:
    def test_fifo_queue_enq_deq_refined(self):
        result = derive(FifoQueueSpec())
        entry = result.stage5_table.entry("Deq", "Enq")
        assert entry.weakest() is Dependency.ND
        assert entry.is_conditional

    def test_account_no_locality_refinement(self):
        # All operations share the single acct reference.
        result = derive(AccountSpec())
        assert result.stage5_table.diff(result.stage4_table) == []

    def test_operation_subset_argument(self):
        adt = QStackSpec()
        result = derive(adt, operations=["Top", "Size"])
        assert result.operations == ["Top", "Size"]
        assert result.stage3_table.is_complete()

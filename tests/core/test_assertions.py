"""Unit tests for the executable Assertions 1-3 (Section 4.3)."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.core.assertions import (
    assertion1_no_dependency,
    assertion2_commute,
    assertion3_recoverable,
    locality_dependency,
)
from repro.core.dependency import Dependency
from repro.graph.instrument import LocalityTrace
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def qstack() -> QStackSpec:
    return QStackSpec()


def traces(qstack, state, first, second):
    return (
        execute_invocation(qstack, state, first).trace,
        execute_invocation(qstack, state, second).trace,
    )


class TestAssertion1:
    def test_disjoint_localities_no_dependency(self, qstack):
        x, y = traces(
            qstack,
            ("a", "b", "a"),
            Invocation("Replace", ("a", "b")),
            Invocation("XTop"),
        )
        # Replace is content-restricted, XTop structure-restricted: the
        # paper's separation corollary (with the corrected third term).
        assert assertion1_no_dependency(x, y)

    def test_intersecting_modifications_flagged(self, qstack):
        x, y = traces(qstack, ("a", "b"), Invocation("Pop"), Invocation("Pop"))
        assert not assertion1_no_dependency(x, y)

    def test_empty_traces_trivially_separate(self):
        assert assertion1_no_dependency(LocalityTrace(), LocalityTrace())


class TestAssertion2:
    def test_observers_commute(self, qstack):
        x, y = traces(qstack, ("a",), Invocation("Top"), Invocation("Size"))
        assert assertion2_commute(x, y)

    def test_modifier_vs_observer_on_same_vertex(self, qstack):
        x, y = traces(qstack, ("a",), Invocation("Pop"), Invocation("Top"))
        assert not assertion2_commute(x, y)

    def test_structure_content_separation_commutes(self, qstack):
        x, y = traces(
            qstack,
            ("a", "b", "b"),
            Invocation("XTop"),
            Invocation("Replace", ("b", "a")),
        )
        assert assertion2_commute(x, y)


class TestAssertion3:
    def test_observer_then_modifier_is_recoverable(self, qstack):
        # y = Pop after x = Size: Pop's modifications intersect Size's
        # observations -> CD cells only -> recoverable.
        x, y = traces(qstack, ("a",), Invocation("Size"), Invocation("Pop"))
        assert assertion3_recoverable(x, y)

    def test_modifier_then_observer_not_recoverable(self, qstack):
        # y = Size after x = Pop: Size observes what Pop modified -> AD.
        x, y = traces(qstack, ("a",), Invocation("Pop"), Invocation("Size"))
        assert not assertion3_recoverable(x, y)

    def test_commuting_pair_is_recoverable(self, qstack):
        x, y = traces(qstack, ("a",), Invocation("Top"), Invocation("Top"))
        assert assertion3_recoverable(x, y)


class TestLocalityDependency:
    def test_strongest_intersection_wins(self, qstack):
        x, y = traces(qstack, ("a",), Invocation("Pop"), Invocation("Top"))
        assert locality_dependency(x, y) is Dependency.AD

    def test_commit_dependency_case(self, qstack):
        x, y = traces(qstack, ("a",), Invocation("Size"), Invocation("Pop"))
        assert locality_dependency(x, y) is Dependency.CD

    def test_no_intersection_is_nd(self, qstack):
        x, y = traces(
            qstack,
            ("a", "b"),
            Invocation("Replace", ("a", "b")),
            Invocation("XTop"),
        )
        assert locality_dependency(x, y) is Dependency.ND

"""Unit tests for compatibility-table entries and their resolution rule."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.core.conditions import (
    Always,
    And,
    ConditionContext,
    InputsEqual,
    OutcomeIs,
    ReferencesDistinct,
    ReferencesEqual,
)
from repro.core.dependency import Dependency
from repro.core.entry import ConditionalDependency, Entry
from repro.errors import InconsistentEntryError
from repro.spec.operation import Invocation
from repro.spec.returnvalue import nok, ok


def make_context(state, first_return=None, second_return=None):
    return ConditionContext(
        first_invocation=Invocation("Push", ("a",)),
        second_invocation=Invocation("Deq"),
        pre_graph=QStackSpec().build_graph(state),
        first_return=first_return,
        second_return=second_return,
    )


@pytest.fixture
def table14_entry() -> Entry:
    """The paper's Table 14: {(CD, nok), (AD, f=b), (ND, f≠b)}."""
    return Entry(
        [
            ConditionalDependency(Dependency.CD, OutcomeIs("first", "nok")),
            ConditionalDependency(Dependency.AD, ReferencesEqual("f", "b")),
            ConditionalDependency(Dependency.ND, ReferencesDistinct("f", "b")),
        ]
    )


class TestConstruction:
    def test_unconditional(self):
        entry = Entry.unconditional(Dependency.CD)
        assert not entry.is_conditional
        assert entry.strongest() is Dependency.CD
        assert entry.weakest() is Dependency.CD

    def test_empty_entry_rejected(self):
        with pytest.raises(InconsistentEntryError):
            Entry([])

    def test_conditional_flag(self, table14_entry):
        assert table14_entry.is_conditional

    def test_dependencies_set(self, table14_entry):
        assert table14_entry.dependencies() == {
            Dependency.ND,
            Dependency.CD,
            Dependency.AD,
        }


class TestMutualConsistency:
    def test_refining_condition_must_weaken(self):
        # (AD, A ∧ B) next to (CD, A) violates Section 4.4's rule.
        base = OutcomeIs("first", "ok")
        with pytest.raises(InconsistentEntryError):
            Entry(
                [
                    ConditionalDependency(Dependency.CD, base),
                    ConditionalDependency(
                        Dependency.AD, And(base, InputsEqual())
                    ),
                ]
            )

    def test_refining_condition_with_weaker_dep_accepted(self):
        base = OutcomeIs("first", "ok")
        entry = Entry(
            [
                ConditionalDependency(Dependency.AD, base),
                ConditionalDependency(Dependency.ND, And(base, InputsEqual())),
            ]
        )
        assert entry.strongest() is Dependency.AD

    def test_conditional_stronger_than_unconditional_rejected(self):
        with pytest.raises(InconsistentEntryError):
            Entry(
                [
                    ConditionalDependency(Dependency.CD, Always()),
                    ConditionalDependency(Dependency.AD, InputsEqual()),
                ]
            )


class TestResolution:
    def test_weakest_holding_pair_wins(self, table14_entry):
        # Unsuccessful Push on a full stack with f != b: both the CD and
        # the ND conditions hold; the paper chooses ND.
        ctx = make_context(("a", "b", "a"), first_return=nok())
        assert table14_entry.resolve(ctx) is Dependency.ND

    def test_single_holding_pair(self, table14_entry):
        ctx = make_context(("a", "b"), first_return=ok())
        assert table14_entry.resolve(ctx) is Dependency.ND  # f != b

    def test_reference_equality_resolves_ad(self, table14_entry):
        ctx = make_context(("a",), first_return=ok())
        assert table14_entry.resolve(ctx) is Dependency.AD

    def test_fallback_to_strongest_when_undecidable(self):
        entry = Entry(
            [
                ConditionalDependency(Dependency.CD, OutcomeIs("first", "nok")),
                ConditionalDependency(Dependency.ND, OutcomeIs("first", "ok")),
            ]
        )
        ctx = make_context(("a",))  # no returns known yet
        assert entry.resolve(ctx) is Dependency.CD

    def test_unconditional_resolution(self):
        ctx = make_context(())
        assert Entry.unconditional(Dependency.AD).resolve(ctx) is Dependency.AD


class TestRendering:
    def test_unconditional_render(self):
        assert Entry.unconditional(Dependency.AD).render() == "AD"
        assert Entry.unconditional(Dependency.ND).render() == ""
        assert Entry.unconditional(Dependency.ND).render(blank_nd=False) == "ND"

    def test_conditional_render_lists_pairs(self, table14_entry):
        text = table14_entry.render()
        assert "(CD, x_out = nok)" in text
        assert "(AD, f = b)" in text
        assert "(ND, f ≠ b)" in text


class TestEquality:
    def test_order_insensitive_equality(self):
        pair_a = ConditionalDependency(Dependency.CD, OutcomeIs("first", "nok"))
        pair_b = ConditionalDependency(Dependency.AD, OutcomeIs("first", "ok"))
        assert Entry([pair_a, pair_b]) == Entry([pair_b, pair_a])
        assert hash(Entry([pair_a, pair_b])) == hash(Entry([pair_b, pair_a]))

    def test_inequality(self):
        assert Entry.unconditional(Dependency.AD) != Entry.unconditional(
            Dependency.CD
        )

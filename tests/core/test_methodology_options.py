"""The methodology-options matrix: partitions, feasibility, fidelity."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.core.dependency import Dependency
from repro.core.methodology import MethodologyOptions, derive
from repro.experiments.base import entry_signature
from repro.graph.instrument import EdgeAttribution


@pytest.fixture(scope="module")
def adt() -> QStackSpec:
    return QStackSpec(operations=["Push", "Pop", "Deq", "Top", "Size"])


class TestOutcomePartitions:
    def test_second_partition(self, adt):
        options = MethodologyOptions(
            outcome_partition="second", refine_inputs=False
        )
        result = derive(adt, options=options)
        # (Pop, Deq): a following Pop's own outcome varies (nok once the
        # Deq emptied the QStack), so the second-side partition applies.
        signature = entry_signature(result.stage4_table.entry("Pop", "Deq"))
        assert any("y_out" in condition for _, condition in signature)
        assert all("x_out" not in condition for _, condition in signature)

    def test_first_partition(self, adt):
        options = MethodologyOptions(
            outcome_partition="first", refine_inputs=False
        )
        result = derive(adt, options=options)
        signature = entry_signature(result.stage4_table.entry("Deq", "Push"))
        assert signature == frozenset(
            {("CD", "x_out = nok"), ("AD", "x_out = ok")}
        )

    def test_joint_partition_conditions_both_sides(self, adt):
        options = MethodologyOptions(
            outcome_partition="joint", refine_inputs=False
        )
        result = derive(adt, options=options)
        signature = entry_signature(result.stage4_table.entry("Pop", "Pop"))
        assert any(
            "x_out" in condition and "y_out" in condition
            for _, condition in signature
        )

    def test_none_partition_keeps_stage3(self, adt):
        options = MethodologyOptions(
            outcome_partition="none",
            refine_inputs=False,
            refine_localities=False,
        )
        result = derive(adt, options=options)
        assert result.stage4_table.diff(result.stage3_table) == []

    def test_auto_collapses_where_one_side_is_determined(self, adt):
        result = derive(adt, options=MethodologyOptions(refine_inputs=False))
        # (Deq, Push) collapses to Push-only conditions under "auto".
        signature = entry_signature(result.stage4_table.entry("Deq", "Push"))
        assert all("y_out" not in condition for _, condition in signature)


class TestFidelityModes:
    def test_paper_mode_produces_unguarded_table14(self, adt):
        options = MethodologyOptions(
            outcome_partition="first",
            refine_inputs=False,
            validate_conditions=False,
        )
        result = derive(adt, options=options)
        signature = entry_signature(result.stage5_table.entry("Deq", "Push"))
        assert ("ND", "f ≠ b") in signature

    def test_validated_mode_guards_table14(self, adt):
        result = derive(adt)
        signature = entry_signature(result.stage5_table.entry("Deq", "Push"))
        assert ("ND", "x_out = ok ∧ f ≠ b") in signature
        assert ("ND", "f ≠ b") not in signature

    def test_both_modes_share_stage3(self, adt):
        paper = derive(
            adt, options=MethodologyOptions(validate_conditions=False)
        )
        validated = derive(adt)
        assert paper.stage3_table.diff(validated.stage3_table) == []


class TestAttribution:
    def test_source_attribution_still_reproduces_table10(self, adt):
        options = MethodologyOptions(attribution=EdgeAttribution.SOURCE)
        result = derive(adt, options=options)
        # The D1/D2-level template derivation is attribution-insensitive
        # for the QStack's operations.
        baseline = derive(adt)
        assert result.stage3_table.diff(baseline.stage3_table) == []


class TestBoundsOverride:
    def test_smaller_bounds_still_complete(self, adt):
        from repro.spec.adt import EnumerationBounds

        options = MethodologyOptions(bounds=EnumerationBounds(2, ("a",)))
        result = derive(adt, options=options)
        assert result.final_table.is_complete()
        # Core conflicts survive even under tiny bounds.
        assert result.stage3_table.dependency("Pop", "Push") is Dependency.AD

"""Unit tests for the template tables (Tables 2-8)."""

import pytest

from repro.core.classification import OpClass
from repro.core.dependency import Dependency
from repro.core.templates import (
    LOCALITY_KINDS,
    d1_base_entry,
    d1_entry,
    d2_base_entry,
    d2_entry,
    no_information_entry,
    table2_entry,
)
from repro.errors import TemplateError


class TestTable2:
    def test_ad_cells(self):
        assert table2_entry("so", "sm") is Dependency.AD
        assert table2_entry("co", "cm") is Dependency.AD

    def test_cd_cells(self):
        for pair in (("sm", "so"), ("sm", "sm"), ("cm", "co"), ("cm", "cm")):
            assert table2_entry(*pair) is Dependency.CD

    def test_cross_dimension_is_nd(self):
        for y in ("so", "sm"):
            for x in ("co", "cm"):
                assert table2_entry(y, x) is Dependency.ND
                assert table2_entry(x, y) is Dependency.ND

    def test_observer_observer_is_nd(self):
        assert table2_entry("so", "so") is Dependency.ND
        assert table2_entry("co", "co") is Dependency.ND

    def test_unknown_kind_rejected(self):
        with pytest.raises(TemplateError):
            table2_entry("xx", "so")

    def test_kind_universe(self):
        assert set(LOCALITY_KINDS) == {"so", "co", "sm", "cm"}


class TestD1:
    def test_table5(self):
        assert d1_base_entry(OpClass.O, OpClass.O) is Dependency.ND
        assert d1_base_entry(OpClass.O, OpClass.M) is Dependency.AD
        assert d1_base_entry(OpClass.M, OpClass.O) is Dependency.CD
        assert d1_base_entry(OpClass.M, OpClass.M) is Dependency.CD

    def test_base_entry_rejects_mo(self):
        with pytest.raises(TemplateError):
            d1_base_entry(OpClass.MO, OpClass.O)

    def test_mo_expansion_matches_table4(self):
        assert d1_entry(OpClass.O, OpClass.MO) is Dependency.AD
        assert d1_entry(OpClass.M, OpClass.MO) is Dependency.CD
        assert d1_entry(OpClass.MO, OpClass.O) is Dependency.CD
        assert d1_entry(OpClass.MO, OpClass.M) is Dependency.AD
        assert d1_entry(OpClass.MO, OpClass.MO) is Dependency.AD

    def test_no_information_is_ad(self):
        assert no_information_entry() is Dependency.AD
        assert d1_entry(OpClass.MO, OpClass.MO) is no_information_entry()


class TestD2:
    def test_table6_corners(self):
        assert d2_base_entry("o", "S", "m", "S") is Dependency.AD
        assert d2_base_entry("o", "S", "m", "C") is Dependency.ND
        assert d2_base_entry("o", "CS", "m", "CS") is Dependency.AD

    def test_table7_corners(self):
        assert d2_base_entry("m", "S", "m", "S") is Dependency.CD
        assert d2_base_entry("m", "S", "m", "C") is Dependency.ND
        assert d2_base_entry("m", "CS", "m", "C") is Dependency.CD

    def test_table8_corners(self):
        assert d2_base_entry("m", "C", "o", "S") is Dependency.ND
        assert d2_base_entry("m", "CS", "o", "CS") is Dependency.CD

    def test_observer_observer_always_nd(self):
        for y_kind in ("S", "C", "CS"):
            for x_kind in ("S", "C", "CS"):
                assert d2_base_entry("o", y_kind, "o", x_kind) is Dependency.ND

    def test_invalid_role_rejected(self):
        with pytest.raises(TemplateError):
            d2_base_entry("x", "S", "m", "S")

    def test_invalid_kind_rejected(self):
        with pytest.raises(TemplateError):
            d2_base_entry("o", "Z", "m", "S")


class TestD2Composition:
    def test_structure_vs_content_separation(self):
        # Replace (content-only) against XTop (structure-only): ND.
        replace = (("o", "C"), ("m", "C"))
        xtop = (("o", "S"), ("m", "S"))
        assert d2_entry(replace, xtop) is Dependency.ND
        assert d2_entry(xtop, replace) is Dependency.ND

    def test_full_mo_pair_is_ad(self):
        push = (("o", "S"), ("m", "CS"))
        deq = (("o", "CS"), ("m", "CS"))
        assert d2_entry(deq, push) is Dependency.AD

    def test_missing_components_yield_none(self):
        assert d2_entry((), (("o", "S"),)) is None
        assert d2_entry((("m", "C"),), ()) is None

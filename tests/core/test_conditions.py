"""Unit tests for the condition algebra (Stage 4-5 predicates)."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.core.conditions import (
    Always,
    And,
    ArgsDistinct,
    ConditionContext,
    InputsEqual,
    Not,
    OutcomeIs,
    OutcomesEqual,
    ReferencesDistinct,
    ReferencesEqual,
)
from repro.spec.operation import Invocation
from repro.spec.returnvalue import nok, ok, result_only


def context(
    state=("a", "b"),
    first=Invocation("Push", ("a",)),
    second=Invocation("Deq"),
    first_return=None,
    second_return=None,
    with_graph=True,
):
    graph = QStackSpec().build_graph(state) if with_graph else None
    return ConditionContext(
        first_invocation=first,
        second_invocation=second,
        pre_graph=graph,
        first_return=first_return,
        second_return=second_return,
    )


class TestAlways:
    def test_always_true(self):
        assert Always().evaluate(context()) is True

    def test_render(self):
        assert Always().render() == "true"

    def test_specificity_zero(self):
        assert Always().specificity == 0


class TestOutcomeIs:
    def test_matches_outcome(self):
        condition = OutcomeIs("first", "ok")
        assert condition.evaluate(context(first_return=ok())) is True
        assert condition.evaluate(context(first_return=nok())) is False

    def test_result_label(self):
        condition = OutcomeIs("second", "result")
        assert condition.evaluate(context(second_return=result_only("e"))) is True

    def test_undecidable_without_return(self):
        assert OutcomeIs("first", "ok").evaluate(context()) is None

    def test_render(self):
        assert OutcomeIs("first", "nok").render() == "x_out = nok"
        assert OutcomeIs("second", "ok").render() == "y_out = ok"


class TestOutcomesEqual:
    def test_equal_labels(self):
        ctx = context(first_return=ok(), second_return=ok())
        assert OutcomesEqual().evaluate(ctx) is True

    def test_different_labels(self):
        ctx = context(first_return=ok(), second_return=nok())
        assert OutcomesEqual().evaluate(ctx) is False

    def test_undecidable_when_either_missing(self):
        assert OutcomesEqual().evaluate(context(first_return=ok())) is None


class TestInputConditions:
    def test_inputs_equal(self):
        ctx = context(
            first=Invocation("Push", ("a",)), second=Invocation("Push", ("a",))
        )
        assert InputsEqual().evaluate(ctx) is True

    def test_inputs_unequal(self):
        ctx = context(
            first=Invocation("Push", ("a",)), second=Invocation("Push", ("b",))
        )
        assert InputsEqual().evaluate(ctx) is False

    def test_args_distinct(self):
        ctx = context(
            first=Invocation("Insert", ("k1",)), second=Invocation("Delete", ("k2",))
        )
        assert ArgsDistinct(0).evaluate(ctx) is True

    def test_args_distinct_missing_arg_is_false(self):
        ctx = context(first=Invocation("Pop"), second=Invocation("Deq"))
        assert ArgsDistinct(0).evaluate(ctx) is False


class TestReferenceConditions:
    def test_distinct_on_two_element_stack(self):
        assert ReferencesDistinct("f", "b").evaluate(context(("a", "b"))) is True

    def test_equal_on_singleton(self):
        assert ReferencesDistinct("f", "b").evaluate(context(("a",))) is False
        assert ReferencesEqual("f", "b").evaluate(context(("a",))) is True

    def test_dangling_references_compare_not_distinct(self):
        # conservative: an empty object offers no disjointness
        assert ReferencesDistinct("f", "b").evaluate(context(())) is False

    def test_undecidable_without_graph(self):
        ctx = context(with_graph=False)
        assert ReferencesDistinct("f", "b").evaluate(ctx) is None
        assert ReferencesEqual("f", "b").evaluate(ctx) is None

    def test_render(self):
        assert ReferencesDistinct("f", "b").render() == "f ≠ b"
        assert ReferencesEqual("f", "b").render() == "f = b"


class TestCombinators:
    def test_and_true(self):
        ctx = context(("a", "b"), first_return=ok())
        condition = And(OutcomeIs("first", "ok"), ReferencesDistinct("f", "b"))
        assert condition.evaluate(ctx) is True

    def test_and_false_dominates_undecided(self):
        ctx = context(("a", "b"), first_return=nok())
        condition = And(OutcomeIs("first", "ok"), OutcomeIs("second", "ok"))
        assert condition.evaluate(ctx) is False

    def test_and_undecided(self):
        condition = And(OutcomeIs("first", "ok"), OutcomeIs("second", "ok"))
        assert condition.evaluate(context(first_return=ok())) is None

    def test_and_flattens(self):
        inner = And(OutcomeIs("first", "ok"), InputsEqual())
        outer = And(inner, OutcomesEqual())
        assert len(outer.parts) == 3

    def test_and_specificity_sums(self):
        assert And(OutcomeIs("first", "ok"), InputsEqual()).specificity == 2

    def test_and_render(self):
        condition = And(OutcomeIs("first", "ok"), OutcomeIs("second", "nok"))
        assert condition.render() == "x_out = ok ∧ y_out = nok"

    def test_not(self):
        condition = Not(OutcomeIs("first", "ok"))
        assert condition.evaluate(context(first_return=nok())) is True
        assert condition.evaluate(context(first_return=ok())) is False
        assert condition.evaluate(context()) is None

    def test_not_render(self):
        assert Not(InputsEqual()).render() == "¬(x_in = y_in)"

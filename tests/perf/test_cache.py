"""ExecutionCache: memoization contract, LRU bound, counters, metrics."""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.graph.instrument import EdgeAttribution
from repro.obs.registry import MetricsRegistry
from repro.perf.cache import (
    CacheStats,
    ExecutionCache,
    ensure_execution_cache,
    execution_cache,
)
from repro.spec.adt import (
    active_execution_cache,
    execute_invocation,
    execute_uncached,
    install_execution_cache,
)
from repro.spec.operation import Invocation

ADT = QStackSpec(capacity=2, domain=("a", "b"))
PUSH_A = Invocation("Push", ("a",))
POP = Invocation("Pop")


class TestMemoization:
    def test_hit_returns_identical_execution(self):
        cache = ExecutionCache()
        first = cache.get_or_execute(ADT, (), PUSH_A, EdgeAttribution.BOTH)
        second = cache.get_or_execute(ADT, (), PUSH_A, EdgeAttribution.BOTH)
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_cached_equals_uncached(self):
        cache = ExecutionCache()
        for state in ADT.state_list():
            for invocation in ADT.invocations():
                cached = cache.get_or_execute(
                    ADT, state, invocation, EdgeAttribution.BOTH
                )
                fresh = execute_uncached(
                    ADT, state, invocation, EdgeAttribution.BOTH
                )
                assert cached.post_state == fresh.post_state
                assert cached.returned == fresh.returned
                assert cached.trace == fresh.trace

    def test_distinct_attributions_are_distinct_entries(self):
        cache = ExecutionCache()
        cache.get_or_execute(ADT, (), PUSH_A, EdgeAttribution.BOTH)
        cache.get_or_execute(ADT, (), PUSH_A, EdgeAttribution.SOURCE)
        assert cache.misses == 2 and cache.hits == 0

    def test_adt_instances_key_by_identity(self):
        cache = ExecutionCache()
        other = QStackSpec(capacity=2, domain=("a", "b"))
        cache.get_or_execute(ADT, (), PUSH_A, EdgeAttribution.BOTH)
        cache.get_or_execute(other, (), PUSH_A, EdgeAttribution.BOTH)
        assert cache.misses == 2 and cache.hits == 0


class TestEviction:
    def test_lru_bound_holds(self):
        cache = ExecutionCache(maxsize=3)
        states = ADT.state_list()
        for state in states[:5]:
            cache.get_or_execute(ADT, state, POP, EdgeAttribution.BOTH)
        assert len(cache) == 3
        assert cache.evictions == 2

    def test_oldest_entry_is_evicted_first(self):
        cache = ExecutionCache(maxsize=2)
        s0, s1, s2 = ADT.state_list()[:3]
        cache.get_or_execute(ADT, s0, POP, EdgeAttribution.BOTH)
        cache.get_or_execute(ADT, s1, POP, EdgeAttribution.BOTH)
        # Touch s0 so s1 becomes the LRU victim.
        cache.get_or_execute(ADT, s0, POP, EdgeAttribution.BOTH)
        cache.get_or_execute(ADT, s2, POP, EdgeAttribution.BOTH)
        cache.get_or_execute(ADT, s0, POP, EdgeAttribution.BOTH)
        assert cache.hits == 2  # s0 twice
        cache.get_or_execute(ADT, s1, POP, EdgeAttribution.BOTH)
        assert cache.misses == 4  # s0, s1, s2, then s1 again after eviction

    def test_clear_preserves_counters(self):
        cache = ExecutionCache()
        cache.get_or_execute(ADT, (), PUSH_A, EdgeAttribution.BOTH)
        cache.clear()
        assert len(cache) == 0 and cache.misses == 1

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            ExecutionCache(maxsize=0)


class TestStats:
    def test_stats_snapshot(self):
        cache = ExecutionCache()
        cache.get_or_execute(ADT, (), PUSH_A, EdgeAttribution.BOTH)
        cache.get_or_execute(ADT, (), PUSH_A, EdgeAttribution.BOTH)
        stats = cache.stats()
        assert stats == CacheStats(hits=1, misses=1, evictions=0, size=1)
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5

    def test_hit_rate_before_first_lookup(self):
        assert ExecutionCache().stats().hit_rate == 0.0

    def test_publish_exports_counters(self):
        cache = ExecutionCache()
        cache.get_or_execute(ADT, (), PUSH_A, EdgeAttribution.BOTH)
        cache.get_or_execute(ADT, (), PUSH_A, EdgeAttribution.BOTH)
        registry = MetricsRegistry()
        cache.publish(registry)
        metrics = {
            instrument.name: instrument.value
            for instrument in registry.instruments()
        }
        assert metrics["execution_cache_hits"] == 1
        assert metrics["execution_cache_misses"] == 1
        assert metrics["execution_cache_evictions"] == 0
        assert metrics["execution_cache_size"] == 1

    def test_publish_is_delta_based(self):
        cache = ExecutionCache()
        registry = MetricsRegistry()
        cache.get_or_execute(ADT, (), PUSH_A, EdgeAttribution.BOTH)
        cache.publish(registry)
        cache.publish(registry)  # no traffic since: counters must not move
        cache.get_or_execute(ADT, (), PUSH_A, EdgeAttribution.BOTH)
        cache.publish(registry)
        metrics = {
            instrument.name: instrument.value
            for instrument in registry.instruments()
        }
        assert metrics["execution_cache_misses"] == 1
        assert metrics["execution_cache_hits"] == 1


class TestInstallation:
    def test_execute_invocation_consults_installed_cache(self):
        with execution_cache() as cache:
            execute_invocation(ADT, (), PUSH_A)
            execute_invocation(ADT, (), PUSH_A)
            assert cache.hits == 1 and cache.misses == 1

    def test_context_restores_previous_cache(self):
        assert active_execution_cache() is None
        with execution_cache() as outer:
            assert active_execution_cache() is outer
            with execution_cache() as inner:
                assert active_execution_cache() is inner
            assert active_execution_cache() is outer
        assert active_execution_cache() is None

    def test_ensure_joins_installed_cache(self):
        with execution_cache() as outer:
            with ensure_execution_cache() as joined:
                assert joined is outer
        with ensure_execution_cache() as fresh:
            assert active_execution_cache() is fresh
        assert active_execution_cache() is None

    def test_install_returns_previous(self):
        cache = ExecutionCache()
        previous = install_execution_cache(cache)
        try:
            assert previous is None
            assert active_execution_cache() is cache
        finally:
            install_execution_cache(previous)
        assert active_execution_cache() is None

    def test_account_adt_also_caches(self):
        adt = AccountSpec(max_balance=2, amounts=(1,))
        deposit = Invocation("Deposit", (1,))
        with execution_cache() as cache:
            first = execute_invocation(adt, 0, deposit)
            second = execute_invocation(adt, 0, deposit)
            assert first is second
            assert cache.hits == 1

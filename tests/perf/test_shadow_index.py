"""Shadow-state index: incremental maintenance and abort invalidation.

The index's one obligation is freshness: a ``shadow_state``/
``shadow_return`` query must always equal a full replay of the object's
current log minus the excluded transaction — including immediately after
aborts rewrote the log.  The scheduler-level tests here run abort-heavy
workloads (voluntary aborts, cascades, deadlock victims) with an
*audited* index that recomputes the full replay on every single query
and fails the moment a maintained state goes stale.
"""

from __future__ import annotations

import pytest

from repro.adts.registry import make_adt
from repro.cc.harness import drive
from repro.cc.objects import SharedObject
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.perf.shadow import ShadowStateIndex, ShadowStats
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def account():
    return make_adt("Account")


@pytest.fixture(scope="module")
def qstack():
    return make_adt("QStack")


@pytest.fixture(scope="module")
def qstack_table(qstack):
    return derive(qstack).final_table


def deposit(amount: int) -> Invocation:
    return Invocation("Deposit", (amount,))


def replay_without(shared: SharedObject, exclude_txn: int, skip=None):
    """The ground truth the index must always agree with."""
    from repro.spec.adt import execute_invocation

    state = shared.initial_state
    for entry in shared.log():
        if entry is skip or entry.txn == exclude_txn:
            continue
        state = execute_invocation(shared.adt, state, entry.invocation).post_state
    return state


def assert_fresh(index: ShadowStateIndex, shared: SharedObject, txns) -> None:
    for txn in txns:
        assert index.shadow_state(shared.name, shared, txn) == replay_without(
            shared, txn
        ), f"stale shadow state for txn {txn}"


# ----------------------------------------------------------------------
# Direct unit behaviour
# ----------------------------------------------------------------------


class TestIncrementalMaintenance:
    def _object(self, account):
        shared = SharedObject("acct", account)
        index = ShadowStateIndex()
        index.register("acct")
        return shared, index

    def test_maintained_states_track_the_log(self, account):
        shared, index = self._object(account)
        for step, txn in enumerate((0, 1, 2, 0, 1, 2)):
            applied = shared.execute(txn, deposit(step % 3 + 1))
            # Certify-then-note, as the scheduler does: while the new
            # entry is logged but un-noted, queries skip it explicitly.
            for other in (t for t in (0, 1, 2) if t != txn):
                assert index.shadow_state(
                    "acct", shared, other, skip=applied
                ) == replay_without(shared, other, skip=applied)
            index.note_execute("acct", shared, applied)
        assert_fresh(index, shared, (0, 1, 2))

    def test_queries_hit_after_first_build(self, account):
        shared, index = self._object(account)
        for txn in (0, 1):
            index.note_execute("acct", shared, shared.execute(txn, deposit(1)))
        index.shadow_state("acct", shared, 0)
        builds = index.stats.shadow_full_replays
        index.shadow_state("acct", shared, 0)
        assert index.stats.shadow_full_replays == builds
        assert index.stats.shadow_replays_avoided >= 1

    def test_skip_excludes_the_uncertified_entry(self, account):
        shared, index = self._object(account)
        index.note_execute("acct", shared, shared.execute(0, deposit(5)))
        # Txn 1's operation is logged but not yet noted — the scheduler
        # certifies in exactly this window.
        applied = shared.execute(1, deposit(7))
        state = index.shadow_state("acct", shared, 0, skip=applied)
        assert state == replay_without(shared, 0, skip=applied)
        # The memoized state must also be consistent once applied is noted.
        index.note_execute("acct", shared, applied)
        assert_fresh(index, shared, (0, 1))

    def test_forget_drops_only_that_transaction(self, account):
        shared, index = self._object(account)
        for txn in (0, 1):
            index.note_execute("acct", shared, shared.execute(txn, deposit(1)))
        index.shadow_state("acct", shared, 0)
        index.shadow_state("acct", shared, 1)
        index.forget("acct", 0)
        builds = index.stats.shadow_full_replays
        index.shadow_state("acct", shared, 1)  # still maintained
        assert index.stats.shadow_full_replays == builds
        index.shadow_state("acct", shared, 0)  # rebuilt
        assert index.stats.shadow_full_replays == builds + 1

    def test_standalone_stats_sink(self):
        stats = ShadowStats()
        assert stats.shadow_replays_avoided == 0
        assert stats.shadow_full_replays == 0


class TestAbortInvalidation:
    def test_abort_mid_history_invalidates(self, account):
        shared = SharedObject("acct", account)
        index = ShadowStateIndex()
        index.register("acct")
        for step, txn in enumerate((0, 1, 2, 1, 0)):
            index.note_execute(
                "acct", shared, shared.execute(txn, deposit(step + 1))
            )
        assert_fresh(index, shared, (0, 1, 2))
        epoch = index.epoch("acct")
        # Abort txn 1 mid-history: the log is rewritten without it.
        shared.remove_transactions({1})
        index.invalidate("acct")
        assert index.epoch("acct") == epoch + 1
        # Without invalidation the old states (which embedded txn 1's
        # deposits) would be wrong; after it, queries rebuild correctly.
        assert_fresh(index, shared, (0, 2))

    def test_every_abort_bumps_the_epoch(self, account):
        index = ShadowStateIndex()
        index.register("acct")
        for expected in (1, 2, 3):
            index.invalidate("acct")
            assert index.epoch("acct") == expected

    def test_invalidate_all_objects(self, account):
        index = ShadowStateIndex()
        index.register("a")
        index.register("b")
        index.invalidate()
        assert index.epoch("a") == 1
        assert index.epoch("b") == 1


# ----------------------------------------------------------------------
# In situ: the scheduler must never read a stale verdict
# ----------------------------------------------------------------------


class _AuditedIndex(ShadowStateIndex):
    """Checks every query against a fresh full replay."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.audited = 0

    def shadow_state(self, name, shared, exclude_txn, skip=None):
        state = super().shadow_state(name, shared, exclude_txn, skip)
        assert state == self._replay_without(shared, exclude_txn, skip), (
            f"stale shadow state: object={name} exclude={exclude_txn}"
        )
        self.audited += 1
        return state


def _audited_scheduler(policy: str) -> TableDrivenScheduler:
    scheduler = TableDrivenScheduler(policy=policy)
    scheduler._shadow = _AuditedIndex(
        cache=scheduler.execution_cache, stats=scheduler.stats
    )
    return scheduler


class TestSchedulerNeverStale:
    def test_under_cascading_aborts(self, qstack, qstack_table):
        workload = generate(
            qstack,
            "obj",
            WorkloadConfig(
                transactions=8,
                operations_per_transaction=5,
                abort_probability=0.25,
                seed=0,
            ),
        )
        scheduler = _audited_scheduler("optimistic")
        drive(scheduler, qstack, qstack_table, workload)
        assert scheduler.stats.cascaded_aborts > 0, "scenario must cascade"
        assert scheduler._shadow.audited > 0

    def test_under_deadlock_victim_rollback(self, qstack, qstack_table):
        workload = generate(
            qstack,
            "obj",
            WorkloadConfig(
                transactions=8,
                operations_per_transaction=5,
                abort_probability=0.25,
                seed=0,
            ),
        )
        scheduler = _audited_scheduler("blocking")
        drive(scheduler, qstack, qstack_table, workload)
        assert scheduler.stats.deadlock_victims > 0, "scenario must deadlock"
        assert scheduler._shadow.audited > 0

    def test_across_many_abort_heavy_seeds(self, qstack, qstack_table):
        for seed in range(8):
            for policy in ("optimistic", "blocking"):
                workload = generate(
                    qstack,
                    "obj",
                    WorkloadConfig(
                        transactions=6,
                        operations_per_transaction=4,
                        abort_probability=0.35,
                        seed=seed,
                    ),
                )
                scheduler = _audited_scheduler(policy)
                drive(scheduler, qstack, qstack_table, workload)

"""The registration-time compilation layer (:mod:`repro.perf.codegen`).

Covers the tentpole's correctness edges:

* :class:`ConflictMatrix` agrees cell-for-cell with the
  :class:`~repro.perf.flat_table.FlatTable` it supersedes, for every
  builtin ADT's derived table;
* the ``exec``-generated executors are bit-identical to
  :func:`~repro.spec.adt.execute_uncached` over the full enumerated
  state x invocation space (covering the variadic fallback the builtin
  ADTs take *and* the fixed-arity unpack paths via custom specs);
* degenerate shapes: a single-operation ADT (1x1 matrix) and an
  all-conflict table (empty ND bitmasks, the fast path never fires);
* two ADTs sharing operation names on one compiled scheduler — the
  dense integer-id spaces are per-artefact, so names can never collide;
* the :class:`~repro.perf.cache.ExecutionCache` extensions the compiled
  path rides on: the pluggable ``executor`` miss handler and the batched
  ``get_or_execute_batch`` lookup.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import pytest

from repro.adts.registry import builtin_names, make_adt
from repro.core.dependency import Dependency
from repro.core.entry import Entry
from repro.core.methodology import derive
from repro.core.table import CompatibilityTable
from repro.graph.instrument import EdgeAttribution, InstrumentedGraph
from repro.graph.object_graph import ObjectGraph
from repro.perf.cache import ExecutionCache
from repro.perf.codegen import (
    CompiledADT,
    ConflictMatrix,
    compile_adt,
    compiled_execute,
)
from repro.perf.flat_table import FlatTable
from repro.cc.scheduler import TableDrivenScheduler
from repro.spec.adt import ADTSpec, EnumerationBounds, execute_uncached
from repro.spec.operation import Invocation, OperationSpec
from repro.spec.returnvalue import ok, result_only

_TABLES = {}


def _table(adt):
    if adt.name not in _TABLES:
        _TABLES[adt.name] = derive(adt).final_table
    return _TABLES[adt.name]


# ----------------------------------------------------------------------
# Custom specs: fixed-arity executors and degenerate operation counts
# ----------------------------------------------------------------------


class _TickOp(OperationSpec):
    """Zero-argument, *fixed-arity* modifier (no ``*args`` fallback)."""

    name = "Tick"
    referencing = "implicit"
    references_used = frozenset({"counter"})

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [()]

    def execute(self, view: InstrumentedGraph) -> Any:
        vid = view.deref("counter")
        view.modify_content(vid, view.observe_content(vid) + 1)
        return ok()


class _AddOp(OperationSpec):
    """One-argument, fixed-arity modifier (the ``_a0, =`` unpack path)."""

    name = "Add"
    referencing = "implicit"
    references_used = frozenset({"counter"})

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [(n,) for n in bounds.domain]

    def execute(self, view: InstrumentedGraph, amount) -> Any:
        vid = view.deref("counter")
        view.modify_content(vid, view.observe_content(vid) + amount)
        return ok()


class _ReadOp(OperationSpec):
    name = "Read"
    referencing = "implicit"
    references_used = frozenset({"counter"})

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [()]

    def execute(self, view: InstrumentedGraph) -> Any:
        return result_only(view.observe_content(view.deref("counter")))


class CounterSpec(ADTSpec):
    """A tiny counter; ``operations`` selects the exposed subset."""

    def __init__(self, name: str = "Counter", ops: tuple[str, ...] = ("Tick",)):
        self.name = name
        self.default_bounds = EnumerationBounds(capacity=3, domain=(1, 2))
        available = {
            "Tick": _TickOp(),
            "Add": _AddOp(),
            "Read": _ReadOp(),
        }
        self._operations = {op: available[op] for op in ops}

    @property
    def operations(self) -> Mapping[str, OperationSpec]:
        return self._operations

    def states(self, bounds: EnumerationBounds) -> Iterable[int]:
        return range(bounds.capacity + 1)

    def initial_state(self) -> int:
        return 0

    def build_graph(self, state: int) -> ObjectGraph:
        graph = ObjectGraph(self.name)
        vid = graph.add_vertex(value=state, label="count")
        graph.declare_reference("counter", vid)
        return graph

    def abstract_state(self, graph: ObjectGraph) -> int:
        (vertex,) = list(graph.vertices())
        return vertex.value


def _uniform_table(operations, dependency: Dependency) -> CompatibilityTable:
    table = CompatibilityTable(operations, name=f"all-{dependency.name}")
    for invoked in operations:
        for executing in operations:
            table.set_entry(
                invoked, executing, Entry.unconditional(dependency)
            )
    return table


# ----------------------------------------------------------------------
# ConflictMatrix vs FlatTable
# ----------------------------------------------------------------------


@pytest.mark.parametrize("adt_name", builtin_names())
def test_matrix_agrees_with_flat_table(adt_name):
    adt = make_adt(adt_name)
    table = _table(adt)
    matrix = ConflictMatrix.compile(table)
    flat = FlatTable.compile(table)
    assert matrix.operations == tuple(table.operations)
    for invoked in table.operations:
        i = matrix.op_id[invoked]
        for executing in table.operations:
            j = matrix.op_id[executing]
            # The live entry is the same object the string path serves.
            assert matrix.entry_at(i, j) is flat.entry(invoked, executing)
            is_nd = matrix.code(i, j) == ConflictMatrix.ND
            assert is_nd == flat.is_unconditional_nd(invoked, executing)
            # A single-operation mask agrees with the cell code, so the
            # whole-transaction bitmask test can never diverge from the
            # per-entry loop.
            assert matrix.all_nd(i, 1 << j) == is_nd
            code = matrix.code(i, j)
            entry = matrix.entry_at(i, j)
            if code == ConflictMatrix.CONDITIONAL:
                assert entry.is_conditional
            elif code == ConflictMatrix.NON_ND:
                assert not entry.is_conditional
                assert entry.weakest() is not Dependency.ND


def test_single_operation_matrix():
    adt = CounterSpec(ops=("Tick",))
    table = _uniform_table(["Tick"], Dependency.CD)
    matrix = ConflictMatrix.compile(table)
    assert matrix.size == 1
    assert matrix.op_id == {"Tick": 0}
    assert matrix.code(0, 0) == ConflictMatrix.NON_ND
    assert not matrix.all_nd(0, 1)
    assert matrix.all_nd(0, 0)  # empty peer mask is trivially all-ND
    # And the compiled scheduler schedules it identically to the
    # reference structures.
    assert _drive_counter(adt, table, compiled=True) == _drive_counter(
        adt, table, compiled=False
    )


def test_all_conflict_matrix_has_empty_nd_masks():
    operations = ["Tick", "Add", "Read"]
    table = _uniform_table(operations, Dependency.AD)
    matrix = ConflictMatrix.compile(table)
    assert matrix.nd_rows == (0, 0, 0)
    for i in range(3):
        for j in range(3):
            assert matrix.code(i, j) == ConflictMatrix.NON_ND
            assert not matrix.all_nd(i, 1 << j)
    adt = CounterSpec(ops=("Tick", "Add", "Read"))
    assert _drive_counter(adt, table, compiled=True) == _drive_counter(
        adt, table, compiled=False
    )


def _drive_counter(adt, table, compiled: bool):
    """Two interleaved transactions over one counter; full decision log."""
    scheduler = TableDrivenScheduler(
        policy="optimistic", compiled=compiled,
        execution_cache=ExecutionCache(),
    )
    scheduler.register_object("ctr", adt, table)
    decisions = []
    t1, t2 = scheduler.begin(), scheduler.begin()
    for txn, operation in (
        (t1, "Tick"), (t2, "Tick"), (t1, "Tick"), (t2, "Tick")
    ):
        if not scheduler.transaction(txn).is_active:
            decisions.append((txn, "inactive"))
            continue
        invocation = Invocation(operation=operation, args=())
        decision = scheduler.request(txn, "ctr", invocation)
        decisions.append(
            (txn, decision.executed, decision.aborted, decision.dependencies)
        )
    for txn in (t1, t2):
        if scheduler.transaction(txn).is_active:
            decisions.append((txn, scheduler.try_commit(txn).committed))
    decisions.append(scheduler.object("ctr").state())
    decisions.append(scheduler.stats.seed_counters())
    return decisions


# ----------------------------------------------------------------------
# Generated executors
# ----------------------------------------------------------------------


@pytest.mark.parametrize("adt_name", builtin_names())
def test_executors_match_execute_uncached(adt_name):
    adt = make_adt(adt_name)
    compiled = compile_adt(adt)
    attribution = EdgeAttribution.BOTH
    states = adt.state_list(adt.default_bounds)
    for invocation in adt.invocations():
        executor = compiled.executor(invocation.operation, attribution)
        for state in states:
            assert executor(state, invocation) == execute_uncached(
                adt, state, invocation, attribution
            )


def test_fixed_arity_executors_match():
    """Builtin specs are all variadic; the fixed-arity unpack paths are
    exercised by the custom counter ops (arity 0 and arity 1)."""
    adt = CounterSpec(ops=("Tick", "Add", "Read"))
    compiled = compile_adt(adt)
    attribution = EdgeAttribution.BOTH
    for invocation in adt.invocations():
        executor = compiled.executor(invocation.operation, attribution)
        for state in adt.state_list(adt.default_bounds):
            assert executor(state, invocation) == execute_uncached(
                adt, state, invocation, attribution
            )


def test_compile_adt_memoizes_by_identity():
    a = CounterSpec(ops=("Tick",))
    b = CounterSpec(ops=("Tick",))
    assert compile_adt(a) is compile_adt(a)
    assert compile_adt(a) is not compile_adt(b)
    compiled = compile_adt(a)
    assert compiled.executor("Tick") is compiled.executor("Tick")


def test_compiled_execute_is_a_drop_in_miss_handler():
    adt = make_adt("Account")
    invocation = Invocation(operation="Deposit", args=(1,))
    assert compiled_execute(
        adt, 0, invocation, EdgeAttribution.BOTH
    ) == execute_uncached(adt, 0, invocation, EdgeAttribution.BOTH)


# ----------------------------------------------------------------------
# Shared operation names across ADTs
# ----------------------------------------------------------------------


def test_shared_operation_names_do_not_collide():
    """Stack and QStack both expose Push/Pop/Top/Size; each compiled
    artefact numbers its *own* operations, so one compiled scheduler can
    host both without id-space interference."""
    stack = make_adt("Stack")
    qstack = make_adt("QStack")
    assert set(stack.operation_names()) & set(qstack.operation_names())
    assert compile_adt(stack).op_id != compile_adt(qstack).op_id or (
        compile_adt(stack).operations != compile_adt(qstack).operations
    )

    def run(compiled: bool):
        scheduler = TableDrivenScheduler(
            policy="optimistic", compiled=compiled,
            execution_cache=ExecutionCache(),
        )
        scheduler.register_object("s", stack, _table(stack))
        scheduler.register_object("q", qstack, _table(qstack))
        out = []
        t1, t2 = scheduler.begin(), scheduler.begin()
        script = [
            (t1, "s", Invocation(operation="Push", args=(1,))),
            (t2, "q", Invocation(operation="Push", args=(2,))),
            (t2, "s", Invocation(operation="Push", args=(2,))),
            (t1, "q", Invocation(operation="Deq", args=())),
            (t1, "s", Invocation(operation="Top", args=())),
            (t2, "q", Invocation(operation="Size", args=())),
        ]
        for txn, obj, invocation in script:
            if not scheduler.transaction(txn).is_active:
                out.append((txn, obj, "inactive"))
                continue
            decision = scheduler.request(txn, obj, invocation)
            out.append(
                (
                    txn,
                    obj,
                    decision.executed,
                    decision.aborted,
                    repr(decision.returned),
                    decision.dependencies,
                )
            )
        for txn in (t1, t2):
            if scheduler.transaction(txn).is_active:
                out.append((txn, scheduler.try_commit(txn).committed))
        out.append((scheduler.object("s").state(), scheduler.object("q").state()))
        out.append(scheduler.stats.seed_counters())
        return out

    assert run(compiled=True) == run(compiled=False)


# ----------------------------------------------------------------------
# ExecutionCache: pluggable executor + batched lookups
# ----------------------------------------------------------------------


def test_cache_executor_override_serves_identical_values():
    adt = make_adt("Account")
    invocation = Invocation(operation="Deposit", args=(1,))
    default = ExecutionCache()
    compiled = ExecutionCache(executor=compiled_execute)
    a = default.get_or_execute(adt, 0, invocation, EdgeAttribution.BOTH)
    b = compiled.get_or_execute(adt, 0, invocation, EdgeAttribution.BOTH)
    assert a == b
    assert default.misses == compiled.misses == 1


def test_get_or_execute_batch_counters_and_alignment():
    adt = make_adt("Account")
    invocation = Invocation(operation="Deposit", args=(1,))
    attribution = EdgeAttribution.BOTH
    states = adt.state_list(adt.default_bounds)
    cache = ExecutionCache()
    executor = compile_adt(adt).executor("Deposit", attribution)
    compute = lambda state: executor(state, invocation)  # noqa: E731

    first = cache.get_or_execute_batch(
        adt, invocation, attribution, states, compute
    )
    assert cache.misses == len(states) and cache.hits == 0
    assert [e.pre_state for e in first] == list(states)
    for state, execution in zip(states, first):
        assert execution == execute_uncached(adt, state, invocation, attribution)

    second = cache.get_or_execute_batch(
        adt, invocation, attribution, states, compute
    )
    assert cache.hits == len(states) and cache.misses == len(states)
    # Hits return the canonical cached records, by identity.
    assert all(a is b for a, b in zip(first, second))


def test_get_or_execute_batch_respects_the_lru_bound():
    adt = make_adt("Account")
    invocation = Invocation(operation="Deposit", args=(1,))
    attribution = EdgeAttribution.BOTH
    states = adt.state_list(adt.default_bounds)
    assert len(states) > 2
    cache = ExecutionCache(maxsize=2)
    executor = compile_adt(adt).executor("Deposit", attribution)
    results = cache.get_or_execute_batch(
        adt, invocation, attribution, states, lambda s: executor(s, invocation)
    )
    assert len(results) == len(states)
    assert len(cache) == 2
    assert cache.evictions == len(states) - 2

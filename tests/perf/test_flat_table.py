"""FlatTable: the compiled form is exactly the source table, but flat."""

from __future__ import annotations

import pytest

from repro.adts.registry import make_adt
from repro.core.dependency import Dependency
from repro.core.methodology import derive
from repro.perf.flat_table import FlatTable


@pytest.fixture(scope="module", params=["QStack", "Account", "FifoQueue"])
def compiled(request):
    table = derive(make_adt(request.param)).final_table
    return table, FlatTable.compile(table)


def test_same_operations(compiled):
    table, flat = compiled
    assert flat.operations == tuple(table.operations)


def test_every_cell_is_the_source_entry(compiled):
    table, flat = compiled
    for invoked in table.operations:
        for executing in table.operations:
            assert flat.entry(invoked, executing) is table.entry(
                invoked, executing
            )


def test_nd_bitset_matches_entry_predicates(compiled):
    table, flat = compiled
    for invoked in table.operations:
        for executing in table.operations:
            entry = table.entry(invoked, executing)
            expected = (
                not entry.is_conditional and entry.weakest() is Dependency.ND
            )
            assert flat.is_unconditional_nd(invoked, executing) == expected


def test_fast_path_exists_somewhere():
    """At least one builtin table has unconditional-ND cells, otherwise
    the fast path is dead code."""
    table = derive(make_adt("Account")).final_table
    flat = FlatTable.compile(table)
    assert any(
        flat.is_unconditional_nd(a, b)
        for a in table.operations
        for b in table.operations
    )

"""EvidenceBase: matrix, successor index, replay memo, pairwise parity."""

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.perf.evidence import EvidenceBase
from repro.semantics.commutativity import commute_in_state
from repro.semantics.history import HistoryEvent, event_alphabet, replay
from repro.semantics.recoverability import recoverable_in_state
from repro.spec.adt import execute_invocation, post_state_of
from repro.spec.enumeration import reachable_states

ADT = QStackSpec(capacity=2, domain=("a", "b"))
EVIDENCE = EvidenceBase(ADT)


class TestMatrix:
    def test_matrix_covers_state_invocation_product(self):
        states = ADT.state_list()
        invocations = ADT.invocations()
        assert EVIDENCE.matrix_size() >= len(states) * len(invocations)

    def test_matrix_matches_direct_execution(self):
        for state in EVIDENCE.states():
            for invocation in ADT.invocations():
                memoized = EVIDENCE.execute(state, invocation)
                fresh = execute_invocation(ADT, state, invocation)
                assert memoized.post_state == fresh.post_state
                assert memoized.returned == fresh.returned

    def test_successor_is_post_state(self):
        state = EVIDENCE.states()[0]
        invocation = ADT.invocations()[0]
        assert (
            EVIDENCE.successor(state, invocation)
            == execute_invocation(ADT, state, invocation).post_state
        )

    def test_execute_grows_lazily_past_enumerated_fragment(self):
        evidence = EvidenceBase(ADT, bounds=ADT.default_bounds)
        before = evidence.matrix_size()
        off_matrix = ("a", "a")  # reachable, and we ask from it explicitly
        evidence.execute(off_matrix, ADT.invocations()[0])
        assert evidence.matrix_size() >= before

    def test_by_operation_covers_requested_operations(self):
        subset = EvidenceBase(ADT, operations=["Push", "Pop"])
        assert set(subset.by_operation) == {"Push", "Pop"}


class TestReplay:
    def test_replay_matches_history_semantics(self):
        alphabet = sorted(event_alphabet(ADT), key=lambda e: e.render())
        start = ADT.initial_state()
        for first in alphabet:
            for second in alphabet:
                history = (first, second)
                assert EVIDENCE.replay(history, start) == replay(
                    ADT, history, start
                )

    def test_replay_memoizes_prefixes(self):
        execution = EVIDENCE.execute(ADT.initial_state(), ADT.invocations()[0])
        event = HistoryEvent(execution.invocation, execution.returned)
        EVIDENCE.replay((event, event, event), ADT.initial_state())
        # The memo now answers the prefix without recomputation.
        assert ((event,), ADT.initial_state()) in EVIDENCE._replay_memo

    def test_event_alphabet_matches_history_module(self):
        assert EVIDENCE.event_alphabet() == event_alphabet(ADT)
        assert event_alphabet(ADT, evidence=EVIDENCE) == event_alphabet(ADT)


class TestPairwiseParity:
    def test_commute_in_state_parity(self):
        invocations = ADT.invocations()
        for state in EVIDENCE.states():
            for first in invocations:
                for second in invocations:
                    assert EVIDENCE.commute_in_state(
                        state, first, second
                    ) == commute_in_state(ADT, state, first, second)

    def test_commute_in_state_via_evidence_parameter(self):
        state = EVIDENCE.states()[0]
        first, second = ADT.invocations()[:2]
        assert commute_in_state(
            ADT, state, first, second, evidence=EVIDENCE
        ) == commute_in_state(ADT, state, first, second)

    def test_recoverable_in_state_parity(self):
        adt = AccountSpec(max_balance=2, amounts=(1,))
        evidence = EvidenceBase(adt)
        for state in evidence.states():
            for second in adt.invocations():
                for first in adt.invocations():
                    assert recoverable_in_state(
                        adt, state, second, first, evidence=evidence
                    ) == recoverable_in_state(adt, state, second, first)


class TestEnumerationFastPath:
    def test_post_state_of_matches_full_execution(self):
        for state in ADT.state_list():
            for invocation in ADT.invocations():
                assert (
                    post_state_of(ADT, state, invocation)
                    == execute_invocation(ADT, state, invocation).post_state
                )

    def test_reachable_states_unchanged_by_fast_path(self):
        adt = AccountSpec(max_balance=3, amounts=(1,))
        assert reachable_states(adt) == set(range(4))
        assert reachable_states(ADT, max_steps=1) == {
            (),
            ("a",),
            ("b",),
        }

"""Shared fixtures.

The heavyweight artifacts (full QStack derivations) are session-scoped:
every stage of the pipeline is deterministic, so tests can share them
without interference, and the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.adts.qstack import QStackSpec
from repro.core.methodology import MethodologyOptions, derive
from repro.experiments import golden


@pytest.fixture(scope="session")
def qstack_full() -> QStackSpec:
    """The full seven-operation QStack."""
    return QStackSpec()


@pytest.fixture(scope="session")
def qstack_worked() -> QStackSpec:
    """The five-operation QStack of the paper's worked example."""
    return QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)


@pytest.fixture(scope="session")
def derivation(qstack_worked):
    """Default (validated) derivation for the worked example."""
    return derive(qstack_worked)


@pytest.fixture(scope="session")
def paper_derivation(qstack_worked):
    """Paper-fidelity derivation (unvalidated Stage 4/5 conditions)."""
    options = MethodologyOptions(
        outcome_partition="first",
        refine_inputs=False,
        validate_conditions=False,
    )
    return derive(qstack_worked, options=options)

"""Unit tests for the table-driven scheduler."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.cc.scheduler import TableDrivenScheduler
from repro.core.dependency import Dependency
from repro.core.methodology import derive
from repro.errors import SchedulerError, TransactionStateError
from repro.experiments import golden
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def table():
    adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    return derive(adt).final_table


def make_scheduler(table, policy="optimistic", state=("a", "b")):
    scheduler = TableDrivenScheduler(policy=policy)
    scheduler.register_object(
        "qs",
        QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS),
        table,
        initial_state=state,
    )
    return scheduler


class TestSetup:
    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulerError):
            TableDrivenScheduler(policy="psychic")

    def test_duplicate_object_rejected(self, table):
        scheduler = make_scheduler(table)
        with pytest.raises(SchedulerError):
            scheduler.register_object("qs", QStackSpec(), table)

    def test_unknown_object_rejected(self, table):
        scheduler = make_scheduler(table)
        txn = scheduler.begin()
        with pytest.raises(SchedulerError):
            scheduler.request(txn, "nope", Invocation("Pop"))

    def test_begin_assigns_dense_ids(self, table):
        scheduler = make_scheduler(table)
        assert [scheduler.begin() for _ in range(3)] == [0, 1, 2]


class TestOptimistic:
    def test_nd_pair_records_no_dependency(self, table):
        # Push (back) then Deq (front) on a 2-element QStack: the Stage-5
        # conditional entry resolves to ND.
        scheduler = make_scheduler(table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        assert scheduler.request(t1, "qs", Invocation("Push", ("a",))).executed
        decision = scheduler.request(t2, "qs", Invocation("Deq"))
        assert decision.executed
        assert decision.dependencies == ()
        assert scheduler.try_commit(t2).committed  # no waiting

    def test_ad_pair_blocks_commit_and_cascades(self, table):
        # Two Pops: the second observes the first.
        scheduler = make_scheduler(table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        decision = scheduler.request(t2, "qs", Invocation("Pop"))
        assert decision.dependencies == ((t1, Dependency.AD),)
        commit = scheduler.try_commit(t2)
        assert not commit.committed and commit.waiting_on == {t1}
        scheduler.abort(t1)
        assert scheduler.transaction(t2).is_aborted  # cascade

    def test_cd_pair_orders_commits(self, table):
        scheduler = make_scheduler(table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Top"))
        decision = scheduler.request(t2, "qs", Invocation("Pop"))
        assert decision.dependencies == ((t1, Dependency.CD),)
        assert not scheduler.try_commit(t2).committed
        assert scheduler.try_commit(t1).committed
        assert scheduler.try_commit(t2).committed

    def test_cd_predecessor_abort_allows_commit(self, table):
        scheduler = make_scheduler(table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Top"))
        scheduler.request(t2, "qs", Invocation("Pop"))
        scheduler.abort(t1)
        assert scheduler.transaction(t2).is_active  # CD never cascades
        assert scheduler.try_commit(t2).committed

    def test_cycle_aborts_requester(self, table):
        # t1 Pop; t2 Pop (t2 AD t1); then t1 Pop again -> would need
        # t1 -> t2, closing a cycle: t1 becomes the victim.
        scheduler = make_scheduler(table, state=("a", "b", "a"))
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        scheduler.request(t2, "qs", Invocation("Pop"))
        decision = scheduler.request(t1, "qs", Invocation("Pop"))
        assert decision.aborted
        assert scheduler.transaction(t1).is_aborted
        # t2 observed t1's pop: cascaded too.
        assert scheduler.transaction(t2).is_aborted

    def test_abort_restores_object_state(self, table):
        scheduler = make_scheduler(table)
        t1 = scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Push", ("b",)))
        scheduler.abort(t1)
        assert scheduler.object("qs").state() == ("a", "b")

    def test_commit_then_action_rejected(self, table):
        scheduler = make_scheduler(table)
        t1 = scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Top"))
        assert scheduler.try_commit(t1).committed
        with pytest.raises(TransactionStateError):
            scheduler.request(t1, "qs", Invocation("Pop"))

    def test_committed_operations_do_not_conflict(self, table):
        scheduler = make_scheduler(table)
        t1 = scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        scheduler.try_commit(t1)
        t2 = scheduler.begin()
        decision = scheduler.request(t2, "qs", Invocation("Pop"))
        assert decision.dependencies == ()


class TestBlocking:
    def test_ad_conflict_blocks(self, table):
        scheduler = make_scheduler(table, policy="blocking")
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        decision = scheduler.request(t2, "qs", Invocation("Pop"))
        assert not decision.executed
        assert decision.blocked_on == {t1}
        assert scheduler.waiting_on(t2) == {t1}

    def test_blocked_request_succeeds_after_commit(self, table):
        scheduler = make_scheduler(table, policy="blocking")
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        scheduler.request(t2, "qs", Invocation("Pop"))
        scheduler.try_commit(t1)
        retry = scheduler.request(t2, "qs", Invocation("Pop"))
        assert retry.executed
        assert retry.returned.result == "a"

    def test_nd_pairs_do_not_block(self, table):
        scheduler = make_scheduler(table, policy="blocking")
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Push", ("a",)))
        decision = scheduler.request(t2, "qs", Invocation("Deq"))
        assert decision.executed

    def test_deadlock_victim_is_youngest(self, table):
        scheduler = make_scheduler(table, state=("a", "b", "a"), policy="blocking")
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        # t2's Pop blocks on t1.
        assert not scheduler.request(t2, "qs", Invocation("Pop")).executed
        # t1 commit-waits on nothing; make t1 block on t2 instead:
        # t2 holds nothing, so drive the cycle through commit-waiting:
        # t1 requests Top (no conflict), then commits fine — instead
        # verify the wait-for bookkeeping directly.
        assert scheduler.waiting_on(t2) == {t1}

    def test_stats_counters(self, table):
        scheduler = make_scheduler(table, policy="blocking")
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        scheduler.request(t2, "qs", Invocation("Pop"))
        assert scheduler.stats.operations_executed == 1
        assert scheduler.stats.operations_blocked == 1

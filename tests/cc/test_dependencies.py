"""Unit tests for the inter-transaction dependency graph."""

import pytest

from repro.cc.dependencies import DependencyGraph
from repro.core.dependency import Dependency
from repro.errors import DependencyCycleError


@pytest.fixture
def graph() -> DependencyGraph:
    return DependencyGraph()


class TestEdges:
    def test_nd_edges_ignored(self, graph):
        graph.add(1, 0, Dependency.ND)
        assert graph.dependency(1, 0) is Dependency.ND
        assert graph.edges() == {}

    def test_strongest_label_kept(self, graph):
        graph.add(1, 0, Dependency.CD)
        graph.add(1, 0, Dependency.AD)
        graph.add(1, 0, Dependency.CD)
        assert graph.dependency(1, 0) is Dependency.AD

    def test_self_dependency_rejected(self, graph):
        with pytest.raises(DependencyCycleError):
            graph.add(1, 1, Dependency.AD)

    def test_cycle_rejected(self, graph):
        graph.add(1, 0, Dependency.CD)
        with pytest.raises(DependencyCycleError):
            graph.add(0, 1, Dependency.CD)

    def test_transitive_cycle_rejected(self, graph):
        graph.add(1, 0, Dependency.CD)
        graph.add(2, 1, Dependency.CD)
        with pytest.raises(DependencyCycleError):
            graph.add(0, 2, Dependency.AD)


class TestQueries:
    def test_predecessors_and_dependents(self, graph):
        graph.add(2, 0, Dependency.AD)
        graph.add(2, 1, Dependency.CD)
        assert graph.predecessors(2) == {0: Dependency.AD, 1: Dependency.CD}
        assert graph.dependents(0) == {2: Dependency.AD}

    def test_abort_dependents_filters_cd(self, graph):
        graph.add(2, 0, Dependency.AD)
        graph.add(3, 0, Dependency.CD)
        assert graph.abort_dependents(0) == {2}

    def test_drop_removes_incident_edges(self, graph):
        graph.add(1, 0, Dependency.AD)
        graph.add(2, 1, Dependency.CD)
        graph.drop(1)
        assert graph.edges() == {}


class TestCascade:
    def test_transitive_cascade(self, graph):
        graph.add(1, 0, Dependency.AD)
        graph.add(2, 1, Dependency.AD)
        graph.add(3, 2, Dependency.CD)  # CD does not cascade
        assert graph.abort_cascade([0]) == {1, 2}

    def test_cascade_excludes_roots(self, graph):
        graph.add(1, 0, Dependency.AD)
        assert 0 not in graph.abort_cascade([0])

    def test_cascade_of_independent_txn_is_empty(self, graph):
        graph.add(1, 0, Dependency.CD)
        assert graph.abort_cascade([0]) == set()

    def test_multiple_roots(self, graph):
        graph.add(2, 0, Dependency.AD)
        graph.add(3, 1, Dependency.AD)
        assert graph.abort_cascade([0, 1]) == {2, 3}

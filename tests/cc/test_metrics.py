"""Unit tests for run metrics."""

import pytest

from repro.cc.metrics import RunMetrics
from repro.cc.scheduler import SchedulerStats


class TestDerivedMetrics:
    def test_throughput(self):
        metrics = RunMetrics(makespan=10.0, committed=5)
        assert metrics.throughput == pytest.approx(0.5)

    def test_throughput_zero_makespan(self):
        assert RunMetrics(committed=3).throughput == 0.0

    def test_mean_response_time(self):
        metrics = RunMetrics(committed=4, total_response_time=20.0)
        assert metrics.mean_response_time == pytest.approx(5.0)

    def test_mean_response_time_no_commits(self):
        assert RunMetrics().mean_response_time == 0.0

    def test_effective_concurrency(self):
        metrics = RunMetrics(makespan=4.0, total_service_time=12.0)
        assert metrics.effective_concurrency == pytest.approx(3.0)

    def test_blocking_ratio(self):
        metrics = RunMetrics(total_service_time=6.0, total_blocked_time=2.0)
        assert metrics.blocking_ratio == pytest.approx(0.25)

    def test_blocking_ratio_idle(self):
        assert RunMetrics().blocking_ratio == 0.0

    def test_summary_fields(self):
        metrics = RunMetrics(
            makespan=2.0,
            committed=1,
            aborted=2,
            restarts=3,
            scheduler=SchedulerStats(ad_edges=4, cd_edges=5, nd_pairs=6),
        )
        summary = metrics.summary()
        for token in ("makespan=2.00", "committed=1", "aborted=2",
                      "restarts=3", "AD=4", "CD=5", "ND=6"):
            assert token in summary

"""Unit tests for run metrics."""

import pytest

from repro.cc.metrics import RunMetrics
from repro.cc.scheduler import SchedulerStats


class TestDerivedMetrics:
    def test_throughput(self):
        metrics = RunMetrics(makespan=10.0, committed=5)
        assert metrics.throughput == pytest.approx(0.5)

    def test_throughput_zero_makespan(self):
        assert RunMetrics(committed=3).throughput == 0.0

    def test_mean_response_time(self):
        metrics = RunMetrics(committed=4, total_response_time=20.0)
        assert metrics.mean_response_time == pytest.approx(5.0)

    def test_mean_response_time_no_commits(self):
        assert RunMetrics().mean_response_time == 0.0

    def test_effective_concurrency(self):
        metrics = RunMetrics(makespan=4.0, total_service_time=12.0)
        assert metrics.effective_concurrency == pytest.approx(3.0)

    def test_blocking_ratio(self):
        metrics = RunMetrics(total_service_time=6.0, total_blocked_time=2.0)
        assert metrics.blocking_ratio == pytest.approx(0.25)

    def test_blocking_ratio_idle(self):
        assert RunMetrics().blocking_ratio == 0.0

    def test_effective_concurrency_zero_makespan(self):
        assert RunMetrics(total_service_time=5.0).effective_concurrency == 0.0

    def test_blocking_ratio_all_blocked(self):
        metrics = RunMetrics(total_blocked_time=4.0)
        assert metrics.blocking_ratio == pytest.approx(1.0)

    def test_throughput_with_no_commits(self):
        assert RunMetrics(makespan=5.0).throughput == 0.0

    def test_summary_fields(self):
        metrics = RunMetrics(
            makespan=2.0,
            committed=1,
            aborted=2,
            restarts=3,
            scheduler=SchedulerStats(ad_edges=4, cd_edges=5, nd_pairs=6),
        )
        summary = metrics.summary()
        for token in ("makespan=2.00", "committed=1", "aborted=2",
                      "restarts=3", "AD=4", "CD=5", "ND=6"):
            assert token in summary


class TestRegistryExport:
    def test_counters_and_gauges(self):
        metrics = RunMetrics(
            makespan=10.0,
            committed=4,
            aborted=1,
            restarts=2,
            total_service_time=20.0,
            scheduler=SchedulerStats(
                ad_edges=3, cd_edges=7, blocked_time_events=5,
                condition_evaluations=40,
            ),
        )
        document = metrics.to_registry().to_json()
        counters = document["counters"]
        assert counters['txns{status="committed"}'] == 4
        assert counters['txns{status="aborted"}'] == 1
        assert counters["restarts"] == 2
        assert counters["scheduler_ad_edges"] == 3
        assert counters["scheduler_blocked_time_events"] == 5
        assert counters["scheduler_condition_evaluations"] == 40
        gauges = document["gauges"]
        assert gauges["makespan"] == 10.0
        assert gauges["throughput"] == pytest.approx(0.4)
        assert gauges["effective_concurrency"] == pytest.approx(2.0)

    def test_blocked_durations_feed_histogram(self):
        metrics = RunMetrics(blocked_durations=[0.05, 0.2, 3.0, 100.0])
        document = metrics.to_registry().to_json()
        histogram = document["histograms"]["blocked_time"]
        assert histogram["count"] == 4
        assert histogram["buckets"]["0.1"] == 1
        assert histogram["buckets"]["+Inf"] == 4

    def test_empty_run_exports_cleanly(self):
        document = RunMetrics().to_registry().to_json()
        assert document["counters"]['txns{status="committed"}'] == 0
        assert document["gauges"]["throughput"] == 0.0
        assert document["histograms"]["blocked_time"]["count"] == 0

    def test_renders_prometheus_text(self):
        text = RunMetrics(committed=2, makespan=4.0).to_registry().render_prometheus()
        assert '# TYPE repro_txns counter' in text
        assert 'repro_txns_total{status="committed"} 2' in text
        assert "# TYPE repro_blocked_time histogram" in text


class TestHotPathCounterExport:
    def test_optimization_counters_export_as_scheduler_counters(self):
        metrics = RunMetrics(
            scheduler=SchedulerStats(
                shadow_replays_avoided=9,
                shadow_full_replays=2,
                context_reuses=4,
                preview_reuses=3,
                nd_fast_path_hits=17,
            )
        )
        counters = metrics.to_registry().to_json()["counters"]
        assert counters["scheduler_shadow_replays_avoided"] == 9
        assert counters["scheduler_shadow_full_replays"] == 2
        assert counters["scheduler_context_reuses"] == 4
        assert counters["scheduler_preview_reuses"] == 3
        assert counters["scheduler_nd_fast_path_hits"] == 17

    def test_seed_counters_slice(self):
        stats = SchedulerStats(ad_edges=2, shadow_replays_avoided=5)
        seed = stats.seed_counters()
        assert seed["ad_edges"] == 2
        assert "shadow_replays_avoided" not in seed
        assert set(seed) == set(SchedulerStats.SEED_FIELDS)

    def test_execution_cache_publishes_into_run_registry(self):
        from repro.perf.cache import ExecutionCache

        cache = ExecutionCache()
        metrics = RunMetrics(execution_cache=cache)
        counters = metrics.to_registry().to_json()["counters"]
        assert "execution_cache_hits" in counters
        assert "execution_cache_misses" in counters

    def test_simulated_run_reports_cache_traffic(self):
        from repro.adts.registry import make_adt
        from repro.cc.simulator import SimulationConfig, simulate
        from repro.cc.workload import WorkloadConfig, generate
        from repro.core.methodology import derive

        adt = make_adt("Account")
        table = derive(adt).final_table
        workload = generate(
            adt,
            "obj",
            WorkloadConfig(
                transactions=4,
                operations_per_transaction=3,
                operation_mix={"Deposit": 1.0},
                seed=3,
            ),
        )
        config = SimulationConfig(
            adt=adt, table=table, object_name="obj", workload=workload
        )
        metrics = simulate(config)
        assert metrics.execution_cache is not None
        counters = metrics.to_registry().to_json()["counters"]
        total_lookups = (
            counters["execution_cache_hits"] + counters["execution_cache_misses"]
        )
        assert total_lookups > 0, "runtime traffic must flow through the cache"
        assert counters["scheduler_shadow_full_replays"] >= 0

"""Unit tests for transactions and their lifecycle."""

import pytest

from repro.cc.transaction import (
    OperationRecord,
    Transaction,
    TransactionStatus,
)
from repro.errors import TransactionStateError
from repro.spec.operation import Invocation
from repro.spec.returnvalue import ok, result_only


def record(sequence=1, operation="Push"):
    return OperationRecord(
        object_name="qs",
        invocation=Invocation(operation, ("a",)),
        returned=ok(),
        sequence=sequence,
    )


class TestLifecycle:
    def test_new_transaction_is_active(self):
        txn = Transaction(txn_id=0)
        assert txn.is_active
        assert not txn.is_committed and not txn.is_aborted

    def test_terminal_states(self):
        txn = Transaction(txn_id=0, status=TransactionStatus.COMMITTED)
        assert txn.is_committed
        assert txn.status.is_resolved

    def test_require_active_guards(self):
        txn = Transaction(txn_id=0, status=TransactionStatus.ABORTED)
        with pytest.raises(TransactionStateError):
            txn.require_active()

    def test_recording_requires_active(self):
        txn = Transaction(txn_id=0, status=TransactionStatus.COMMITTED)
        with pytest.raises(TransactionStateError):
            txn.record(record())


class TestRecords:
    def test_records_accumulate_in_order(self):
        txn = Transaction(txn_id=0)
        txn.record(record(sequence=1))
        txn.record(record(sequence=2, operation="Pop"))
        assert [r.sequence for r in txn.records] == [1, 2]

    def test_objects_touched(self):
        txn = Transaction(txn_id=0)
        txn.record(record())
        other = OperationRecord("other", Invocation("Size"), result_only(0), 2)
        txn.record(other)
        assert txn.objects_touched() == {"qs", "other"}

    def test_record_render(self):
        assert record().render() == "qs.Push('a'):ok"

"""Tests for multi-object workload simulation."""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.cc.serializability import is_serializable
from repro.cc.simulator import ObjectConfig, SimulationConfig, simulate_with_scheduler
from repro.cc.workload import Step, TransactionProgram, Workload
from repro.core.methodology import derive
from repro.errors import SchedulerError
from repro.experiments import golden
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def objects():
    qstack = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    account = AccountSpec()
    return (
        ("qs", ObjectConfig(adt=qstack, table=derive(qstack).final_table,
                            initial_state=("a", "b"))),
        ("acct", ObjectConfig(adt=account, table=derive(account).final_table,
                              initial_state=2)),
    )


def program(*steps, arrival=0.0, voluntary_abort=False):
    return TransactionProgram(
        arrival=arrival, steps=tuple(steps), voluntary_abort=voluntary_abort
    )


def step(obj, operation, *args, service=1.0):
    return Step(
        object_name=obj, invocation=Invocation(operation, args), service_time=service
    )


class TestMultiObjectRuns:
    def test_transactions_span_objects(self, objects):
        workload = Workload(
            programs=(
                program(step("qs", "Push", "c"), step("acct", "Deposit", 1)),
                program(step("acct", "Balance"), step("qs", "Top")),
            )
        )
        metrics, scheduler = simulate_with_scheduler(
            SimulationConfig(workload=workload, objects=objects)
        )
        assert metrics.committed + metrics.aborted == 2
        assert is_serializable(scheduler)

    def test_abort_rolls_back_all_objects(self, objects):
        workload = Workload(
            programs=(
                program(
                    step("qs", "Push", "c"),
                    step("acct", "Deposit", 2),
                    voluntary_abort=True,
                ),
            )
        )
        _, scheduler = simulate_with_scheduler(
            SimulationConfig(workload=workload, objects=objects)
        )
        assert scheduler.object("qs").state() == ("a", "b")
        assert scheduler.object("acct").state() == 2

    def test_seeded_cross_object_sweep(self, objects):
        import random

        rng = random.Random(17)
        qstack_invocations = objects[0][1].adt.invocations()
        account_invocations = objects[1][1].adt.invocations()
        programs = []
        for index in range(8):
            steps = []
            for _ in range(3):
                if rng.random() < 0.5:
                    steps.append(
                        Step("qs", rng.choice(qstack_invocations), 1.0)
                    )
                else:
                    steps.append(
                        Step("acct", rng.choice(account_invocations), 1.0)
                    )
            programs.append(program(*steps, arrival=index * 0.3))
        metrics, scheduler = simulate_with_scheduler(
            SimulationConfig(
                workload=Workload(programs=tuple(programs)),
                objects=objects,
                policy="blocking",
                restart_aborted=True,
            )
        )
        assert metrics.committed + metrics.aborted == 8
        assert is_serializable(scheduler)


class TestConfigValidation:
    def test_mixing_modes_rejected(self, objects):
        qstack = objects[0][1].adt
        with pytest.raises(SchedulerError, match="not both"):
            simulate_with_scheduler(
                SimulationConfig(
                    adt=qstack,
                    table=objects[0][1].table,
                    workload=Workload(programs=()),
                    objects=objects,
                )
            )

    def test_missing_single_object_fields_rejected(self):
        with pytest.raises(SchedulerError, match="single-object"):
            simulate_with_scheduler(
                SimulationConfig(workload=Workload(programs=()))
            )

"""Unit tests for shared objects and replay recovery."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.cc.objects import SharedObject
from repro.spec.operation import Invocation


@pytest.fixture
def shared() -> SharedObject:
    return SharedObject("qs", QStackSpec(), initial_state=("a",))


class TestExecution:
    def test_execute_mutates_live_state(self, shared):
        applied = shared.execute(0, Invocation("Push", ("b",)))
        assert applied.returned.outcome == "ok"
        assert shared.state() == ("a", "b")

    def test_log_in_execution_order(self, shared):
        shared.execute(0, Invocation("Push", ("b",)))
        shared.execute(1, Invocation("Pop"))
        assert [entry.txn for entry in shared.log()] == [0, 1]

    def test_operations_of(self, shared):
        shared.execute(0, Invocation("Push", ("b",)))
        shared.execute(1, Invocation("Pop"))
        assert len(shared.operations_of(0)) == 1
        assert len(shared.operations_of(2)) == 0

    def test_active_writers(self, shared):
        shared.execute(0, Invocation("Push", ("b",)))
        shared.execute(1, Invocation("Pop"))
        assert shared.active_writers(exclude=0) == {1}

    def test_preview_does_not_change_state(self, shared):
        returned = shared.preview(Invocation("Pop"))
        assert returned.result == "a"
        assert shared.state() == ("a",)
        assert shared.log() == []


class TestReplayRecovery:
    def test_removing_sole_writer_restores_initial_state(self, shared):
        shared.execute(0, Invocation("Push", ("b",)))
        invalidated = shared.remove_transactions({0})
        assert invalidated == set()
        assert shared.state() == ("a",)

    def test_surviving_commuting_operation_keeps_return(self, shared):
        shared.execute(0, Invocation("Push", ("b",)))  # back
        shared.execute(1, Invocation("Deq"))  # front: 'a'
        invalidated = shared.remove_transactions({0})
        assert invalidated == set()
        assert shared.state() == ()  # only the Deq survives: 'a' removed

    def test_invalidated_survivor_reported(self, shared):
        shared.execute(0, Invocation("Push", ("b",)))
        shared.execute(1, Invocation("Pop"))  # observed 'b' (txn 0's push)
        invalidated = shared.remove_transactions({0})
        assert invalidated == {1}

    def test_removing_multiple_transactions(self, shared):
        shared.execute(0, Invocation("Push", ("b",)))
        shared.execute(1, Invocation("Push", ("a",)))
        shared.remove_transactions({0, 1})
        assert shared.state() == ("a",)
        assert shared.log() == []

    def test_initial_state_property(self, shared):
        assert shared.initial_state == ("a",)


class TestForget:
    def test_forget_sole_transaction_rebases(self, shared):
        shared.execute(0, Invocation("Push", ("b",)))
        shared.forget(0)
        assert shared.log() == []
        assert shared.initial_state == ("a", "b")
        assert shared.state() == ("a", "b")

    def test_forget_prefix_only(self, shared):
        shared.execute(0, Invocation("Push", ("b",)))
        shared.execute(1, Invocation("Push", ("a",)))
        shared.forget(0)
        # txn 0's entry preceded every surviving entry: folded into the
        # baseline; txn 1's entry remains.
        assert [entry.txn for entry in shared.log()] == [1]
        assert shared.initial_state == ("a", "b")

    def test_forget_interleaved_keeps_later_entries(self, shared):
        shared.execute(1, Invocation("Push", ("a",)))
        shared.execute(0, Invocation("Push", ("b",)))
        shared.forget(0)
        # txn 0 executed after the active txn 1: both entries must stay
        # so that undoing txn 1 still replays correctly.
        assert [entry.txn for entry in shared.log()] == [1, 0]
        # and a subsequent abort of txn 1 replays txn 0's push alone
        shared.remove_transactions({1})
        assert shared.state() == ("a", "b")

"""Deep replay-invalidation chains must not exhaust the call stack.

Under a *sound* table every abort-dependent transaction is cascaded via
AD edges and ``remove_transactions`` never invalidates a survivor.  The
collateral work-list in :meth:`Scheduler.abort` exists for the unsound
case the soundness experiments probe: a deliberately all-ND table lets
transactions read through each other without edges, so aborting the
root invalidates the whole chain one replay at a time.  That used to
recurse once per chain link; these tests pin the iterative behaviour.
"""

import inspect
import sys

import pytest

from repro.adts.account import AccountSpec
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.transaction import TransactionStatus
from repro.core.dependency import Dependency
from repro.core.entry import Entry
from repro.core.table import CompatibilityTable
from repro.spec.operation import Invocation


def all_nd_table(adt):
    """The unsound extreme: every pair interleaves freely, no edges."""
    operations = list(adt.operations)
    return CompatibilityTable(
        operations,
        entries={
            (invoked, executing): Entry.unconditional(Dependency.ND)
            for invoked in operations
            for executing in operations
        },
        name="all-nd",
    )


def build_chain(depth):
    """txn 0 deposits 1; each later txn withdraws then redeposits it.

    Every Withdraw(1) observes the single unit txn 0 deposited (each
    link's net effect is zero), so aborting txn 0 replays every later
    Withdraw to ``nok`` — but only one link at a time becomes aborted,
    re-running the replay: a chain ``depth`` invalidations long.
    """
    adt = AccountSpec()
    scheduler = TableDrivenScheduler()
    scheduler.register_object("obj", adt, all_nd_table(adt))
    root = scheduler.begin()
    assert scheduler.request(root, "obj", Invocation("Deposit", (1,))).executed
    links = []
    for _ in range(depth):
        txn = scheduler.begin()
        decision = scheduler.request(txn, "obj", Invocation("Withdraw", (1,)))
        assert decision.executed
        assert scheduler.request(
            txn, "obj", Invocation("Deposit", (1,))
        ).executed
        links.append(txn)
    return scheduler, root, links


class TestDeepCascade:
    def test_chain_aborts_completely(self):
        scheduler, root, links = build_chain(12)
        cascade = scheduler.abort(root)
        assert cascade == set(links)
        for txn in [root, *links]:
            assert scheduler.transaction(txn).status is TransactionStatus.ABORTED
        assert scheduler.object("obj").state() == 0

    def test_hundreds_of_links_fit_in_a_small_stack(self):
        depth = 300
        scheduler, root, links = build_chain(depth)
        # Tight enough that one Python frame per chain link would blow:
        # the former recursive abort needed O(depth) frames.
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(len(inspect.stack()) + 60)
        try:
            cascade = scheduler.abort(root)
        finally:
            sys.setrecursionlimit(limit)
        assert cascade == set(links)
        assert scheduler.object("obj").state() == 0

    def test_collateral_is_counted_but_not_double_aborted(self):
        scheduler, root, links = build_chain(8)
        before = scheduler.stats.aborts
        scheduler.abort(root)
        # Every chain transaction is aborted exactly once.
        assert scheduler.stats.aborts - before == 1 + len(links)

    def test_sound_table_produces_no_collateral(self):
        adt = AccountSpec()
        from repro.core.methodology import derive

        scheduler = TableDrivenScheduler()
        scheduler.register_object("obj", adt, derive(adt).final_table)
        root = scheduler.begin()
        assert scheduler.request(
            root, "obj", Invocation("Deposit", (1,))
        ).executed
        reader = scheduler.begin()
        decision = scheduler.request(reader, "obj", Invocation("Withdraw", (1,)))
        cascade = scheduler.abort(root)
        # Whatever the sound table decided (AD cascade or a blocked
        # reader), nothing is ever replay-invalidated collateral: the
        # cascade only contains transactions with a recorded AD path.
        if decision.executed:
            assert cascade == {reader}
        else:
            assert cascade == set()

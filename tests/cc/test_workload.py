"""Unit tests for workload generation."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.cc.workload import Workload, WorkloadConfig, generate
from repro.errors import WorkloadError


@pytest.fixture(scope="module")
def adt() -> QStackSpec:
    return QStackSpec()


class TestConfigValidation:
    def test_defaults_valid(self):
        WorkloadConfig()

    def test_bad_transaction_count(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(transactions=0)

    def test_bad_ops_per_txn(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(operations_per_transaction=0)

    def test_bad_abort_probability(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(abort_probability=1.5)

    def test_bad_service_time(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(mean_service_time=0)


class TestGeneration:
    def test_shape(self, adt):
        workload = generate(
            adt, "qs", WorkloadConfig(transactions=5, operations_per_transaction=3)
        )
        assert isinstance(workload, Workload)
        assert len(workload.programs) == 5
        assert workload.total_operations() == 15
        assert all(len(p.steps) == 3 for p in workload.programs)

    def test_deterministic_for_seed(self, adt):
        config = WorkloadConfig(seed=42)
        assert generate(adt, "qs", config) == generate(adt, "qs", config)

    def test_different_seeds_differ(self, adt):
        first = generate(adt, "qs", WorkloadConfig(seed=1))
        second = generate(adt, "qs", WorkloadConfig(seed=2))
        assert first != second

    def test_arrivals_monotone(self, adt):
        workload = generate(adt, "qs", WorkloadConfig(transactions=10))
        arrivals = [p.arrival for p in workload.programs]
        assert arrivals == sorted(arrivals)

    def test_zero_interarrival_starts_together(self, adt):
        workload = generate(
            adt, "qs", WorkloadConfig(transactions=4, mean_interarrival=0)
        )
        assert all(p.arrival == 0.0 for p in workload.programs)

    def test_operation_mix_respected(self, adt):
        workload = generate(
            adt,
            "qs",
            WorkloadConfig(transactions=10, operation_mix={"Top": 1.0}),
        )
        operations = {
            step.invocation.operation
            for program in workload.programs
            for step in program.steps
        }
        assert operations == {"Top"}

    def test_unknown_operation_in_mix_rejected(self, adt):
        with pytest.raises(WorkloadError):
            generate(adt, "qs", WorkloadConfig(operation_mix={"Nope": 1.0}))

    def test_abort_probability_marks_programs(self, adt):
        workload = generate(
            adt,
            "qs",
            WorkloadConfig(transactions=50, abort_probability=0.5, seed=3),
        )
        flagged = sum(p.voluntary_abort for p in workload.programs)
        assert 0 < flagged < 50

    def test_invocation_arguments_within_domain(self, adt):
        workload = generate(adt, "qs", WorkloadConfig(transactions=20))
        for program in workload.programs:
            for step in program.steps:
                for argument in step.invocation.args:
                    assert argument in ("a", "b")

"""Tests for the commit-time validation scheduler (intentions lists)."""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.cc.validation import ValidationScheduler
from repro.core.methodology import derive
from repro.errors import SchedulerError, TransactionStateError
from repro.experiments import golden
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def qstack():
    return QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)


@pytest.fixture(scope="module")
def qstack_table(qstack):
    return derive(qstack).final_table


def make_scheduler(qstack, table, state=("a", "b")):
    scheduler = ValidationScheduler()
    scheduler.register_object("qs", qstack, table, initial_state=state)
    return scheduler


class TestDeferredExecution:
    def test_intentions_invisible_to_others(self, qstack, qstack_table):
        scheduler = make_scheduler(qstack, qstack_table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Push", ("c",)))
        # t2 sees only the committed state.
        returned = scheduler.request(t2, "qs", Invocation("Top"))
        assert returned.result == "b"
        assert scheduler.object("qs").state() == ("a", "b")

    def test_own_intentions_visible(self, qstack, qstack_table):
        scheduler = make_scheduler(qstack, qstack_table)
        t1 = scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Push", ("c",)))
        returned = scheduler.request(t1, "qs", Invocation("Top"))
        assert returned.result == "c"

    def test_requests_never_block(self, qstack, qstack_table):
        scheduler = make_scheduler(qstack, qstack_table)
        transactions = [scheduler.begin() for _ in range(4)]
        for txn in transactions:
            returned = scheduler.request(txn, "qs", Invocation("Pop"))
            assert returned.result == "b"  # everyone reads the same snapshot


class TestValidation:
    def test_first_committer_wins(self, qstack, qstack_table):
        scheduler = make_scheduler(qstack, qstack_table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        scheduler.request(t2, "qs", Invocation("Pop"))
        assert scheduler.try_commit(t1)
        assert not scheduler.try_commit(t2)  # its Pop:'b' is stale
        assert scheduler.status(t2) == "aborted"
        assert scheduler.object("qs").state() == ("a",)

    def test_non_conflicting_transactions_all_commit(self, qstack, qstack_table):
        scheduler = make_scheduler(qstack, qstack_table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Push", ("c",)))
        scheduler.request(t2, "qs", Invocation("Deq"))
        assert scheduler.try_commit(t1)
        assert scheduler.try_commit(t2)  # Deq'd the front: still 'a'
        assert scheduler.object("qs").state() == ("b", "c")

    def test_observers_validate_against_unchanged_state(self, qstack, qstack_table):
        scheduler = make_scheduler(qstack, qstack_table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Size"))
        scheduler.request(t2, "qs", Invocation("Top"))
        assert scheduler.try_commit(t2)
        assert scheduler.try_commit(t1)

    def test_table_skips_validation_for_nd_pairs(self):
        adt = AccountSpec()
        scheduler = ValidationScheduler()
        scheduler.register_object(
            "acct", adt, derive(adt).final_table, initial_state=1
        )
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "acct", Invocation("Deposit", (1,)))
        scheduler.request(t2, "acct", Invocation("Deposit", (2,)))
        assert scheduler.try_commit(t1)
        assert scheduler.try_commit(t2)
        # Deposit/Deposit is unconditionally ND: the second commit is
        # certified by the table, not re-executed.
        assert scheduler.stats.validations_skipped_by_table >= 1
        assert scheduler.object("acct").state() == 4

    def test_no_recent_commits_skips_validation(self, qstack, qstack_table):
        scheduler = make_scheduler(qstack, qstack_table)
        t1 = scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        assert scheduler.try_commit(t1)
        assert scheduler.stats.validations_skipped_by_table == 1


class TestLifecycle:
    def test_abort_discards_everything(self, qstack, qstack_table):
        scheduler = make_scheduler(qstack, qstack_table)
        t1 = scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Push", ("c",)))
        scheduler.abort(t1)
        assert scheduler.status(t1) == "aborted"
        assert scheduler.object("qs").state() == ("a", "b")

    def test_terminal_transactions_rejected(self, qstack, qstack_table):
        scheduler = make_scheduler(qstack, qstack_table)
        t1 = scheduler.begin()
        scheduler.try_commit(t1)
        with pytest.raises(TransactionStateError):
            scheduler.request(t1, "qs", Invocation("Top"))

    def test_unknown_object_rejected(self, qstack, qstack_table):
        scheduler = make_scheduler(qstack, qstack_table)
        t1 = scheduler.begin()
        with pytest.raises(SchedulerError):
            scheduler.request(t1, "nope", Invocation("Top"))

    def test_duplicate_registration_rejected(self, qstack, qstack_table):
        scheduler = make_scheduler(qstack, qstack_table)
        with pytest.raises(SchedulerError):
            scheduler.register_object("qs", qstack, qstack_table)


class TestSerializability:
    def test_committed_serial_in_commit_order(self, qstack, qstack_table):
        """Every committed transaction's observations replay in commit order
        — the structural guarantee of commit-time application."""
        import random

        rng = random.Random(7)
        scheduler = make_scheduler(qstack, qstack_table, state=("a", "b"))
        invocations = qstack.invocations()
        log: list[tuple[int, Invocation, object]] = []
        active: dict[int, list] = {}
        for step in range(60):
            if active and rng.random() < 0.4:
                txn = rng.choice(list(active))
                if scheduler.try_commit(txn):
                    log.extend(active[txn])
                del active[txn]
            else:
                txn = scheduler.begin()
                ops = []
                for _ in range(rng.randint(1, 3)):
                    invocation = rng.choice(invocations)
                    returned = scheduler.request(txn, "qs", invocation)
                    ops.append((txn, invocation, returned))
                active[txn] = ops
        for txn in list(active):
            if scheduler.try_commit(txn):
                log.extend(active[txn])
        # Replay the committed log serially from the initial state.
        from repro.spec.adt import execute_invocation

        state = ("a", "b")
        for _, invocation, returned in log:
            execution = execute_invocation(qstack, state, invocation)
            assert execution.returned == returned
            state = execution.post_state
        assert state == scheduler.object("qs").state()

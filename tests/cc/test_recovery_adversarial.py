"""Adversarial recovery-discipline tests: cascades and cache pressure.

The intentions-list and undo-log disciplines are exercised under the
conditions that break naive implementations — validation races, chained
undo invalidation peeled one link per round, and a deliberately tiny
execution cache that evicts on nearly every memoization attempt
mid-validation.
"""

import pytest

from repro.adts.account import AccountSpec
from repro.cc.objects import SharedObject
from repro.cc.recovery import IntentionsList, UndoLog
from repro.graph.instrument import EdgeAttribution
from repro.perf.cache import execution_cache
from repro.spec.adt import execute_invocation, execute_uncached
from repro.spec.operation import Invocation
from repro.spec.returnvalue import nok, ok

DEPOSIT = Invocation("Deposit", (1,))
WITHDRAW = Invocation("Withdraw", (1,))


def account_object(max_balance=100):
    return SharedObject("obj", AccountSpec(max_balance=max_balance))


def chain(undo, depth):
    """txn 0 deposits one unit; each later txn withdraws and redeposits it."""
    undo.execute(0, DEPOSIT)
    for txn in range(1, depth + 1):
        assert undo.execute(txn, WITHDRAW) == ok()
        undo.execute(txn, DEPOSIT)
    return list(range(1, depth + 1))


class TestIntentionsAdversarial:
    def test_validation_catches_a_racing_commit(self):
        shared = account_object()
        intentions = IntentionsList(shared)
        # txn 1 provisionally withdraws the unit txn 0 committed.
        assert intentions.execute(0, DEPOSIT) == ok()
        assert intentions.commit(0)
        assert intentions.execute(1, WITHDRAW) == ok()
        # A third party drains the account in place before txn 1 commits.
        shared.execute(9, WITHDRAW)
        assert not intentions.validate(1)
        assert not intentions.commit(1)
        # Failed commits discard nothing: the caller chooses retry/abort.
        assert intentions.pending(1) == [WITHDRAW]
        intentions.abort(1)
        assert intentions.pending(1) == []

    def test_own_intentions_stay_invisible_to_others(self):
        intentions = IntentionsList(account_object())
        assert intentions.execute(0, DEPOSIT) == ok()
        # txn 1 must not see txn 0's uncommitted deposit.
        assert intentions.execute(1, WITHDRAW) == nok()
        assert intentions.execute(0, WITHDRAW) == ok()

    def test_aborted_intentions_never_reach_the_object(self):
        shared = account_object()
        intentions = IntentionsList(shared)
        for _ in range(5):
            intentions.execute(0, DEPOSIT)
        intentions.abort(0)
        assert shared.state() == 0
        assert intentions.commit(0)  # nothing left to validate or apply


class TestUndoCascades:
    def test_undo_invalidates_one_link_per_round(self):
        shared = account_object()
        undo = UndoLog(shared)
        chain(undo, depth=6)
        # The invalidated survivor's operations stay in the log until it
        # is itself undone, so the chain peels strictly one link at a
        # time — the shape that made the scheduler's old recursive
        # cascade O(depth) frames deep.
        assert undo.undo(0) == {1}

    def test_iterated_undo_converges_and_restores_state(self):
        shared = account_object()
        undo = UndoLog(shared)
        depth = 10
        chain(undo, depth=depth)
        invalidated = undo.undo(0)
        rounds = 0
        while invalidated:
            assert len(invalidated) == 1
            invalidated = undo.undo_many(invalidated)
            rounds += 1
        assert rounds == depth
        assert shared.state() == 0
        assert shared.log() == []

    def test_undo_of_independent_txns_invalidates_nothing(self):
        shared = account_object()
        undo = UndoLog(shared)
        undo.execute(0, DEPOSIT)
        undo.execute(1, DEPOSIT)
        undo.execute(2, DEPOSIT)
        assert undo.undo(1) == set()
        assert shared.state() == 2


class TestCacheEvictionPressure:
    def test_intentions_validate_correctly_under_a_tiny_cache(self):
        def run(maxsize):
            with execution_cache(maxsize=maxsize) as cache:
                shared = account_object()
                intentions = IntentionsList(shared)
                for txn in range(6):
                    intentions.execute(txn, DEPOSIT)
                    intentions.execute(txn, WITHDRAW)
                    intentions.execute(txn, DEPOSIT)
                committed = [intentions.commit(txn) for txn in range(6)]
                return committed, shared.state(), cache.evictions

        tiny_committed, tiny_state, tiny_evictions = run(2)
        roomy_committed, roomy_state, _ = run(4096)
        # The growing committed state makes every validation replay hit
        # fresh (state, invocation) keys: a 2-entry cache must thrash.
        assert tiny_evictions > 0
        assert tiny_committed == roomy_committed == [True] * 6
        assert tiny_state == roomy_state == 6

    def test_chaos_eviction_mid_validation_never_changes_results(self):
        with execution_cache(maxsize=64) as cache:
            shared = account_object()
            intentions = IntentionsList(shared)
            outcomes = []
            for txn in range(8):
                intentions.execute(txn, DEPOSIT)
                intentions.execute(txn, WITHDRAW)
                evicted = cache.chaos_evict(count=3)
                assert evicted >= 0
                outcomes.append(intentions.commit(txn))
            assert outcomes == [True] * 8
            assert shared.state() == 0

    def test_chaos_corruption_is_cache_confined_and_detectable(self):
        adt = AccountSpec(max_balance=100)
        with execution_cache(maxsize=64) as cache:
            honest = execute_invocation(adt, 0, DEPOSIT)
            assert honest.post_state == 1
            assert cache.chaos_corrupt()
            # The poisoned entry now serves a stale post-state...
            poisoned = execute_invocation(adt, 0, DEPOSIT)
            assert poisoned.post_state == 0
            # ...but the uncached path — the one every recovery replay
            # and invariant audit uses — is untouched by construction.
            fresh = execute_uncached(adt, 0, DEPOSIT, EdgeAttribution.BOTH)
            assert fresh.post_state == 1
        # Outside the context the poisoned cache is uninstalled: the
        # default path tells the truth again.
        assert execute_invocation(adt, 0, DEPOSIT).post_state == 1

"""Tests for the simulator's involuntary-abort restart machinery."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.cc.simulator import SimulationConfig, simulate, simulate_with_scheduler
from repro.cc.workload import Step, TransactionProgram, Workload, WorkloadConfig, generate
from repro.core.methodology import derive
from repro.experiments import golden
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def adt():
    return QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)


@pytest.fixture(scope="module")
def table(adt):
    return derive(adt).final_table


def contended_workload(adt, seed=21):
    """A workload hot enough to produce involuntary aborts optimistically."""
    return generate(
        adt,
        "shared",
        WorkloadConfig(
            transactions=10,
            operations_per_transaction=3,
            mean_interarrival=0.1,
            operation_mix={"Pop": 2, "Push": 2, "Deq": 1},
            seed=seed,
        ),
    )


class TestRestarts:
    def test_restarts_recover_committed_work(self, adt, table):
        workload = contended_workload(adt)
        plain = simulate(
            SimulationConfig(adt=adt, table=table, workload=workload)
        )
        retried = simulate(
            SimulationConfig(
                adt=adt, table=table, workload=workload, restart_aborted=True
            )
        )
        assert plain.aborted > 0  # premise: the workload really conflicts
        assert retried.restarts > 0
        assert retried.committed >= plain.committed

    def test_restarted_runs_stay_serializable(self, adt, table):
        from repro.cc.serializability import is_serializable

        workload = contended_workload(adt, seed=5)
        _, scheduler = simulate_with_scheduler(
            SimulationConfig(
                adt=adt, table=table, workload=workload, restart_aborted=True
            )
        )
        assert is_serializable(scheduler)

    def test_voluntary_aborts_never_restart(self, adt, table):
        workload = Workload(
            programs=(
                TransactionProgram(
                    arrival=0.0,
                    steps=(
                        Step("shared", Invocation("Push", ("a",)), 1.0),
                    ),
                    voluntary_abort=True,
                ),
            )
        )
        metrics = simulate(
            SimulationConfig(
                adt=adt, table=table, workload=workload, restart_aborted=True
            )
        )
        assert metrics.aborted == 1
        assert metrics.restarts == 0

    def test_max_restarts_caps_retries(self, adt, table):
        workload = contended_workload(adt, seed=9)
        capped = simulate(
            SimulationConfig(
                adt=adt,
                table=table,
                workload=workload,
                restart_aborted=True,
                max_restarts=1,
            )
        )
        roomy = simulate(
            SimulationConfig(
                adt=adt,
                table=table,
                workload=workload,
                restart_aborted=True,
                max_restarts=20,
            )
        )
        assert capped.restarts <= 10  # at most one per program
        assert roomy.restarts >= capped.restarts

    def test_all_programs_accounted_with_restarts(self, adt, table):
        workload = contended_workload(adt, seed=13)
        metrics = simulate(
            SimulationConfig(
                adt=adt, table=table, workload=workload, restart_aborted=True
            )
        )
        assert metrics.committed + metrics.aborted == len(workload.programs)

"""Unit and cross-validation tests for the conflict-graph checker."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.cc.conflict_graph import (
    conflict_edges,
    is_conflict_serializable,
    serialization_graph_order,
)
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.serializability import is_serializable
from repro.core.methodology import derive
from repro.experiments import golden
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def table():
    adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    return derive(adt).final_table


def make_scheduler(table, state=("a", "b")):
    scheduler = TableDrivenScheduler()
    scheduler.register_object(
        "qs",
        QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS),
        table,
        initial_state=state,
    )
    return scheduler


class TestConflictEdges:
    def test_conflicting_pops_create_an_edge(self, table):
        scheduler = make_scheduler(table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        scheduler.request(t2, "qs", Invocation("Pop"))
        scheduler.try_commit(t1)
        scheduler.try_commit(t2)
        assert (t1, t2) in conflict_edges(scheduler)

    def test_commuting_observers_create_no_edges(self, table):
        scheduler = make_scheduler(table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Top"))
        scheduler.request(t2, "qs", Invocation("Size"))
        scheduler.try_commit(t1)
        scheduler.try_commit(t2)
        assert conflict_edges(scheduler) == set()

    def test_aborted_transactions_excluded(self, table):
        scheduler = make_scheduler(table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        scheduler.request(t2, "qs", Invocation("Top"))
        scheduler.try_commit(t2)
        scheduler.abort(t1)
        assert all(t1 not in edge for edge in conflict_edges(scheduler))


class TestSerializationOrder:
    def test_topological_order_respects_edges(self, table):
        scheduler = make_scheduler(table, state=("a", "b", "a"))
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        scheduler.request(t2, "qs", Invocation("Pop"))
        scheduler.try_commit(t1)
        scheduler.try_commit(t2)
        order = serialization_graph_order(scheduler)
        assert order is not None
        assert order.index(t1) < order.index(t2)

    def test_acyclic_graph_implies_replay_witness(self, table):
        """Cross-validation: conflict serializability implies the replay
        checker finds a witness, across a seeded sweep."""
        from repro.cc.simulator import SimulationConfig, simulate_with_scheduler
        from repro.cc.workload import WorkloadConfig, generate

        adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
        for seed in range(10):
            workload = generate(
                adt,
                "shared",
                WorkloadConfig(
                    transactions=5, operations_per_transaction=3, seed=seed
                ),
            )
            _, scheduler = simulate_with_scheduler(
                SimulationConfig(adt=adt, table=table, workload=workload)
            )
            if is_conflict_serializable(scheduler):
                assert is_serializable(scheduler), seed

    def test_conditional_scheduling_can_exceed_conflict_serializability(
        self, table
    ):
        """A run that is replay-serializable but conflict-cyclic: the
        condition-refined table allowed state-specific commutation the
        context-free conflict relation cannot see."""
        scheduler = make_scheduler(table, state=("a", "b"))
        t1, t2 = scheduler.begin(), scheduler.begin()
        # Push at the back and Deq at the front commute *here* (size 2),
        # but not in every state — the conflict relation calls it a
        # conflict in both directions once each transaction does both.
        scheduler.request(t1, "qs", Invocation("Push", ("a",)))
        scheduler.request(t2, "qs", Invocation("Deq"))
        scheduler.request(t2, "qs", Invocation("Deq"))
        scheduler.request(t1, "qs", Invocation("Deq"))
        for txn in (t1, t2):
            if scheduler.transaction(txn).is_active:
                scheduler.try_commit(txn)
        # Whatever committed must still replay-serializable.
        assert is_serializable(scheduler)

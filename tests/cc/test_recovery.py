"""Unit tests for the recovery disciplines."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.cc.objects import SharedObject
from repro.cc.recovery import IntentionsList, UndoLog
from repro.spec.operation import Invocation


@pytest.fixture
def shared() -> SharedObject:
    return SharedObject("qs", QStackSpec(), initial_state=("a",))


class TestIntentionsList:
    def test_intentions_invisible_until_commit(self, shared):
        intentions = IntentionsList(shared)
        intentions.execute(0, Invocation("Push", ("b",)))
        assert shared.state() == ("a",)  # nothing applied yet

    def test_own_intentions_visible_to_self(self, shared):
        intentions = IntentionsList(shared)
        intentions.execute(0, Invocation("Push", ("b",)))
        returned = intentions.execute(0, Invocation("Top"))
        assert returned.result == "b"

    def test_other_transactions_do_not_see_intentions(self, shared):
        intentions = IntentionsList(shared)
        intentions.execute(0, Invocation("Push", ("b",)))
        returned = intentions.execute(1, Invocation("Top"))
        assert returned.result == "a"

    def test_commit_applies_buffered_operations(self, shared):
        intentions = IntentionsList(shared)
        intentions.execute(0, Invocation("Push", ("b",)))
        assert intentions.commit(0)
        assert shared.state() == ("a", "b")
        assert intentions.pending(0) == []

    def test_commit_validation_fails_on_conflict(self, shared):
        intentions = IntentionsList(shared)
        intentions.execute(0, Invocation("Pop"))  # predicted 'a'
        # Another transaction commits a Push under it first.
        intentions.execute(1, Invocation("Push", ("b",)))
        assert intentions.commit(1)
        # txn 0's predicted Pop return ('a') is now stale ('b' is on top).
        assert not intentions.commit(0)
        assert shared.state() == ("a", "b")  # nothing of txn 0 applied

    def test_abort_discards(self, shared):
        intentions = IntentionsList(shared)
        intentions.execute(0, Invocation("Push", ("b",)))
        intentions.abort(0)
        assert intentions.pending(0) == []
        assert intentions.commit(0)  # trivially valid: nothing buffered
        assert shared.state() == ("a",)

    def test_validate_without_commit(self, shared):
        intentions = IntentionsList(shared)
        intentions.execute(0, Invocation("Top"))
        assert intentions.validate(0)


class TestUndoLog:
    def test_execute_in_place(self, shared):
        undo = UndoLog(shared)
        returned = undo.execute(0, Invocation("Push", ("b",)))
        assert returned.outcome == "ok"
        assert shared.state() == ("a", "b")

    def test_undo_restores(self, shared):
        undo = UndoLog(shared)
        undo.execute(0, Invocation("Push", ("b",)))
        invalidated = undo.undo(0)
        assert invalidated == set()
        assert shared.state() == ("a",)

    def test_undo_reports_invalidated_readers(self, shared):
        undo = UndoLog(shared)
        undo.execute(0, Invocation("Push", ("b",)))
        undo.execute(1, Invocation("Pop"))  # observes txn 0's element
        assert undo.undo(0) == {1}

    def test_undo_many(self, shared):
        undo = UndoLog(shared)
        undo.execute(0, Invocation("Push", ("b",)))
        undo.execute(1, Invocation("Push", ("a",)))
        assert undo.undo_many({0, 1}) == set()
        assert shared.state() == ("a",)

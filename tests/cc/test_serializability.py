"""Unit tests for the serializability checker."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.serializability import find_serialization, is_serializable, replay_serial
from repro.core.dependency import Dependency
from repro.core.entry import Entry
from repro.core.methodology import derive
from repro.core.table import CompatibilityTable
from repro.experiments import golden
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def table():
    adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    return derive(adt).final_table


def make_scheduler(table, state=("a", "b")):
    scheduler = TableDrivenScheduler()
    scheduler.register_object(
        "qs",
        QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS),
        table,
        initial_state=state,
    )
    return scheduler


class TestReplaySerial:
    def test_commit_order_replays(self, table):
        scheduler = make_scheduler(table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Push", ("a",)))
        scheduler.request(t2, "qs", Invocation("Deq"))
        scheduler.try_commit(t1)
        scheduler.try_commit(t2)
        assert replay_serial(scheduler, [t1, t2])
        assert replay_serial(scheduler, [t2, t1])  # they commuted

    def test_wrong_order_detected(self, table):
        scheduler = make_scheduler(table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))  # 'b'
        scheduler.request(t2, "qs", Invocation("Pop"))  # 'a'
        scheduler.try_commit(t1)
        scheduler.try_commit(t2)
        assert replay_serial(scheduler, [t1, t2])
        assert not replay_serial(scheduler, [t2, t1])

    def test_empty_commit_set(self, table):
        scheduler = make_scheduler(table)
        assert find_serialization(scheduler) == []


class TestFindSerialization:
    def test_dependency_order_preferred(self, table):
        scheduler = make_scheduler(table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        scheduler.request(t2, "qs", Invocation("Pop"))
        scheduler.try_commit(t1)
        scheduler.try_commit(t2)
        assert find_serialization(scheduler) == [t1, t2]
        assert is_serializable(scheduler)

    def test_aborted_transactions_excluded(self, table):
        scheduler = make_scheduler(table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Push", ("a",)))
        scheduler.request(t2, "qs", Invocation("Deq"))
        scheduler.try_commit(t2)
        scheduler.abort(t1)
        order = find_serialization(scheduler)
        assert order == [t2]

    def test_unserializable_record_set_detected(self, table):
        # Fabricate the committed record set of a non-serializable
        # interleaving directly (the scheduler's runtime certification
        # refuses to produce one even under a bogus all-ND table, which
        # the next test verifies): t1 saw size 2 yet popped second.
        from repro.cc.transaction import OperationRecord, TransactionStatus
        from repro.spec.returnvalue import result_only

        scheduler = make_scheduler(table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        records = [
            (t1, Invocation("Size"), result_only(2), 1),
            (t2, Invocation("Pop"), result_only("b"), 2),
            (t1, Invocation("Pop"), result_only("a"), 3),
            (t2, Invocation("Size"), result_only(0), 4),
        ]
        for txn, invocation, returned, sequence in records:
            scheduler.transaction(txn).records.append(
                OperationRecord("qs", invocation, returned, sequence)
            )
        # Drive the live object to the matching final state.
        shared = scheduler.object("qs")
        shared.execute(t2, Invocation("Pop"))
        shared.execute(t1, Invocation("Pop"))
        scheduler.transaction(t1).status = TransactionStatus.COMMITTED
        scheduler.transaction(t2).status = TransactionStatus.COMMITTED
        assert not is_serializable(scheduler)

    def test_certification_defeats_bogus_table(self):
        # Even under an all-ND table, the shadow-return certification
        # escalates the pairs through which information actually flowed,
        # so the non-serializable interleaving cannot commit unnoticed.
        # (Unconditional ND cells skip only the locality escalation; the
        # shadow test always runs.)
        adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
        bogus = CompatibilityTable(adt.operation_names())
        for invoked in adt.operation_names():
            for executing in adt.operation_names():
                bogus.set_entry(
                    invoked, executing, Entry.unconditional(Dependency.ND)
                )
        scheduler = make_scheduler(bogus, state=("a", "b"))
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Size"))  # 2
        scheduler.request(t2, "qs", Invocation("Pop"))  # 'b'
        # t1's Pop observes t2's Pop (it gets 'a' instead of 'b'):
        # the shadow test records the AD despite the bogus table.
        decision = scheduler.request(t1, "qs", Invocation("Pop"))
        if not decision.aborted:
            assert (t2, Dependency.AD) in decision.dependencies
        # t2's Size would observe t1's Pop symmetrically -> cycle -> the
        # requester aborts rather than completing the bad interleaving.
        if scheduler.transaction(t2).is_active:
            final = scheduler.request(t2, "qs", Invocation("Size"))
            assert final.aborted or final.dependencies
        for txn in (t1, t2):
            if scheduler.transaction(txn).is_active:
                scheduler.try_commit(txn)
        for txn in (t1, t2):
            if scheduler.transaction(txn).is_active:
                scheduler.try_commit(txn)
        assert is_serializable(scheduler)

"""Unit tests for the discrete-event simulator."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.cc.simulator import SimulationConfig, simulate, simulate_with_scheduler
from repro.cc.workload import (
    Step,
    TransactionProgram,
    Workload,
    WorkloadConfig,
    generate,
)
from repro.core.dependency import Dependency
from repro.core.entry import Entry
from repro.core.methodology import derive
from repro.core.table import CompatibilityTable
from repro.experiments import golden
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def adt() -> QStackSpec:
    return QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)


@pytest.fixture(scope="module")
def table(adt):
    return derive(adt).final_table


def scripted(*programs) -> Workload:
    return Workload(programs=tuple(programs))


def step(operation, *args, at="shared", service=1.0):
    return Step(
        object_name=at, invocation=Invocation(operation, args), service_time=service
    )


class TestBasicRuns:
    def test_single_transaction_commits(self, adt, table):
        workload = scripted(
            TransactionProgram(arrival=0.0, steps=(step("Push", "a"),))
        )
        metrics = simulate(SimulationConfig(adt=adt, table=table, workload=workload))
        assert metrics.committed == 1
        assert metrics.aborted == 0
        assert metrics.makespan == pytest.approx(1.0)

    def test_voluntary_abort_counts(self, adt, table):
        workload = scripted(
            TransactionProgram(
                arrival=0.0, steps=(step("Push", "a"),), voluntary_abort=True
            )
        )
        metrics, scheduler = simulate_with_scheduler(
            SimulationConfig(adt=adt, table=table, workload=workload)
        )
        assert metrics.aborted == 1
        assert scheduler.object("shared").state() == ()  # rolled back

    def test_all_transactions_accounted(self, adt, table):
        workload = generate(adt, "shared", WorkloadConfig(transactions=10, seed=5))
        metrics = simulate(SimulationConfig(adt=adt, table=table, workload=workload))
        assert metrics.committed + metrics.aborted == 10

    def test_deterministic_metrics(self, adt, table):
        workload = generate(adt, "shared", WorkloadConfig(transactions=8, seed=11))
        config = SimulationConfig(adt=adt, table=table, workload=workload)
        first, second = simulate(config), simulate(config)
        assert first.makespan == second.makespan
        assert first.committed == second.committed


class TestConflictEffects:
    def test_all_ad_table_serialises_under_blocking(self, adt):
        all_ad = CompatibilityTable(adt.operation_names())
        for invoked in adt.operation_names():
            for executing in adt.operation_names():
                all_ad.set_entry(
                    invoked, executing, Entry.unconditional(Dependency.AD)
                )
        programs = [
            TransactionProgram(arrival=0.0, steps=(step("Top"), step("Top")))
            for _ in range(3)
        ]
        metrics = simulate(
            SimulationConfig(
                adt=adt,
                table=all_ad,
                workload=scripted(*programs),
                policy="blocking",
                initial_state=("a",),
            )
        )
        # With everything conflicting, the three 2-op transactions run
        # strictly one after another: makespan = 6 service units.
        assert metrics.makespan == pytest.approx(6.0)
        assert metrics.total_blocked_time > 0

    def test_all_nd_table_runs_fully_parallel(self, adt):
        all_nd = CompatibilityTable(adt.operation_names())
        for invoked in adt.operation_names():
            for executing in adt.operation_names():
                all_nd.set_entry(
                    invoked, executing, Entry.unconditional(Dependency.ND)
                )
        programs = [
            TransactionProgram(arrival=0.0, steps=(step("Top"), step("Top")))
            for _ in range(3)
        ]
        metrics = simulate(
            SimulationConfig(
                adt=adt,
                table=all_nd,
                workload=scripted(*programs),
                policy="blocking",
                initial_state=("a",),
            )
        )
        assert metrics.makespan == pytest.approx(2.0)
        assert metrics.effective_concurrency == pytest.approx(3.0)

    def test_metrics_summary_renders(self, adt, table):
        workload = generate(adt, "shared", WorkloadConfig(transactions=4, seed=2))
        metrics = simulate(SimulationConfig(adt=adt, table=table, workload=workload))
        summary = metrics.summary()
        assert "makespan=" in summary and "committed=" in summary


class TestPolicies:
    @pytest.mark.parametrize("policy", ["optimistic", "blocking"])
    def test_both_policies_complete(self, adt, table, policy):
        workload = generate(
            adt,
            "shared",
            WorkloadConfig(transactions=8, abort_probability=0.25, seed=9),
        )
        metrics = simulate(
            SimulationConfig(
                adt=adt, table=table, workload=workload, policy=policy
            )
        )
        assert metrics.committed + metrics.aborted == 8


class TestEdgeCases:
    def test_empty_workload(self, adt, table):
        from repro.cc.workload import Workload

        metrics = simulate(
            SimulationConfig(
                adt=adt, table=table, workload=Workload(programs=())
            )
        )
        assert metrics.committed == 0 and metrics.aborted == 0
        assert metrics.makespan == 0.0

    def test_max_events_guard_trips(self, adt, table):
        import pytest as _pytest

        from repro.errors import SchedulerError

        workload = generate(adt, "shared", WorkloadConfig(transactions=4, seed=1))
        with _pytest.raises(SchedulerError, match="exceeded"):
            simulate(
                SimulationConfig(
                    adt=adt, table=table, workload=workload, max_events=2
                )
            )

    def test_initial_state_respected(self, adt, table):
        workload = scripted(
            TransactionProgram(arrival=0.0, steps=(step("Size"),))
        )
        _, scheduler = simulate_with_scheduler(
            SimulationConfig(
                adt=adt,
                table=table,
                workload=workload,
                initial_state=("a", "b", "a"),
            )
        )
        record = scheduler.transaction(0).records[0]
        assert record.returned.result == 3

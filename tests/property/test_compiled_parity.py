"""Parity: the compiled scheduler is bit-identical to the reference path.

PR 3 pinned the optimized :class:`~repro.cc.scheduler.TableDrivenScheduler`
to the frozen seed behaviour; this suite pins the **compiled** hot path
(integer conflict matrices, incremental peer index, codegen executors,
shadow transition memo — :mod:`repro.perf.codegen`) to the pure-Python
structures it replaces.  Identical seeded workloads are driven through
``compiled=True`` and ``compiled=False`` schedulers and the transcripts
must be equal: every ``OpDecision`` and ``CommitDecision`` in issue
order, the recorded dependency edges, final per-transaction statuses,
the final object state, and the seed-comparable ``SchedulerStats``
counters (including ``condition_evaluations`` — the compiled path must
account exactly the work the bitmask fast path displaces).

Coverage mirrors the PR 3 suite: every builtin ADT x both policies x 20
seeded workloads (voluntary aborts and varying concurrency included, so
cascades, peer-index invalidation, blocking previews and deadlock
victims all appear in the stream).
"""

from __future__ import annotations

import pytest

from repro.adts.registry import builtin_names, make_adt
from repro.cc.harness import drive
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive

SEEDS = range(20)

_TABLES = {}


def _table(adt):
    if adt.name not in _TABLES:
        _TABLES[adt.name] = derive(adt).final_table
    return _TABLES[adt.name]


def _workload(adt, seed: int):
    # Same shape spread as the PR 3 parity suite: small/large transaction
    # counts, clean and abort-heavy mixes, full and limited concurrency.
    config = WorkloadConfig(
        transactions=4 + (seed % 3) * 2,
        operations_per_transaction=3 + seed % 3,
        abort_probability=(0.0, 0.2, 0.35)[seed % 3],
        seed=seed,
    )
    return generate(adt, "obj", config), (None, 3)[seed % 2]


@pytest.mark.parametrize("adt_name", builtin_names())
@pytest.mark.parametrize("policy", ["optimistic", "blocking"])
def test_compiled_transcripts_identical(adt_name, policy):
    adt = make_adt(adt_name)
    table = _table(adt)
    for seed in SEEDS:
        workload, concurrency = _workload(adt, seed)
        compiled = drive(
            TableDrivenScheduler(policy=policy, compiled=True),
            make_adt(adt_name),
            table,
            workload,
            concurrency=concurrency,
        )
        reference = drive(
            TableDrivenScheduler(policy=policy, compiled=False),
            make_adt(adt_name),
            table,
            workload,
            concurrency=concurrency,
        )
        assert compiled == reference, (
            f"compiled transcript diverged: {adt_name}/{policy}/seed={seed}"
        )


def test_compiled_paths_actually_engage():
    """The parity above must not be vacuous: on a contended commutative
    workload the compiled scheduler settles peers through the bitmask
    fast path and serves shadow transitions from the codegen memo."""
    adt = make_adt("Account")
    table = _table(adt)
    workload = generate(
        adt,
        "obj",
        WorkloadConfig(
            transactions=8,
            operations_per_transaction=6,
            operation_mix={"Deposit": 1.0},
            seed=5,
        ),
    )
    scheduler = TableDrivenScheduler(policy="optimistic", compiled=True)
    drive(scheduler, adt, table, workload)
    assert scheduler.compiled
    assert scheduler.stats.nd_fast_path_hits > 0
    assert scheduler.stats.compiled_memo_hits > 0
    assert scheduler.stats.shadow_replays_avoided > 0


def test_compiled_memo_stays_dark_on_the_reference_path():
    """``compiled_memo_hits`` is a compiled-only counter: the reference
    structures must never touch the transition memo."""
    adt = make_adt("Account")
    table = _table(adt)
    workload = generate(
        adt,
        "obj",
        WorkloadConfig(
            transactions=6,
            operations_per_transaction=5,
            operation_mix={"Deposit": 1.0},
            seed=7,
        ),
    )
    scheduler = TableDrivenScheduler(policy="optimistic", compiled=False)
    drive(scheduler, adt, table, workload)
    assert scheduler.stats.compiled_memo_hits == 0


def test_rebuild_fast_paths_preserves_compiled_parity():
    """The quarantine rung recompiles matrices and resets the peer index;
    decisions after a rebuild must match an untouched reference run."""
    adt_name = "QStack"
    adt = make_adt(adt_name)
    table = _table(adt)
    workload, concurrency = _workload(adt, 4)

    def checkpoint(index, scheduler):
        if index == 7 and hasattr(scheduler, "rebuild_fast_paths"):
            scheduler.rebuild_fast_paths()
        return None

    rebuilt = drive(
        TableDrivenScheduler(policy="optimistic", compiled=True),
        make_adt(adt_name),
        table,
        workload,
        concurrency=concurrency,
        checkpoint=checkpoint,
    )
    reference = drive(
        TableDrivenScheduler(policy="optimistic", compiled=False),
        make_adt(adt_name),
        table,
        workload,
        concurrency=concurrency,
    )
    assert rebuilt == reference

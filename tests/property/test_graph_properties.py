"""Stateful property tests: object-graph invariants under random mutation.

A hypothesis state machine drives an :class:`ObjectGraph` through random
insertions, deletions, edge changes and reference retargetings, checking
the Def.-8 structural invariants after every step.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.graph.object_graph import ObjectGraph


class GraphMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.graph = ObjectGraph("fuzzed")
        self.ever_issued: set[int] = set()

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @rule(value=st.integers(min_value=0, max_value=9))
    def add_vertex(self, value):
        vid = self.graph.add_vertex(value)
        assert vid not in self.ever_issued, "vertex id reused"
        self.ever_issued.add(vid)

    @precondition(lambda self: len(self.graph) >= 1)
    @rule(data=st.data())
    def remove_vertex(self, data):
        vid = data.draw(st.sampled_from(sorted(self.graph.vertex_ids())))
        self.graph.remove_vertex(vid)

    @precondition(lambda self: len(self.graph) >= 2)
    @rule(data=st.data())
    def add_ordering_edge(self, data):
        vids = sorted(self.graph.vertex_ids())
        source = data.draw(st.sampled_from(vids))
        target = data.draw(st.sampled_from([v for v in vids if v != source]))
        self.graph.add_ordering_edge(source, target)

    @precondition(lambda self: bool(self.graph.ordering_edges()))
    @rule(data=st.data())
    def remove_ordering_edge(self, data):
        edge = data.draw(
            st.sampled_from(
                sorted(self.graph.ordering_edges(), key=lambda e: e.endpoints())
            )
        )
        self.graph.remove_ordering_edge(edge.source, edge.target)

    @rule(name=st.sampled_from(("r1", "r2")), data=st.data())
    def declare_or_retarget_reference(self, name, data):
        vids = sorted(self.graph.vertex_ids())
        target = data.draw(st.sampled_from([None] + vids)) if vids else None
        self.graph.declare_reference(name, target)

    # ------------------------------------------------------------------
    # Invariants (Def. 8 structure)
    # ------------------------------------------------------------------

    @invariant()
    def composed_of_edges_match_components(self):
        edges = self.graph.composed_of_edges()
        assert {edge.target for edge in edges} == self.graph.vertex_ids()
        assert len(edges) == len(self.graph)

    @invariant()
    def ordering_edges_connect_live_vertices(self):
        vids = self.graph.vertex_ids()
        for edge in self.graph.ordering_edges():
            assert edge.source in vids and edge.target in vids
            assert edge.source != edge.target

    @invariant()
    def references_target_live_vertices(self):
        vids = self.graph.vertex_ids()
        for name in self.graph.reference_names():
            target = self.graph.reference(name)
            assert target is None or target in vids

    @invariant()
    def successors_and_predecessors_agree(self):
        for edge in self.graph.ordering_edges():
            assert edge.target in self.graph.successors(edge.source)
            assert edge.source in self.graph.predecessors(edge.target)

    @invariant()
    def content_round_trips(self):
        for vid in self.graph.vertex_ids():
            assert self.graph.content(vid) == self.graph.vertex(vid).value


TestGraphMachine = GraphMachine.TestCase
TestGraphMachine.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)

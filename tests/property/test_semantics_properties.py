"""Property-based tests on the semantic relations (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adts.qstack import QStackSpec
from repro.core.assertions import assertion2_commute, assertion3_recoverable
from repro.semantics.commutativity import commute_in_state
from repro.semantics.recoverability import recoverable_in_state
from repro.spec.adt import execute_invocation

ADT = QStackSpec(capacity=3, domain=("a", "b"))

invocations = st.sampled_from(ADT.invocations())
states = st.sampled_from(ADT.state_list())


@given(states, invocations, invocations)
@settings(max_examples=250, deadline=None)
def test_commutativity_is_symmetric(state, first, second):
    assert commute_in_state(ADT, state, first, second) == commute_in_state(
        ADT, state, second, first
    )


@given(states, invocations)
@settings(max_examples=150, deadline=None)
def test_every_invocation_commutes_with_itself_or_not_reflexively_consistent(
    state, invocation
):
    # Self-commutation: identical invocations in both orders are literally
    # the same sequence, so the state halves must agree; only the
    # per-transaction returns can differ (e.g. two Pops).
    first = execute_invocation(ADT, state, invocation)
    second = execute_invocation(ADT, first.post_state, invocation)
    if first.returned == second.returned:
        assert commute_in_state(ADT, state, invocation, invocation)


@given(states, invocations, invocations)
@settings(max_examples=250, deadline=None)
def test_commuting_pairs_are_recoverable_both_ways(state, first, second):
    if commute_in_state(ADT, state, first, second):
        assert recoverable_in_state(ADT, state, second, first)
        assert recoverable_in_state(ADT, state, first, second)


@given(states, invocations, invocations)
@settings(max_examples=250, deadline=None)
def test_assertion3_is_implied_by_assertion2(state, first, second):
    # Commutativity (Assertion 2) is stronger than recoverability
    # (Assertion 3) at the locality level.
    trace_x = execute_invocation(ADT, state, first).trace
    trace_y = execute_invocation(ADT, state, second).trace
    if assertion2_commute(trace_x, trace_y):
        assert assertion3_recoverable(trace_x, trace_y)


@given(states, invocations, invocations)
@settings(max_examples=250, deadline=None)
def test_identity_executions_commute(state, first, second):
    first_execution = execute_invocation(ADT, state, first)
    second_execution = execute_invocation(ADT, state, second)
    if first_execution.is_identity and second_execution.is_identity:
        # Two operations that both leave the state unchanged in this state
        # trivially commute here.
        assert commute_in_state(ADT, state, first, second)

"""Property-based tests for the explicitly-referencing ADTs (Set, Directory)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adts.directory import DirectorySpec
from repro.adts.set_adt import SetSpec
from repro.semantics.commutativity import commute_in_state
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation

SET = SetSpec(domain=("a", "b", "c"))
DIRECTORY = DirectorySpec(keys=("k1", "k2"), values=("u", "v"))

set_states = st.sampled_from(SET.state_list())
set_invocations = st.sampled_from(SET.invocations())
dir_states = st.sampled_from(DIRECTORY.state_list())
dir_invocations = st.sampled_from(DIRECTORY.invocations())


@given(set_states, st.lists(set_invocations, max_size=10))
@settings(max_examples=120, deadline=None)
def test_set_agrees_with_python_set(state, program):
    model = set(state)
    current = state
    for invocation in program:
        execution = execute_invocation(SET, current, invocation)
        element = invocation.args[0] if invocation.args else None
        if invocation.operation == "Insert" and execution.returned.outcome == "ok":
            model.add(element)
        elif invocation.operation == "Remove" and execution.returned.outcome == "ok":
            model.discard(element)
        current = execution.post_state
    assert current == frozenset(model)


@given(set_states, set_invocations, set_invocations)
@settings(max_examples=200, deadline=None)
def test_set_operations_on_distinct_elements_commute(state, first, second):
    if not first.args or not second.args:
        return
    if first.args[0] == second.args[0]:
        return
    assert commute_in_state(SET, state, first, second)


@given(dir_states, dir_invocations, dir_invocations)
@settings(max_examples=200, deadline=None)
def test_directory_operations_on_distinct_keys_commute(state, first, second):
    if first.args[0] == second.args[0]:
        return
    assert commute_in_state(DIRECTORY, state, first, second)


@given(dir_states, st.sampled_from(("k1", "k2")), st.sampled_from(("u", "v")))
@settings(max_examples=120, deadline=None)
def test_directory_insert_lookup_round_trip(state, key, value):
    inserted = execute_invocation(
        DIRECTORY, state, Invocation("Insert", (key, value))
    )
    if inserted.returned.outcome != "ok":
        return  # key already present
    found = execute_invocation(
        DIRECTORY, inserted.post_state, Invocation("Lookup", (key,))
    )
    assert found.returned.result == value


@given(dir_states, st.sampled_from(("k1", "k2")))
@settings(max_examples=120, deadline=None)
def test_directory_delete_then_lookup_misses(state, key):
    deleted = execute_invocation(DIRECTORY, state, Invocation("Delete", (key,)))
    if deleted.returned.outcome != "ok":
        return
    missed = execute_invocation(
        DIRECTORY, deleted.post_state, Invocation("Lookup", (key,))
    )
    assert missed.returned.outcome == "nok"

"""Parity: cached/parallel derivations are bit-identical to uncached/sequential.

The central correctness contract of :mod:`repro.perf` — memoization and
the pair-level fan-out are pure plumbing and may never change a single
table cell, condition, or derivation note.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.adts.registry import builtin_names, make_adt
from repro.core.methodology import MethodologyOptions, derive


def assert_same_result(left, right):
    assert left.stage3_table == right.stage3_table
    assert left.stage4_table == right.stage4_table
    assert left.stage5_table == right.stage5_table
    assert left.notes == right.notes
    assert left.profiles == right.profiles


@pytest.mark.parametrize("adt_name", builtin_names())
def test_cache_parity_across_builtin_adts(adt_name):
    adt = make_adt(adt_name)
    cached = derive(adt, options=MethodologyOptions(use_cache=True))
    uncached = derive(adt, options=MethodologyOptions(use_cache=False))
    assert_same_result(cached, uncached)
    assert cached.profile.cache_hits > 0
    assert uncached.profile.cache_hits == 0


options_strategy = st.builds(
    MethodologyOptions,
    outcome_partition=st.sampled_from(("auto", "first", "second", "joint", "none")),
    outcome_feasibility=st.sampled_from(("serial", "any")),
    refine_inputs=st.booleans(),
    refine_localities=st.booleans(),
    validate_conditions=st.booleans(),
    use_cache=st.just(True),
)


@given(options_strategy)
@settings(max_examples=12, deadline=None)
def test_cache_parity_across_option_combinations(options):
    """Every pipeline configuration is cache-invariant, not just the default."""
    adt = QStackSpec(capacity=2, domain=("a",), operations=["Push", "Pop", "Top"])
    cached = derive(adt, options=options)
    uncached = derive(
        adt,
        options=MethodologyOptions(
            **{
                **options.__dict__,
                "use_cache": False,
            }
        ),
    )
    assert_same_result(cached, uncached)


def test_parallel_parity_small_adt():
    adt = AccountSpec(max_balance=2, amounts=(1,))
    sequential = derive(adt, options=MethodologyOptions(jobs=1))
    parallel = derive(adt, options=MethodologyOptions(jobs=2))
    assert_same_result(sequential, parallel)
    assert parallel.profile.parallel_jobs == 2


def test_parallel_parity_qstack():
    adt = QStackSpec()
    sequential = derive(adt)
    parallel = derive(adt, options=MethodologyOptions(jobs=2))
    assert_same_result(sequential, parallel)


def test_parallel_uncached_parity():
    """jobs>1 with the cache off is still bit-identical."""
    adt = AccountSpec(max_balance=2, amounts=(1,))
    baseline = derive(adt, options=MethodologyOptions(use_cache=False))
    parallel = derive(adt, options=MethodologyOptions(use_cache=False, jobs=2))
    assert_same_result(baseline, parallel)


def test_commutativity_tables_parallel_parity():
    from repro.semantics.commutativity import (
        backward_commutativity_table,
        commutativity_table,
        forward_commutativity_table,
    )

    adt = AccountSpec(max_balance=2, amounts=(1,))
    assert forward_commutativity_table(adt) == forward_commutativity_table(
        adt, jobs=2
    )
    assert backward_commutativity_table(adt) == backward_commutativity_table(
        adt, jobs=2
    )
    assert commutativity_table(adt) == commutativity_table(adt, jobs=2)

"""Property-based tests: QStack invariants under arbitrary operation
sequences (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adts.qstack import QStackSpec
from repro.graph.analysis import is_linear_chain
from repro.graph.instrument import InstrumentedGraph
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation

ADT = QStackSpec(capacity=4, domain=("a", "b"))

invocations = st.sampled_from(ADT.invocations())
programs = st.lists(invocations, max_size=12)
states = st.sampled_from(ADT.state_list())


def apply_program(program, start=()):
    """Run a program on a single live graph, returning graph and model."""
    graph = ADT.build_graph(start)
    model = list(start)
    for invocation in program:
        view = InstrumentedGraph(graph)
        returned = ADT.operation(invocation.operation).execute(
            view, *invocation.args
        )
        _apply_to_model(model, invocation, returned)
    return graph, tuple(model)


def _apply_to_model(model, invocation, returned):
    """Reference semantics: a plain Python list, front first."""
    op, args = invocation.operation, invocation.args
    if op == "Push" and returned.outcome == "ok":
        model.append(args[0])
    elif op == "Pop" and returned.outcome != "nok":
        model.pop()
    elif op == "Deq" and returned.outcome != "nok":
        model.pop(0)
    elif op == "Replace":
        model[:] = [args[1] if value == args[0] else value for value in model]
    elif op == "XTop" and returned.outcome == "ok":
        model[-1], model[-2] = model[-2], model[-1]


@given(programs)
@settings(max_examples=150, deadline=None)
def test_graph_agrees_with_reference_model(program):
    graph, model = apply_program(program)
    assert ADT.abstract_state(graph) == model


@given(programs)
@settings(max_examples=150, deadline=None)
def test_graph_shape_invariants(program):
    graph, model = apply_program(program)
    assert is_linear_chain(graph)
    assert len(graph) == len(model) <= ADT.capacity
    front, back = graph.reference("f"), graph.reference("b")
    if model:
        assert graph.vertex(front).value == model[0]
        assert graph.vertex(back).value == model[-1]
    else:
        assert front is None and back is None


@given(states, invocations)
@settings(max_examples=200, deadline=None)
def test_single_execution_totality(state, invocation):
    execution = execute_invocation(ADT, state, invocation)
    # Every operation is total and always produces a return value.
    assert execution.returned.has_outcome or execution.returned.has_result
    # Post-states stay within the bounded space.
    assert len(execution.post_state) <= ADT.capacity


@given(states, st.sampled_from(("a", "b")))
@settings(max_examples=100, deadline=None)
def test_push_then_pop_round_trip(state, element):
    push = execute_invocation(ADT, state, Invocation("Push", (element,)))
    if push.returned.outcome != "ok":
        return
    pop = execute_invocation(ADT, push.post_state, Invocation("Pop"))
    assert pop.returned.result == element
    assert pop.post_state == state


@given(states)
@settings(max_examples=100, deadline=None)
def test_size_equals_length(state):
    execution = execute_invocation(ADT, state, Invocation("Size"))
    assert execution.returned.result == len(state)
    assert execution.is_identity

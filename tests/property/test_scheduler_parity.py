"""Parity: the optimized scheduler is bit-identical to the seed reference.

The hot-path optimizations (incremental shadow states, per-request context
reuse, preview-verdict memoization, flattened tables — see
``docs/PERFORMANCE.md``) must not change a single observable decision.
These tests drive identical seeded workloads through the optimized
:class:`~repro.cc.scheduler.TableDrivenScheduler` and the frozen
:class:`~repro.cc.reference.ReferenceScheduler` and require equal
transcripts: every ``OpDecision`` and ``CommitDecision`` in issue order,
the recorded dependency edges, final per-transaction statuses, the final
object state, and the seed-comparable ``SchedulerStats`` counters.

Coverage: every builtin ADT x both policies x 20 seeded workloads each
(with voluntary aborts and varying concurrency, so cascades, blocking,
deadlock victims and replay invalidation all appear in the stream).
"""

from __future__ import annotations

import pytest

from repro.adts.registry import builtin_names, make_adt
from repro.cc.harness import drive
from repro.cc.reference import ReferenceScheduler
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive

SEEDS = range(20)

_TABLES = {}


def _table(adt):
    if adt.name not in _TABLES:
        _TABLES[adt.name] = derive(adt).final_table
    return _TABLES[adt.name]


def _workload(adt, seed: int):
    # Vary the shape with the seed so the 20 runs are not one scenario
    # repeated: small/large transaction counts, clean and abort-heavy
    # mixes, full and limited concurrency.
    config = WorkloadConfig(
        transactions=4 + (seed % 3) * 2,
        operations_per_transaction=3 + seed % 3,
        abort_probability=(0.0, 0.2, 0.35)[seed % 3],
        seed=seed,
    )
    return generate(adt, "obj", config), (None, 3)[seed % 2]


@pytest.mark.parametrize("adt_name", builtin_names())
@pytest.mark.parametrize("policy", ["optimistic", "blocking"])
def test_transcripts_identical(adt_name, policy):
    adt = make_adt(adt_name)
    table = _table(adt)
    for seed in SEEDS:
        workload, concurrency = _workload(adt, seed)
        reference = drive(
            ReferenceScheduler(policy=policy),
            adt,
            table,
            workload,
            concurrency=concurrency,
        )
        optimized = drive(
            TableDrivenScheduler(policy=policy),
            adt,
            table,
            workload,
            concurrency=concurrency,
        )
        assert optimized == reference, (
            f"{adt_name}/{policy}/seed={seed}: transcripts diverge"
        )


def test_optimizations_actually_engage():
    """The parity above must not be vacuous: on a contended commutative
    workload the optimized scheduler serves shadow queries from the
    index, reuses the per-request graph, and hits the ND fast path."""
    adt = make_adt("Account")
    table = _table(adt)
    workload = generate(
        adt,
        "obj",
        WorkloadConfig(
            transactions=8,
            operations_per_transaction=6,
            operation_mix={"Deposit": 1.0},
            seed=5,
        ),
    )
    scheduler = TableDrivenScheduler(policy="optimistic")
    drive(scheduler, adt, table, workload)
    assert scheduler.stats.shadow_replays_avoided > 0
    assert scheduler.stats.nd_fast_path_hits > 0
    assert scheduler.stats.shadow_full_replays < (
        scheduler.stats.shadow_full_replays
        + scheduler.stats.shadow_replays_avoided
    )
    # Compiled (the default): the shadow transition memo fronts the
    # execution cache, so repeated transitions show up there instead.
    assert scheduler.stats.compiled_memo_hits > 0
    # The pure-Python reference path must still route its repeated
    # transitions through the execution cache.
    reference = TableDrivenScheduler(policy="optimistic", compiled=False)
    drive(reference, make_adt("Account"), table, workload)
    cache = reference.execution_cache.stats()
    assert cache.hits > 0, "scheduler traffic must flow through the cache"


def test_preview_reuse_engages_under_blocking():
    adt = make_adt("Account")
    table = _table(adt)
    workload = generate(
        adt,
        "obj",
        WorkloadConfig(
            transactions=6,
            operations_per_transaction=5,
            operation_mix={"Deposit": 1.0},
            seed=9,
        ),
    )
    scheduler = TableDrivenScheduler(policy="blocking")
    drive(scheduler, adt, table, workload)
    assert scheduler.stats.preview_reuses > 0

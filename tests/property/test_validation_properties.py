"""Property-based tests: the validation scheduler commits only serial logs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adts.qstack import QStackSpec
from repro.cc.validation import ValidationScheduler
from repro.core.methodology import derive
from repro.experiments import golden
from repro.spec.adt import execute_invocation

ADT = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
TABLE = derive(ADT).final_table
INVOCATIONS = ADT.invocations()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    overlap=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_committed_observations_replay_in_commit_order(seed, overlap):
    import random

    rng = random.Random(seed)
    scheduler = ValidationScheduler()
    scheduler.register_object("qs", ADT, TABLE, initial_state=("a", "b"))
    committed_log = []
    active = {}
    for _ in range(24):
        if len(active) >= overlap:
            txn = rng.choice(sorted(active))
            if scheduler.try_commit(txn):
                committed_log.extend(active[txn])
            del active[txn]
        txn = scheduler.begin()
        observations = []
        for _ in range(rng.randint(1, 3)):
            invocation = rng.choice(INVOCATIONS)
            returned = scheduler.request(txn, "qs", invocation)
            observations.append((invocation, returned))
        active[txn] = observations
    for txn in sorted(active):
        if scheduler.try_commit(txn):
            committed_log.extend(active[txn])
    state = ("a", "b")
    for invocation, returned in committed_log:
        execution = execute_invocation(ADT, state, invocation)
        assert execution.returned == returned
        state = execution.post_state
    assert state == scheduler.object("qs").state()

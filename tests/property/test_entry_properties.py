"""Property-based tests on entries, tables and condition evaluation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adts.qstack import QStackSpec
from repro.core.conditions import ConditionContext
from repro.core.dependency import Dependency
from repro.core.methodology import derive
from repro.experiments import golden
from repro.spec.adt import execute_invocation

ADT = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
RESULT = derive(ADT)
TABLE = RESULT.final_table

operations = st.sampled_from(ADT.operation_names())
states = st.sampled_from(ADT.state_list())
invocation_for = {
    name: ADT.invocations_of(name) for name in ADT.operation_names()
}


def build_context(state, first, second):
    first_execution = execute_invocation(ADT, state, first)
    second_execution = execute_invocation(
        ADT, first_execution.post_state, second
    )
    return ConditionContext(
        first_invocation=first,
        second_invocation=second,
        pre_graph=ADT.build_graph(state),
        first_return=first_execution.returned,
        second_return=second_execution.returned,
    )


@given(states, operations, operations, st.randoms())
@settings(max_examples=200, deadline=None)
def test_resolution_within_entry_bounds(state, executing, invoked, rng):
    first = rng.choice(invocation_for[executing])
    second = rng.choice(invocation_for[invoked])
    entry = TABLE.entry(invoked, executing)
    resolved = entry.resolve(build_context(state, first, second))
    assert entry.weakest() <= resolved <= entry.strongest()


@given(states, operations, operations, st.randoms())
@settings(max_examples=200, deadline=None)
def test_stage5_never_resolves_stronger_than_stage4(state, executing, invoked, rng):
    first = rng.choice(invocation_for[executing])
    second = rng.choice(invocation_for[invoked])
    context = build_context(state, first, second)
    stage4 = RESULT.stage4_table.resolve(invoked, executing, context)
    stage5 = RESULT.stage5_table.resolve(invoked, executing, context)
    assert stage5 <= stage4


@given(states, operations, operations, st.randoms())
@settings(max_examples=200, deadline=None)
def test_resolved_nd_implies_commutativity(state, executing, invoked, rng):
    """The headline soundness property of the validated table: whenever a
    cell resolves to ND for a concrete adjacent execution, the two
    invocations commute in that state."""
    from repro.semantics.commutativity import commute_in_state

    first = rng.choice(invocation_for[executing])
    second = rng.choice(invocation_for[invoked])
    context = build_context(state, first, second)
    if TABLE.resolve(invoked, executing, context) is Dependency.ND:
        assert commute_in_state(ADT, state, first, second)

"""Property-based tests: the end-to-end scheduling stack stays sound.

Random workloads over derived tables, both policies, with voluntary
aborts injected — every run must leave the committed transactions
serializable, and the replay recovery must never discover an invalidated
survivor beyond the recorded AD cascades (the scheduler counts those as
aborts too, so the serializability check covers them).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adts.fifo_queue import FifoQueueSpec
from repro.adts.qstack import QStackSpec
from repro.cc.serializability import is_serializable
from repro.cc.simulator import SimulationConfig, simulate_with_scheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.experiments import golden

QSTACK = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
QSTACK_TABLE = derive(QSTACK).final_table
QUEUE = FifoQueueSpec()
QUEUE_TABLE = derive(QUEUE).final_table


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    policy=st.sampled_from(("optimistic", "blocking")),
    abort_probability=st.sampled_from((0.0, 0.3)),
)
@settings(max_examples=40, deadline=None)
def test_qstack_runs_serializable(seed, policy, abort_probability):
    workload = generate(
        QSTACK,
        "shared",
        WorkloadConfig(
            transactions=5,
            operations_per_transaction=3,
            abort_probability=abort_probability,
            seed=seed,
        ),
    )
    metrics, scheduler = simulate_with_scheduler(
        SimulationConfig(
            adt=QSTACK, table=QSTACK_TABLE, workload=workload, policy=policy
        )
    )
    assert metrics.committed + metrics.aborted == 5
    assert is_serializable(scheduler)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_fifo_queue_runs_serializable(seed):
    workload = generate(
        QUEUE,
        "shared",
        WorkloadConfig(transactions=5, operations_per_transaction=3, seed=seed),
    )
    metrics, scheduler = simulate_with_scheduler(
        SimulationConfig(
            adt=QUEUE, table=QUEUE_TABLE, workload=workload, policy="blocking"
        )
    )
    assert metrics.committed + metrics.aborted == 5
    assert is_serializable(scheduler)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_committed_effects_survive_aborts(seed):
    """The final object state equals the serial replay of the committed
    transactions alone — aborted work leaves no residue."""
    workload = generate(
        QSTACK,
        "shared",
        WorkloadConfig(
            transactions=4,
            operations_per_transaction=2,
            abort_probability=0.5,
            seed=seed,
        ),
    )
    _, scheduler = simulate_with_scheduler(
        SimulationConfig(adt=QSTACK, table=QSTACK_TABLE, workload=workload)
    )
    from repro.cc.serializability import find_serialization

    assert find_serialization(scheduler) is not None

"""Property-based tests: composite delegation is exactly component execution."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adts.account import AccountSpec
from repro.adts.composite import CompositeSpec
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation

COMPONENT = AccountSpec(max_balance=2, amounts=(1,))
BANK = CompositeSpec("Bank", {"a": COMPONENT, "b": COMPONENT})

states = st.sampled_from(BANK.state_list())
components = st.sampled_from(("a", "b"))
inner_invocations = st.sampled_from(COMPONENT.invocations())


@given(states, components, inner_invocations)
@settings(max_examples=200, deadline=None)
def test_delegation_matches_component_semantics(state, component, inner):
    """Running ``<component>.<op>`` on the composite equals running the
    component's op on the projected state, leaving siblings untouched."""
    composite_invocation = Invocation(
        f"{component}.{inner.operation}", inner.args
    )
    composite_execution = execute_invocation(BANK, state, composite_invocation)
    projected = BANK.component_state(state, component)
    component_execution = execute_invocation(COMPONENT, projected, inner)
    # Same return value...
    assert composite_execution.returned == component_execution.returned
    # ...same effect on the targeted component...
    assert (
        BANK.component_state(composite_execution.post_state, component)
        == component_execution.post_state
    )
    # ...and no effect on the sibling.
    sibling = "b" if component == "a" else "a"
    assert BANK.component_state(
        composite_execution.post_state, sibling
    ) == BANK.component_state(state, sibling)


@given(states, components, inner_invocations)
@settings(max_examples=200, deadline=None)
def test_delegation_locality_confined_to_one_vertex(state, component, inner):
    """At the parent level, a delegated operation touches exactly the
    component's complex vertex (the multilevel abstraction)."""
    execution = execute_invocation(
        BANK, state, Invocation(f"{component}.{inner.operation}", inner.args)
    )
    assert len(execution.trace.locality) == 1
    assert execution.trace.references_read == {component}


@given(states, inner_invocations, inner_invocations)
@settings(max_examples=200, deadline=None)
def test_cross_component_operations_always_commute(state, first, second):
    from repro.semantics.commutativity import commute_in_state

    assert commute_in_state(
        BANK,
        state,
        Invocation(f"a.{first.operation}", first.args),
        Invocation(f"b.{second.operation}", second.args),
    )

"""Property-based tests: PriorityQueue invariants under random programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adts.priority_queue import PriorityQueueSpec
from repro.graph.analysis import is_linear_chain
from repro.graph.instrument import InstrumentedGraph
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation

ADT = PriorityQueueSpec(capacity=4, domain=(1, 2, 3))

invocations = st.sampled_from(ADT.invocations())
programs = st.lists(invocations, max_size=12)


def apply_program(program):
    graph = ADT.build_graph(())
    model: list[int] = []
    for invocation in program:
        view = InstrumentedGraph(graph)
        returned = ADT.operation(invocation.operation).execute(
            view, *invocation.args
        )
        if invocation.operation == "Insert" and returned.outcome == "ok":
            model.append(invocation.args[0])
            model.sort()
        elif invocation.operation == "ExtractMin" and returned.outcome != "nok":
            model.pop(0)
    return graph, tuple(model)


@given(programs)
@settings(max_examples=150, deadline=None)
def test_graph_agrees_with_sorted_model(program):
    graph, model = apply_program(program)
    assert ADT.abstract_state(graph) == model


@given(programs)
@settings(max_examples=150, deadline=None)
def test_structure_stays_a_sorted_chain(program):
    graph, model = apply_program(program)
    assert is_linear_chain(graph)
    if model:
        assert graph.vertex(graph.reference("min")).value == model[0]
    else:
        assert graph.reference("min") is None


@given(st.sampled_from(ADT.state_list()), st.sampled_from((1, 2, 3)))
@settings(max_examples=120, deadline=None)
def test_insert_then_extract_round_trip(state, element):
    inserted = execute_invocation(ADT, state, Invocation("Insert", (element,)))
    if inserted.returned.outcome != "ok":
        return
    extracted = execute_invocation(ADT, inserted.post_state, Invocation("ExtractMin"))
    expected_min = min(list(state) + [element])
    assert extracted.returned.result == expected_min


@given(st.sampled_from(ADT.state_list()), st.sampled_from((1, 2, 3)),
       st.sampled_from((1, 2, 3)))
@settings(max_examples=120, deadline=None)
def test_successful_inserts_commute(state, first, second):
    from repro.semantics.commutativity import commute_in_state

    if len(state) + 2 > ADT.default_bounds.capacity:
        return  # both succeed only with two free slots
    assert commute_in_state(
        ADT, state, Invocation("Insert", (first,)), Invocation("Insert", (second,))
    )

"""Property: tracing is transparent, and span trees are complete.

The end-to-end observability contract, over every builtin ADT × both
policies × {1, 2} shards × seeded chaos workloads (message duplication
and reordering on):

1. **Transparency** — a run with a :class:`JsonlTracer` attached
   produces a distributed transcript bit-identical to the same run with
   the :class:`NullTracer`: statuses, per-shard final states, audit
   verdict, stats.  Serializing every event must not perturb a single
   scheduling or protocol decision.
2. **Span-tree completeness** — stitching the emitted trace yields no
   orphan and no duplicate spans (duplicated/reordered messages take
   idempotent dedup paths that emit none), and every committed global
   transaction has exactly one root ``txn`` span.
"""

from __future__ import annotations

import io

import pytest

from repro.adts.registry import builtin_names, make_adt
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.dist import Cluster
from repro.obs.spans import build_span_trees
from repro.obs.tracers import NULL_TRACER, JsonlTracer, read_trace
from repro.robust import FaultPlan, FaultSpec

#: Duplication + reorder chaos: the fault mix that attacks span dedup.
CHAOS = FaultSpec(msg_duplicate_rate=0.12, msg_reorder_rate=0.12)
FAULT_SEED = 13

_TABLES = {}


def _table(adt):
    if adt.name not in _TABLES:
        _TABLES[adt.name] = derive(adt).final_table
    return _TABLES[adt.name]


def _run(adt, table, workload, shards, policy, seed, tracer):
    # A fresh FaultPlan per run: plans draw from seeded streams, so
    # rebuilding one is what makes two runs comparable.
    cluster = Cluster(
        adt,
        table,
        shards=shards,
        policy=policy,
        fault_plan=FaultPlan(FAULT_SEED, spec=CHAOS),
        tracer=tracer,
    )
    return cluster.run(workload, seed=seed)


@pytest.mark.parametrize("adt_name", builtin_names())
@pytest.mark.parametrize("policy", ["optimistic", "blocking"])
@pytest.mark.parametrize("shards", [1, 2])
def test_traced_transcript_identical_and_span_tree_complete(
    adt_name, policy, shards
):
    adt = make_adt(adt_name)
    table = _table(adt)
    for seed in (3, 11):
        workload = generate(
            adt,
            "shared",
            WorkloadConfig(
                transactions=5,
                operations_per_transaction=3,
                abort_probability=(0.0, 0.2)[seed % 2],
                seed=seed,
            ),
        )
        untraced = _run(
            adt, table, workload, shards, policy, seed, NULL_TRACER
        )
        buffer = io.StringIO()
        tracer = JsonlTracer(buffer)
        traced = _run(adt, table, workload, shards, policy, seed, tracer)
        tracer.close()

        assert traced == untraced, (adt_name, policy, shards, seed)

        events = read_trace(io.StringIO(buffer.getvalue()))
        forest = build_span_trees(events)
        assert forest.orphans == [], (adt_name, policy, shards, seed)
        assert forest.duplicates == [], (adt_name, policy, shards, seed)
        roots = forest.roots_by_gtxn()
        committed = [
            gtxn for gtxn, status in traced.statuses if status == "COMMITTED"
        ]
        for gtxn in committed:
            gtxn_roots = roots.get(gtxn, [])
            assert len(gtxn_roots) == 1, (adt_name, policy, shards, seed, gtxn)
            assert gtxn_roots[0].event.name == "txn"

"""The ``repro report`` dashboard: deterministic, complete, trace-driven."""

import io

import pytest

from repro.adts.registry import make_adt
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.dist import Cluster
from repro.obs.analysis import render_dashboard
from repro.obs.tracers import JsonlTracer, read_trace
from repro.robust import FaultPlan, FaultSpec

CHAOS = FaultSpec(
    msg_drop_rate=0.02,
    msg_delay_rate=0.05,
    msg_duplicate_rate=0.05,
    msg_reorder_rate=0.05,
)


@pytest.fixture(scope="module")
def fixture():
    adt = make_adt("Account")
    return adt, derive(adt).final_table


def traced_chaos_run(fixture, seed=5):
    adt, table = fixture
    workload = generate(
        adt,
        "shared",
        WorkloadConfig(transactions=10, operations_per_transaction=5, seed=seed),
    )
    buffer = io.StringIO()
    tracer = JsonlTracer(buffer)
    cluster = Cluster(
        adt,
        table,
        shards=2,
        policy="blocking",
        fault_plan=FaultPlan(3, spec=CHAOS),
        tracer=tracer,
    )
    cluster.run(workload, seed=seed)
    tracer.close()
    return read_trace(io.StringIO(buffer.getvalue()))


class TestRenderDashboard:
    def test_sections_present(self, fixture):
        events = traced_chaos_run(fixture)
        dashboard = render_dashboard(events)
        for header in (
            "== trace summary ==",
            "== slowest transactions",
            "== per-object latency ==",
            "== per-node span latency ==",
            "== conflict profile",
        ):
            assert header in dashboard
        assert "txn[driver]" in dashboard  # critical paths are rendered
        assert "heatmap" in dashboard

    def test_byte_stable_across_identical_runs(self, fixture):
        first = render_dashboard(traced_chaos_run(fixture))
        second = render_dashboard(traced_chaos_run(fixture))
        assert first == second

    def test_top_bounds_the_slow_transaction_list(self, fixture):
        events = traced_chaos_run(fixture)
        dashboard = render_dashboard(events, top=2)
        section = dashboard.split("== slowest transactions")[1]
        section = section.split("\n==")[0]
        assert section.count("gtxn=") == 2

    def test_window_reaches_the_conflict_section(self, fixture):
        events = traced_chaos_run(fixture)
        assert "(window=8)" in render_dashboard(events, window=8)

    def test_dashboard_from_untraced_event_list_is_graceful(self):
        dashboard = render_dashboard([])
        assert "== trace summary ==" in dashboard

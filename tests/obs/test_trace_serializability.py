"""Trace-based serializability re-verification against the live scheduler.

The acceptance property of the tracing subsystem: a JSONL-round-tripped
trace alone carries enough information (operation logs, return values,
commit order, dependency edges, final states) that the offline verdict of
:func:`repro.obs.analysis.serializable_from_trace` equals the live
:func:`repro.cc.serializability.is_serializable` verdict — across 20
seeded workloads spanning ADTs and scheduling policies.
"""

import io

import pytest

from repro.adts.registry import make_adt
from repro.cc.serializability import find_serialization, is_serializable
from repro.cc.simulator import SimulationConfig, simulate_with_scheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.obs.analysis import (
    find_serialization_from_trace,
    serializable_from_trace,
)
from repro.obs.tracers import JsonlTracer, RecordingTracer, read_trace

_TABLES = {}


def derived_table(adt_name):
    if adt_name not in _TABLES:
        _TABLES[adt_name] = derive(make_adt(adt_name)).final_table
    return _TABLES[adt_name]


def run_traced(adt_name, policy, seed, transactions=8):
    adt = make_adt(adt_name)
    workload = generate(
        adt, "shared",
        WorkloadConfig(
            transactions=transactions, operations_per_transaction=3, seed=seed
        ),
    )
    tracer = RecordingTracer()
    _, scheduler = simulate_with_scheduler(
        SimulationConfig(
            adt=adt, table=derived_table(adt_name), workload=workload,
            policy=policy, restart_aborted=True, tracer=tracer,
        )
    )
    return tracer.events, scheduler


# 2 ADTs x 2 policies x 5 seeds = 20 seeded workloads.
WORKLOADS = [
    (adt_name, policy, seed)
    for adt_name in ("QStack", "Account")
    for policy in ("optimistic", "blocking")
    for seed in (1, 2, 3, 4, 5)
]


class TestTraceVerdictMatchesScheduler:
    @pytest.mark.parametrize(
        "adt_name, policy, seed", WORKLOADS,
        ids=[f"{a}-{p}-s{s}" for a, p, s in WORKLOADS],
    )
    def test_verdicts_agree(self, adt_name, policy, seed):
        events, scheduler = run_traced(adt_name, policy, seed)
        assert serializable_from_trace(events) == is_serializable(scheduler)

    def test_orders_agree_after_jsonl_round_trip(self):
        events, scheduler = run_traced("QStack", "blocking", seed=9)
        stream = io.StringIO()
        with JsonlTracer(stream) as tracer:
            for event in events:
                tracer.emit(event)
        stream.seek(0)
        reloaded = read_trace(stream)
        assert reloaded == events
        from_trace = find_serialization_from_trace(reloaded)
        live = find_serialization(scheduler)
        assert (from_trace is None) == (live is None)
        if from_trace is not None:
            assert [int(txn) for txn in from_trace] == [int(txn) for txn in live]

    def test_empty_trace_is_trivially_serializable(self):
        assert serializable_from_trace([]) is True
        assert find_serialization_from_trace([]) == []


class TestNewSchedulerCounters:
    def test_contended_blocking_run_populates_counters(self):
        _, scheduler = run_traced("QStack", "blocking", seed=3, transactions=12)
        stats = scheduler.stats
        assert stats.condition_evaluations > 0
        if stats.operations_blocked:
            assert 0 < stats.blocked_time_events <= stats.operations_blocked

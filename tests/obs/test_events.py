"""Unit tests for the trace-event vocabulary and its serialisation."""

import json

import pytest

from repro.obs.events import (
    DeadlockResolved,
    DependencyRecorded,
    OpBlocked,
    OpGranted,
    RunCompleted,
    RunStarted,
    StageTimed,
    TxnCommitted,
    event_from_dict,
    event_type_names,
)


class TestToDict:
    def test_type_tag_present(self):
        payload = RunStarted(time=0.0, policy="blocking", seed=7).to_dict()
        assert payload["type"] == "run_started"
        assert payload["policy"] == "blocking"
        assert payload["seed"] == 7

    def test_all_fields_serialised(self):
        event = DependencyRecorded(
            time=3.5, txn=2, other_txn=1, object_name="shared",
            invoked="Pop", executing="Push", dependency="CD",
            entry="(CD, x_out = nok)", condition="x_out = nok",
            source="table",
        )
        payload = event.to_dict()
        assert payload["invoked"] == "Pop"
        assert payload["condition"] == "x_out = nok"
        assert payload["source"] == "table"


class TestRoundTrip:
    EVENTS = [
        RunStarted(time=0.0, policy="optimistic", seed=3),
        OpGranted(time=1.0, txn=1, object_name="shared", operation="Push",
                  args="('a',)", outcome="ok", result="None", sequence=4),
        OpBlocked(time=2.0, txn=2, object_name="shared", operation="Pop",
                  args="()", blocked_on=(1, 3)),
        DeadlockResolved(time=2.5, victim=3, cycle=(1, 2, 3)),
        TxnCommitted(time=3.0, txn=1, commit_sequence=1),
        StageTimed(time=0.0, adt="QStack", stage="stage5", seconds=0.01,
                   table_entries=25, conditional_entries=4),
        RunCompleted(time=9.0, committed=4, aborted=1,
                     final_states=(("shared", "('a',)"),)),
    ]

    @pytest.mark.parametrize("event", EVENTS, ids=lambda e: e.type)
    def test_dict_round_trip(self, event):
        assert event_from_dict(event.to_dict()) == event

    @pytest.mark.parametrize("event", EVENTS, ids=lambda e: e.type)
    def test_json_round_trip_restores_tuples(self, event):
        payload = json.loads(json.dumps(event.to_dict()))
        assert event_from_dict(payload) == event


class TestFromDict:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event type"):
            event_from_dict({"type": "nonsense", "time": 0.0})

    def test_missing_type_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"time": 0.0})

    def test_unknown_fields_ignored(self):
        event = event_from_dict(
            {"type": "txn_committed", "time": 1.0, "txn": 2,
             "commit_sequence": 1, "added_in_v9": "zzz"}
        )
        assert event == TxnCommitted(time=1.0, txn=2, commit_sequence=1)


class TestRegistry:
    def test_vocabulary_is_complete(self):
        names = event_type_names()
        for expected in ("run_started", "op_requested", "op_granted",
                         "op_blocked", "dependency_recorded", "commit_waited",
                         "txn_committed", "txn_aborted", "cascade_aborted",
                         "deadlock_resolved", "stage_timed", "run_completed"):
            assert expected in names

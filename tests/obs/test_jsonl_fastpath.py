"""The compiled JSONL serializer must be byte-identical to ``json.dumps``.

``JsonlTracer`` writes events through :func:`repro.obs.tracers._fast_line`
(per-class cached key fragments, direct scalar formatting) and only falls
back to the stock encoder for values the fast path punts on.  Trace
byte-stability — which CI ``cmp``-s — rests on the two paths producing
identical bytes, so this is pinned for every registered event class and
for the value shapes that exercise each branch.
"""

import io
import json
import math

from repro.obs.events import (
    _EVENT_TYPES,
    DependencyRecorded,
    MessageSent,
    OpBlocked,
    StageTimed,
)
from repro.obs.tracers import JsonlTracer, _fast_line, read_trace


def reference_line(event):
    return json.dumps(event.to_dict(), ensure_ascii=False)


class TestFastLineByteIdentity:
    def test_every_registered_event_class_with_defaults(self):
        for cls in _EVENT_TYPES.values():
            event = cls(time=0.5)
            line = _fast_line(event)
            assert line is not None, cls
            assert line == reference_line(event), cls

    def test_strings_needing_escapes(self):
        event = DependencyRecorded(
            time=1.25,
            entry='(CD, x_out = "nok"); \\ backslash',
            condition="line\nbreak\ttab",
            invoked="Pusché",  # non-ASCII survives ensure_ascii=False
        )
        assert _fast_line(event) == reference_line(event)

    def test_int_float_bool_none_and_tuples(self):
        event = OpBlocked(
            time=0.30000000000000004,  # repr round-trip, not str rounding
            txn=-7,
            blocked_on=(1, 2, 30),
        )
        assert _fast_line(event) == reference_line(event)
        outcome_none = MessageSent(time=2.0, gtxn=10 ** 12, deliver_at=1e-9)
        assert _fast_line(outcome_none) == reference_line(outcome_none)

    def test_empty_and_nested_tuples(self):
        event = OpBlocked(time=0.0, blocked_on=())
        assert _fast_line(event) == reference_line(event)

    def test_non_finite_floats_punt_to_the_stock_encoder(self):
        assert _fast_line(StageTimed(time=0.0, seconds=math.inf)) is None
        assert _fast_line(StageTimed(time=0.0, seconds=math.nan)) is None

    def test_tracer_output_round_trips_through_read_trace(self):
        buffer = io.StringIO()
        tracer = JsonlTracer(buffer)
        events = [cls(time=0.5) for cls in _EVENT_TYPES.values()]
        for event in events:
            tracer.emit(event)
        tracer.close()
        assert tracer.emitted == len(events)
        assert read_trace(io.StringIO(buffer.getvalue())) == events

"""Unit tests for the tracer implementations and trace (re)loading."""

import io

import pytest

from repro.obs.events import OpGranted, RunStarted, TxnBegun, TxnCommitted
from repro.obs.tracers import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
    read_trace,
)


class TestNullTracer:
    def test_falsy(self):
        assert not NullTracer()
        assert not NULL_TRACER

    def test_emit_discards(self):
        NULL_TRACER.emit(RunStarted(time=0.0, policy="blocking"))

    def test_satisfies_protocol(self):
        assert isinstance(NULL_TRACER, Tracer)


class TestRecordingTracer:
    def test_truthy_even_when_empty(self):
        tracer = RecordingTracer()
        assert tracer  # emissions must not be skipped before first event
        assert len(tracer) == 0

    def test_records_in_order(self):
        tracer = RecordingTracer()
        first = TxnBegun(time=0.0, txn=1)
        second = TxnCommitted(time=1.0, txn=1, commit_sequence=1)
        tracer.emit(first)
        tracer.emit(second)
        assert tracer.events == [first, second]

    def test_of_type_filters(self):
        tracer = RecordingTracer()
        tracer.emit(TxnBegun(time=0.0, txn=1))
        tracer.emit(TxnCommitted(time=1.0, txn=1, commit_sequence=1))
        assert tracer.of_type(TxnCommitted) == [
            TxnCommitted(time=1.0, txn=1, commit_sequence=1)
        ]

    def test_clear(self):
        tracer = RecordingTracer()
        tracer.emit(TxnBegun(time=0.0, txn=1))
        tracer.clear()
        assert len(tracer) == 0


class TestJsonlTracer:
    EVENTS = [
        RunStarted(time=0.0, policy="optimistic", seed=5),
        OpGranted(time=1.5, txn=1, object_name="shared", operation="Push",
                  args="('a',)", outcome="ok", result="None", sequence=1),
        TxnCommitted(time=2.0, txn=1, commit_sequence=1),
    ]

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(str(path)) as tracer:
            for event in self.EVENTS:
                tracer.emit(event)
            assert tracer.emitted == len(self.EVENTS)
        assert read_trace(str(path)) == self.EVENTS

    def test_stream_round_trip(self):
        stream = io.StringIO()
        tracer = JsonlTracer(stream)
        for event in self.EVENTS:
            tracer.emit(event)
        tracer.close()  # flushes but must not close a borrowed stream
        assert not stream.closed
        stream.seek(0)
        assert read_trace(stream) == self.EVENTS

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(str(path)) as tracer:
            for event in self.EVENTS:
                tracer.emit(event)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == len(self.EVENTS)
        assert all(line.startswith("{\"type\":") for line in lines)


class TestReadTrace:
    def test_blank_lines_skipped(self):
        lines = ["", '{"type": "txn_begun", "time": 0.0, "txn": 1}', "   "]
        assert read_trace(lines) == [TxnBegun(time=0.0, txn=1)]

    def test_malformed_line_reports_line_number(self):
        lines = ['{"type": "txn_begun", "time": 0.0, "txn": 1}', "{oops"]
        with pytest.raises(ValueError, match="line 2"):
            read_trace(lines)

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event type"):
            read_trace(['{"type": "martian", "time": 0.0}'])

"""Unit tests for trace analysis: parsing, histograms, timelines, metrics."""

import pytest

from repro.adts.registry import make_adt
from repro.cc.simulator import SimulationConfig, simulate_with_scheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.obs.analysis import (
    firing_histogram,
    parse_literal,
    reconstruct_run,
    registry_from_trace,
    render_event,
    summarize,
    transaction_timeline,
)
from repro.obs.events import (
    DependencyRecorded,
    OpBlocked,
    OpGranted,
    TxnBegun,
    TxnCommitted,
)
from repro.obs.tracers import RecordingTracer


@pytest.fixture(scope="module")
def traced_run():
    """One contended QStack run recorded through a RecordingTracer."""
    adt = make_adt("QStack")
    table = derive(adt).final_table
    workload = generate(
        adt, "shared",
        WorkloadConfig(transactions=10, operations_per_transaction=3, seed=42),
    )
    tracer = RecordingTracer()
    metrics, scheduler = simulate_with_scheduler(
        SimulationConfig(
            adt=adt, table=table, workload=workload,
            policy="blocking", restart_aborted=True, tracer=tracer,
        )
    )
    return tracer.events, metrics, scheduler


class TestParseLiteral:
    @pytest.mark.parametrize("text, value", [
        ("()", ()),
        ("('a', 'b')", ("a", "b")),
        ("42", 42),
        ("(0, 0)", (0, 0)),
        ("None", None),
        ("frozenset()", frozenset()),
        ("frozenset({'x', 'y'})", frozenset({"x", "y"})),
    ])
    def test_round_trips(self, text, value):
        assert parse_literal(text) == value

    def test_builtins_are_unreachable(self):
        with pytest.raises(Exception):
            parse_literal("__import__('os')")


class TestFiringHistogram:
    def test_counts_by_decision_signature(self):
        dep = dict(time=1.0, txn=2, other_txn=1, object_name="shared",
                   invoked="Pop", executing="Push", dependency="CD",
                   entry="(CD, x_out = nok)", condition="x_out = nok",
                   source="table")
        events = [
            DependencyRecorded(**dep),
            DependencyRecorded(**{**dep, "txn": 3}),
            DependencyRecorded(**{**dep, "dependency": "AD", "source": "locality"}),
        ]
        firings = firing_histogram(events)
        assert [firing.count for firing in firings] == [2, 1]
        assert firings[0].dependency == "CD"
        assert firings[1].source == "locality"

    def test_real_run_matches_scheduler_counters(self, traced_run):
        events, metrics, _ = traced_run
        firings = firing_histogram(events)
        total = sum(firing.count for firing in firings)
        stats = metrics.scheduler
        assert total == stats.ad_edges + stats.cd_edges


class TestTimeline:
    def test_includes_counterparty_events(self):
        events = [
            TxnBegun(time=0.0, txn=1),
            TxnBegun(time=0.0, txn=2),
            OpBlocked(time=1.0, txn=2, object_name="shared", operation="Pop",
                      args="()", blocked_on=(1,)),
            TxnCommitted(time=2.0, txn=1, commit_sequence=1),
        ]
        timeline = transaction_timeline(events, 1)
        # txn 2's block names txn 1, so it belongs to txn 1's timeline too.
        assert [event.type for event in timeline] == [
            "txn_begun", "op_blocked", "txn_committed"
        ]

    def test_unknown_transaction_is_empty(self, traced_run):
        events, _, _ = traced_run
        assert transaction_timeline(events, 10_000) == []

    def test_render_event_is_one_line(self, traced_run):
        events, _, _ = traced_run
        for event in events[:25]:
            line = render_event(event)
            assert "\n" not in line
            assert event.type in line


class TestSummarize:
    def test_real_run_summary(self, traced_run):
        events, metrics, _ = traced_run
        summary = summarize(events)
        assert summary.events == len(events)
        assert summary.committed == metrics.committed
        assert summary.by_type["txn_committed"] == metrics.committed
        # Transactions = programs + restarts (each restart begins afresh).
        assert summary.transactions == 10 + metrics.restarts
        rendered = summary.render()
        assert f"committed={metrics.committed}" in rendered
        assert "dependencies:" in rendered


class TestReconstructRun:
    def test_operations_ordered_by_sequence(self, traced_run):
        events, _, _ = traced_run
        run = reconstruct_run(events)
        assert run.objects["shared"][0] == "QStack"
        for operations in run.operations.values():
            stamps = [op.sequence for op in operations]
            assert stamps == sorted(stamps)

    def test_commit_order_matches_commit_events(self, traced_run):
        events, _, _ = traced_run
        run = reconstruct_run(events)
        committed_events = [
            event.txn for event in events if isinstance(event, TxnCommitted)
        ]
        assert run.committed == committed_events

    def test_final_states_recorded(self, traced_run):
        events, _, scheduler = traced_run
        run = reconstruct_run(events)
        assert run.final_states["shared"] == repr(
            scheduler.object("shared").state()
        )


class TestRegistryFromTrace:
    def test_event_and_dependency_counters(self, traced_run):
        events, metrics, _ = traced_run
        registry = registry_from_trace(events)
        document = registry.to_json()
        granted = sum(
            1 for event in events if isinstance(event, OpGranted)
        )
        assert document["counters"]['events{type="op_granted"}'] == granted
        total_deps = sum(
            value for key, value in document["counters"].items()
            if key.startswith("dependencies{")
        )
        stats = metrics.scheduler
        assert total_deps == stats.ad_edges + stats.cd_edges

    def test_blocked_intervals_observed(self, traced_run):
        events, metrics, _ = traced_run
        histogram = registry_from_trace(events).histogram(
            "blocked_interval_seconds", bounds=(0.1,)
        )
        if any(isinstance(event, OpBlocked) for event in events):
            assert histogram.count > 0

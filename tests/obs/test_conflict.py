"""Unit tests for per-object windowed conflict telemetry."""

from repro.obs.conflict import (
    DEFAULT_THRESHOLDS,
    ConflictProfile,
    ConflictWindow,
    ObjectConflictTracker,
    RecommendThresholds,
    profiles_from_trace,
)
from repro.obs.events import OpBlocked, OpGranted, OpRequested, TxnAborted


def profile_with(requests=0, blocks=0, aborts=0):
    total = ConflictWindow(requests=requests, blocks=blocks, aborts=aborts)
    return ConflictProfile(
        object_name="obj", window_size=64, windows_sealed=0,
        total=total, recent=ConflictWindow(),
    )


class TestObjectConflictTracker:
    def test_windows_seal_every_window_size_requests(self):
        tracker = ObjectConflictTracker("obj", window_size=2)
        tracker.note_request()
        tracker.note_block()
        assert tracker.windows_sealed == 0
        assert tracker.profile().recent == ConflictWindow()  # none sealed yet
        tracker.note_request()
        assert tracker.windows_sealed == 1
        recent = tracker.profile().recent
        assert (recent.requests, recent.blocks) == (2, 1)
        # The new current window starts empty; totals keep accumulating.
        tracker.note_request()
        profile = tracker.profile()
        assert profile.total.requests == 3
        assert profile.recent.requests == 2

    def test_dependency_mix_counters(self):
        tracker = ObjectConflictTracker("obj")
        tracker.note_dep("AD")
        tracker.note_dep("CD")
        tracker.note_dep("CD")
        tracker.note_dep("ND")
        tracker.add_nd_fast(3)
        tracker.add_nd_fast(0)  # zero deltas are free
        total = tracker.profile().total
        assert (total.ad_edges, total.cd_edges, total.nd_pairs) == (1, 2, 1)
        assert total.nd_fast_path == 3

    def test_rates_guard_against_zero_requests(self):
        profile = ObjectConflictTracker("obj").profile()
        assert profile.conflict_rate == 0.0
        assert profile.abort_rate == 0.0


class TestRecommend:
    def test_low_conflict_goes_optimistic(self):
        assert profile_with(requests=100, blocks=10).recommend() == "optimistic"

    def test_high_abort_share_goes_queued(self):
        profile = profile_with(requests=100, blocks=40, aborts=30)
        assert profile.recommend() == "queued"

    def test_contended_but_stable_stays_blocking(self):
        profile = profile_with(requests=100, blocks=40, aborts=10)
        assert profile.recommend() == "blocking"

    def test_heat_char_scales_with_conflict_rate(self):
        cold = profile_with(requests=100, blocks=0)
        hot = profile_with(requests=100, blocks=100)
        assert cold.heat_char() == " "
        assert hot.heat_char() == "@"

    def test_to_dict_is_json_ready(self):
        payload = profile_with(requests=10, blocks=2, aborts=1).to_dict()
        assert payload["object"] == "obj"
        assert payload["conflict_rate"] == 0.2
        assert payload["recommendation"] == "blocking"


class TestProfilesFromTrace:
    def test_counts_and_abort_attribution(self):
        events = [
            OpRequested(time=0.0, txn=1, object_name="a", operation="Push"),
            OpGranted(time=0.0, txn=1, object_name="a", operation="Push"),
            OpRequested(time=1.0, txn=2, object_name="a", operation="Pop"),
            OpBlocked(time=1.0, txn=2, object_name="a", blocked_on=(1,)),
            OpRequested(time=2.0, txn=1, object_name="b", operation="Push"),
            OpGranted(time=2.0, txn=1, object_name="b", operation="Push"),
            # txn 1 last touched "b": its abort lands there, not on "a".
            TxnAborted(time=3.0, txn=1, reason="requested"),
        ]
        profiles = profiles_from_trace(events, window=4)
        assert sorted(profiles) == ["a", "b"]
        assert profiles["a"].total.requests == 2
        assert profiles["a"].total.blocks == 1
        assert profiles["a"].total.aborts == 0
        assert profiles["b"].total.aborts == 1

    def test_window_parameter_reaches_trackers(self):
        events = [
            OpRequested(time=float(i), txn=i, object_name="a", operation="Op")
            for i in range(4)
        ]
        profiles = profiles_from_trace(events, window=2)
        assert profiles["a"].window_size == 2
        assert profiles["a"].windows_sealed == 2


class TestRecommendThresholds:
    """recommend() cutoffs are constructor-configurable; defaults frozen."""

    def test_defaults_are_the_documented_values(self):
        assert DEFAULT_THRESHOLDS == RecommendThresholds(
            optimistic_below=0.15, queued_abort_above=0.25
        )
        # A default-constructed profile decides against exactly these.
        assert profile_with(requests=100, blocks=14).recommend() == "optimistic"
        assert profile_with(requests=100, blocks=15).recommend() == "blocking"
        assert profile_with(requests=100, aborts=26).recommend() == "queued"

    def test_custom_cutoffs_move_the_decision_boundaries(self):
        lenient = RecommendThresholds(
            optimistic_below=0.2, queued_abort_above=0.5
        )
        total = ConflictWindow(requests=100, blocks=10, aborts=30)
        default_profile = ConflictProfile(
            object_name="obj", window_size=64, windows_sealed=0,
            total=total, recent=ConflictWindow(),
        )
        lenient_profile = ConflictProfile(
            object_name="obj", window_size=64, windows_sealed=0,
            total=total, recent=ConflictWindow(), thresholds=lenient,
        )
        # Same counters, different verdicts: only the cutoffs moved.
        assert default_profile.recommend() == "queued"
        assert lenient_profile.recommend() == "optimistic"

    def test_tracker_threads_thresholds_into_profiles(self):
        tracker = ObjectConflictTracker(
            "obj", thresholds=RecommendThresholds(optimistic_below=0.0)
        )
        tracker.note_request()
        profile = tracker.profile()
        assert profile.thresholds.optimistic_below == 0.0
        assert profile.recommend() == "blocking"  # 0.0 rate is not < 0.0

    def test_profiles_from_trace_threads_thresholds(self):
        events = [
            OpRequested(time=0.0, txn=1, object_name="a", operation="Op"),
            OpGranted(time=0.0, txn=1, object_name="a", operation="Op"),
        ]
        lenient = RecommendThresholds(optimistic_below=0.9)
        profiles = profiles_from_trace(events, thresholds=lenient)
        assert profiles["a"].thresholds == lenient
        assert profiles["a"].recommend() == "optimistic"

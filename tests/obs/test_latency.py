"""Unit tests for the log₂ latency histograms and the trace extractor."""

import math

from repro.obs.events import (
    CommitWaited,
    OpBlocked,
    OpGranted,
    OpRequested,
    SpanRecorded,
    TxnAborted,
    TxnBegun,
    TxnCommitted,
)
from repro.obs.latency import (
    MAX_EXP,
    MIN_EXP,
    POW2_BOUNDS,
    Histogram,
    LatencyRecorder,
    histogram_of,
    latency_from_trace,
)
from repro.obs.registry import MetricsRegistry


class TestHistogram:
    def test_exact_stats(self):
        histogram = histogram_of([0.0, 1.0, 3.0, 8.0])
        assert histogram.count == 4
        assert histogram.sum == 12.0
        assert histogram.min == 0.0
        assert histogram.max == 8.0
        assert histogram.mean == 3.0

    def test_empty(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.quantile(0.99) == 0.0

    def test_powers_of_two_get_their_own_bucket(self):
        # Buckets cover (2^(k-1), 2^k]: an exact power of two must not
        # spill into the next octave (frexp, not float log).
        histogram = Histogram()
        histogram.observe(2.0)
        assert histogram.bucket_counts() == [(2.0, 1)]
        histogram.observe(2.0000001)
        assert histogram.bucket_counts() == [(2.0, 1), (4.0, 1)]

    def test_zero_bucket_is_dedicated(self):
        histogram = histogram_of([0.0, 0.0, 5.0])
        assert histogram.zeros == 2
        assert histogram.quantile(0.5) == 0.0

    def test_negative_values_clamp_to_zero(self):
        histogram = histogram_of([-3.0])
        assert histogram.zeros == 1
        assert histogram.min == 0.0

    def test_quantile_error_is_at_most_one_octave(self):
        values = [0.3, 1.7, 2.9, 5.2, 11.8, 40.0, 97.5]
        histogram = histogram_of(values)
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = sorted(values)[max(0, math.ceil(q * len(values)) - 1)]
            reported = histogram.quantile(q)
            assert exact <= reported <= 2.0 * exact

    def test_quantile_one_is_exact_max(self):
        histogram = histogram_of([0.3, 5.2, 97.5])
        assert histogram.quantile(1.0) == 97.5
        assert histogram.p99 == 97.5  # rank 3 bucket, clamped to max

    def test_out_of_range_values_clamp_to_edge_buckets(self):
        histogram = histogram_of([2.0 ** (MIN_EXP - 5), 2.0 ** (MAX_EXP + 5)])
        bounds = [bound for bound, _count in histogram.bucket_counts()]
        assert bounds == [2.0 ** MIN_EXP, 2.0 ** MAX_EXP]

    def test_merge_equals_combined_observation(self):
        first = histogram_of([0.0, 1.0, 7.0])
        second = histogram_of([2.5, 64.0])
        combined = histogram_of([0.0, 1.0, 7.0, 2.5, 64.0])
        first.merge(second)
        assert first.bucket_counts() == combined.bucket_counts()
        assert first.count == combined.count
        assert first.sum == combined.sum
        assert first.min == combined.min
        assert first.max == combined.max

    def test_summary_format(self):
        summary = histogram_of([1.0, 2.0]).summary()
        assert summary.startswith("p50=")
        assert summary.endswith("(n=2)")


class TestLatencyRecorder:
    def test_keyed_observation_and_rows_are_sorted(self):
        recorder = LatencyRecorder()
        recorder.observe("op_grant", "shard1", 1.0)
        recorder.observe("op_grant", "shard0", 2.0)
        recorder.observe("blocked", "shard0", 3.0)
        assert [(metric, key) for metric, key, _ in recorder.rows()] == [
            ("blocked", "shard0"),
            ("op_grant", "shard0"),
            ("op_grant", "shard1"),
        ]
        assert recorder.metrics() == ["blocked", "op_grant"]
        assert len(recorder) == 3
        assert recorder.get("op_grant", "shard1").max == 1.0
        assert recorder.get("op_grant", "missing") is None

    def test_merged_folds_all_keys_of_one_metric(self):
        recorder = LatencyRecorder()
        recorder.observe("rpc", "prepare", 1.0)
        recorder.observe("rpc", "decide", 3.0)
        recorder.observe("e2e", "all", 100.0)
        merged = recorder.merged("rpc")
        assert merged.count == 2
        assert merged.max == 3.0

    def test_publish_exports_pow2_histograms(self):
        recorder = LatencyRecorder()
        recorder.observe("op_grant", "obj", 0.0)
        recorder.observe("op_grant", "obj", 3.0)
        registry = MetricsRegistry()
        recorder.publish(registry)
        exported = registry.histogram(
            "latency_op_grant", bounds=POW2_BOUNDS, labels={"key": "obj"}
        )
        assert exported.count == 2
        assert exported.sum == 3.0  # exact sum restored, not bucket bounds


class TestLatencyFromTrace:
    def test_grant_blocked_and_commit_wait(self):
        events = [
            TxnBegun(time=0.0, txn=1),
            OpRequested(time=0.0, txn=1, object_name="obj", operation="Push"),
            OpBlocked(time=0.0, txn=1, object_name="obj", blocked_on=(2,)),
            OpGranted(time=4.0, txn=1, object_name="obj", operation="Push"),
            CommitWaited(time=4.0, txn=1),
            TxnCommitted(time=6.0, txn=1, commit_sequence=1),
        ]
        recorder = latency_from_trace(events)
        assert recorder.get("op_grant", "obj").max == 4.0
        assert recorder.get("blocked", "obj").max == 4.0
        assert recorder.get("commit_wait", "all").max == 2.0
        assert recorder.get("txn", "committed").max == 6.0

    def test_abort_closes_open_intervals(self):
        events = [
            OpRequested(time=1.0, txn=1, object_name="obj", operation="Push"),
            OpBlocked(time=1.0, txn=1, object_name="obj", blocked_on=(2,)),
            TxnAborted(time=5.0, txn=1, reason="deadlock"),
        ]
        recorder = latency_from_trace(events)
        assert recorder.get("blocked", "obj").max == 4.0
        assert recorder.get("op_grant", "obj") is None  # never granted

    def test_spans_take_over_end_to_end_latency(self):
        # With spans in the trace, e2e latency comes from root txn spans
        # (node-safe in distributed traces), not TxnBegun/TxnCommitted.
        events = [
            TxnBegun(time=0.0, txn=1),
            SpanRecorded(
                time=1.0, trace_id="g1", span_id="node0:0",
                parent_span_id="driver:0", name="sched.op", node="node0",
                gtxn=1, start=0.5, end=1.0,
            ),
            TxnCommitted(time=9.0, txn=1, commit_sequence=1),
            SpanRecorded(
                time=9.0, trace_id="g1", span_id="driver:0",
                parent_span_id="", name="txn", node="driver", gtxn=1,
                start=0.0, end=9.0, status="COMMITTED",
            ),
        ]
        recorder = latency_from_trace(events)
        txn = recorder.get("txn", "committed")
        assert txn.count == 1  # from the root span, not TxnBegun/Committed
        assert txn.max == 9.0
        assert recorder.get("span.sched.op", "node0").max == 0.5

"""Unit tests for derivation profiling (StageProfiler + derive integration)."""

import pytest

from repro.adts.registry import make_adt
from repro.core.methodology import derive
from repro.obs.events import StageTimed
from repro.obs.profiling import StageProfiler
from repro.obs.tracers import RecordingTracer


class TestStageProfiler:
    def test_stage_timing_and_counts(self):
        profiler = StageProfiler("Demo")
        with profiler.stage("stage1"):
            pass
        profile = profiler.profile
        assert [stage.stage for stage in profile.stages] == ["stage1"]
        assert profile.stages[0].seconds >= 0.0
        assert profile.total_seconds == pytest.approx(
            sum(stage.seconds for stage in profile.stages)
        )

    def test_unknown_stage_lookup(self):
        profiler = StageProfiler("Demo")
        with pytest.raises(KeyError):
            profiler.profile.stage("stage9")

    def test_emits_stage_timed_when_traced(self):
        tracer = RecordingTracer()
        profiler = StageProfiler("Demo", tracer=tracer)
        with profiler.stage("stage2"):
            pass
        (event,) = tracer.of_type(StageTimed)
        assert event.adt == "Demo"
        assert event.stage == "stage2"


class TestDeriveProfile:
    @pytest.fixture(scope="class")
    def result(self):
        return derive(make_adt("QStack"))

    def test_profile_attached(self, result):
        assert result.profile is not None
        assert result.profile.adt_name == result.adt_name

    def test_all_pipeline_stages_present(self, result):
        stages = [stage.stage for stage in result.profile.stages]
        for expected in ("stage1", "stage2", "stage3", "stage4", "stage5"):
            assert expected in stages

    def test_table_stages_count_entries(self, result):
        operations = len(result.operations)
        stage5 = result.profile.stage("stage5")
        assert stage5.table_entries == operations * operations
        assert 0 < stage5.conditional_entries <= stage5.table_entries
        # Non-table stages carry no entry counts.
        assert result.profile.stage("stage1").table_entries == 0

    def test_summary_mentions_each_stage(self, result):
        summary = result.profile.summary()
        assert "stage3" in summary and "total" in summary
        assert "entries=" in summary

    def test_derive_with_tracer_emits_stage_events(self):
        tracer = RecordingTracer()
        derive(make_adt("Account"), tracer=tracer)
        events = tracer.of_type(StageTimed)
        assert {event.stage for event in events} >= {
            "stage1", "stage2", "stage3", "stage4", "stage5"
        }
        assert all(event.adt == "Account" for event in events)

"""Unit tests for span emission, stitching, and critical paths."""

from repro.obs.events import SpanRecorded
from repro.obs.spans import (
    NULL_SPAN,
    SpanEmitter,
    SpanForest,
    build_span_trees,
    critical_path,
    render_critical_path,
    trace_id_for,
)
from repro.obs.tracers import NULL_TRACER, RecordingTracer


def span(
    span_id,
    parent="",
    trace="g1",
    name="txn",
    node="driver",
    gtxn=1,
    start=0.0,
    end=1.0,
    detail="",
):
    return SpanRecorded(
        time=end, trace_id=trace, span_id=span_id, parent_span_id=parent,
        name=name, node=node, gtxn=gtxn, start=start, end=end, detail=detail,
    )


class TestSpanEmitter:
    def test_emits_one_event_at_finish(self):
        tracer = RecordingTracer()
        clock = iter([3.0, 7.5])
        emitter = SpanEmitter("coord", tracer, clock=lambda: next(clock))
        opened = emitter.start(trace_id_for(4), "commit", gtxn=4, detail="d")
        assert tracer.events == []  # nothing until close
        opened.finish("ok")
        [event] = tracer.events
        assert event == SpanRecorded(
            time=7.5, trace_id="g4", span_id="coord:0", parent_span_id="",
            name="commit", node="coord", gtxn=4, start=3.0, end=7.5,
            status="ok", detail="d",
        )

    def test_child_inherits_trace_and_parent(self):
        tracer = RecordingTracer()
        emitter = SpanEmitter("coord", tracer, clock=lambda: 0.0)
        parent = emitter.start("g1", "txn", gtxn=1)
        child = emitter.child(parent.context, "prepare", gtxn=1)
        child.finish()
        parent.finish()
        prepare, txn = tracer.events
        assert prepare.trace_id == "g1"
        assert prepare.parent_span_id == txn.span_id
        assert (txn.span_id, prepare.span_id) == ("coord:0", "coord:1")

    def test_crashed_status_propagates(self):
        tracer = RecordingTracer()
        emitter = SpanEmitter("node0", tracer, clock=lambda: 0.0)
        emitter.start("g1", "op").finish("crashed")
        assert tracer.events[0].status == "crashed"

    def test_null_tracer_yields_the_shared_null_span(self):
        emitter = SpanEmitter("coord", NULL_TRACER, clock=lambda: 0.0)
        opened = emitter.start("g1", "txn")
        assert opened is NULL_SPAN
        assert emitter.child(opened.context, "op") is NULL_SPAN
        opened.finish("anything")  # a no-op, not an error

    def test_empty_context_never_gets_a_parent(self):
        # A message from an untraced sender must not fabricate parentage.
        emitter = SpanEmitter("node0", RecordingTracer(), clock=lambda: 0.0)
        assert emitter.child(("", ""), "sched.op") is NULL_SPAN

    def test_null_path_does_not_advance_the_id_counter(self):
        tracer = RecordingTracer()
        emitter = SpanEmitter("coord", tracer, clock=lambda: 0.0)
        emitter.tracer = NULL_TRACER
        emitter.start("g1", "txn")
        emitter.tracer = tracer
        emitter.start("g1", "txn").finish()
        assert tracer.events[0].span_id == "coord:0"


class TestBuildSpanTrees:
    def test_stitches_parentage_across_actors(self):
        events = [
            span("driver:0"),
            span("coord:0", parent="driver:0", name="op", node="coord"),
            span("node0:0", parent="coord:0", name="sched.op", node="node0"),
        ]
        forest = build_span_trees(events)
        assert forest.orphans == [] and forest.duplicates == []
        [root] = forest.trees["g1"]
        names = [node.event.name for node in root.walk()]
        assert names == ["txn", "op", "sched.op"]

    def test_orphans_are_reported_not_grafted(self):
        forest = build_span_trees([span("coord:0", parent="ghost:9")])
        assert forest.trees == {}
        assert [event.span_id for event in forest.orphans] == ["coord:0"]

    def test_duplicates_are_reported_once(self):
        forest = build_span_trees([span("driver:0"), span("driver:0")])
        assert len(forest.trees["g1"]) == 1
        assert [event.span_id for event in forest.duplicates] == ["driver:0"]

    def test_roots_by_gtxn_skips_non_transaction_traces(self):
        forest = build_span_trees([
            span("driver:0", gtxn=3),
            span("bus:0", trace="recovery", gtxn=-1, name="recovery"),
        ])
        assert set(forest.roots_by_gtxn()) == {3}

    def test_non_span_events_are_ignored(self):
        assert build_span_trees([object()]) == SpanForest()


class TestCriticalPath:
    def test_follows_the_longest_child(self):
        events = [
            span("driver:0", start=0.0, end=10.0),
            span("coord:0", parent="driver:0", name="op", start=0.0, end=2.0),
            span("coord:1", parent="driver:0", name="commit", node="coord",
                 start=2.0, end=9.0, detail="node0"),
            span("node0:0", parent="coord:1", name="sched.commit",
                 node="node0", start=3.0, end=4.0),
        ]
        [root] = build_span_trees(events).trees["g1"]
        names = [node.event.name for node in critical_path(root)]
        assert names == ["txn", "commit", "sched.commit"]
        rendered = render_critical_path(root)
        assert rendered == (
            "txn[driver] 10.00 > commit[coord->node0] 7.00 "
            "> sched.commit[node0] 1.00"
        )

    def test_duration_tie_breaks_on_earliest_start(self):
        events = [
            span("driver:0", start=0.0, end=10.0),
            span("coord:1", parent="driver:0", name="late", start=5.0, end=8.0),
            span("coord:0", parent="driver:0", name="early", start=1.0, end=4.0),
        ]
        [root] = build_span_trees(events).trees["g1"]
        assert [n.event.name for n in critical_path(root)] == ["txn", "early"]

    def test_self_time_subtracts_children(self):
        events = [
            span("driver:0", start=0.0, end=10.0),
            span("coord:0", parent="driver:0", name="op", start=0.0, end=4.0),
        ]
        [root] = build_span_trees(events).trees["g1"]
        assert root.self_time == 6.0
        assert root.children[0].self_time == 4.0

"""Unit tests for the dependency-free metrics registry."""

import json
import math

import pytest

from repro.errors import SchedulerError
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self):
        counter = Counter(name="ops")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_cannot_decrease(self):
        with pytest.raises(SchedulerError, match="cannot decrease"):
            Counter(name="ops").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge(name="depth")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == pytest.approx(12.0)


class TestHistogram:
    def test_bounds_must_be_increasing(self):
        with pytest.raises(SchedulerError, match="increasing"):
            Histogram("h", bounds=(2.0, 1.0))

    def test_bounds_must_be_nonempty(self):
        with pytest.raises(SchedulerError):
            Histogram("h", bounds=())

    def test_observe_buckets_cumulatively(self):
        histogram = Histogram("h", bounds=(1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.bucket_counts() == {1.0: 2, 5.0: 3, math.inf: 4}
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(104.2)

    def test_boundary_value_lands_in_lower_bucket(self):
        histogram = Histogram("h", bounds=(1.0, 5.0))
        histogram.observe(1.0)  # le semantics: value <= bound
        assert histogram.bucket_counts()[1.0] == 1


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("ops") is registry.counter("ops")

    def test_labels_separate_instruments(self):
        registry = MetricsRegistry()
        committed = registry.counter("txns", labels={"status": "committed"})
        aborted = registry.counter("txns", labels={"status": "aborted"})
        assert committed is not aborted
        committed.inc(3)
        assert aborted.value == 0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        one = registry.counter("x", labels={"a": "1", "b": "2"})
        two = registry.counter("x", labels={"b": "2", "a": "1"})
        assert one is two

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("ops")
        with pytest.raises(SchedulerError, match="already registered"):
            registry.gauge("ops")


class TestJsonExport:
    def test_document_shape(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc(2)
        registry.gauge("depth").set(7)
        registry.histogram("lat", bounds=(1.0,)).observe(0.5)
        document = registry.to_json()
        assert document["counters"]["ops"] == 2
        assert document["gauges"]["depth"] == 7
        assert document["histograms"]["lat"]["count"] == 1
        assert document["histograms"]["lat"]["buckets"] == {"1": 1, "+Inf": 1}

    def test_labelled_keys(self):
        registry = MetricsRegistry()
        registry.counter("txns", labels={"status": "committed"}).inc()
        assert 'txns{status="committed"}' in registry.to_json()["counters"]

    def test_render_json_is_valid_json(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc()
        assert json.loads(registry.render_json())["counters"]["ops"] == 1


class TestPrometheusExport:
    def test_counter_sample(self):
        registry = MetricsRegistry()
        registry.counter("ops", help="Operations.").inc(3)
        text = registry.render_prometheus()
        assert "# HELP repro_ops Operations." in text
        assert "# TYPE repro_ops counter" in text
        assert "repro_ops_total 3" in text

    def test_gauge_sample(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(2.5)
        text = registry.render_prometheus()
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 2.5" in text

    def test_histogram_samples(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", bounds=(1.0, 5.0))
        histogram.observe(0.5)
        histogram.observe(10.0)
        text = registry.render_prometheus()
        assert '# TYPE repro_lat histogram' in text
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="5"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_sum 10.5" in text
        assert "repro_lat_count 2" in text

    def test_shared_header_for_labelled_family(self):
        registry = MetricsRegistry()
        registry.counter("txns", labels={"status": "committed"}).inc()
        registry.counter("txns", labels={"status": "aborted"}).inc()
        text = registry.render_prometheus()
        assert text.count("# TYPE repro_txns counter") == 1
        assert 'repro_txns_total{status="aborted"} 1' in text
        assert text.endswith("\n")

"""Error-hierarchy and public-API surface tests."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            exception_type = getattr(errors, name)
            assert issubclass(exception_type, errors.ReproError), name

    def test_unknown_vertex_carries_the_id(self):
        error = errors.UnknownVertexError(7)
        assert error.vid == 7
        assert "7" in str(error)

    def test_unknown_operation_carries_names(self):
        error = errors.UnknownOperationError("QStack", "Warp")
        assert error.adt == "QStack"
        assert error.operation == "Warp"

    def test_unknown_reference_carries_name(self):
        assert errors.UnknownReferenceError("f").name == "f"

    def test_single_catch_covers_the_library(self):
        from repro.adts import QStackSpec

        with pytest.raises(errors.ReproError):
            QStackSpec().operation("Nope")


class TestPublicSurface:
    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)

    def test_subpackage_exports_resolve(self):
        import repro.adts
        import repro.cc
        import repro.core
        import repro.graph
        import repro.robust
        import repro.semantics
        import repro.spec

        for module in (
            repro.adts,
            repro.cc,
            repro.core,
            repro.graph,
            repro.robust,
            repro.semantics,
            repro.spec,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module.__name__, name)

    def test_quickstart_docstring_example_runs(self):
        from repro import QStackSpec, derive

        result = derive(
            QStackSpec(operations=["Push", "Pop", "Deq", "Top", "Size"])
        )
        assert "AD" in result.final_table.render_ascii()

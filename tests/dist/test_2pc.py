"""Protocol-level 2PC behaviour: votes, piggybacking, presumed abort,
idempotent handlers, and the durable decision records."""

import json

import pytest

from repro.adts.account import AccountSpec
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.dist import Cluster, Coordinator, ParticipantNode, SimBus


@pytest.fixture(scope="module")
def adt():
    return AccountSpec()


@pytest.fixture(scope="module")
def table(adt):
    return derive(adt).final_table


@pytest.fixture()
def rig(adt, table):
    """One participant node behind a fault-free bus, driven directly."""
    bus = SimBus()
    node = ParticipantNode("node0")
    node.bus = bus
    node.register_object("obj", adt, table)
    bus.register_endpoint("node0", node.handle)

    def rpc(kind, gtxn, payload=None):
        reply = bus.rpc("tester", "node0", kind, gtxn, payload or {})
        assert reply is not None
        return reply.payload

    return node, rpc


def op_payload(adt, operation, op_seq=0):
    return {
        "op_seq": op_seq,
        "object_name": "obj",
        "invocation": adt.invocations_of(operation)[0],
    }


class TestVotes:
    def test_wait_while_dependency_unresolved_then_yes_with_deps(
        self, adt, rig
    ):
        node, rpc = rig
        # Deposit then Withdraw: the withdrawing transaction is
        # abort-dependent on the depositor (it observed the new balance).
        assert rpc("op", 0, op_payload(adt, "Deposit"))["outcome"] == "executed"
        assert rpc("op", 1, op_payload(adt, "Withdraw"))["outcome"] == "executed"
        vote = rpc("prepare", 1)
        # The piggybacking rule: no yes vote while a predecessor this
        # transaction is commit-dependent on is still unresolved.
        assert vote["vote"] == "wait"
        assert tuple(vote["waiting_on"]) == (0,)

        assert rpc("prepare", 0)["vote"] == "yes"
        assert rpc("decide", 0, {"decision": "commit"})["outcome"] == "ack"
        vote = rpc("prepare", 1)
        assert vote["vote"] == "yes"
        assert tuple(vote["ad"]) == (0,)  # the shipped dependency set
        # The yes vote is durable before it is sent.
        prepared = [
            json.loads(r.extra)
            for r in node.log.records
            if r.kind == "2pc-prepared"
        ]
        assert {"gtxn": 1, "ad": [0], "cd": []} in prepared

    def test_no_after_ad_predecessor_aborted(self, adt, rig):
        node, rpc = rig
        rpc("op", 0, op_payload(adt, "Deposit"))
        rpc("op", 1, op_payload(adt, "Withdraw"))
        assert rpc("decide", 0, {"decision": "abort"})["outcome"] == "ack"
        # The cascade rule carried into the vote: an aborted AD
        # predecessor forces a no vote (after the local abort).
        assert rpc("prepare", 1)["vote"] == "no"
        assert node.stats.votes_no == 1

    def test_revote_is_served_from_the_prepared_cache(self, adt, rig):
        node, rpc = rig
        rpc("op", 0, op_payload(adt, "Deposit"))
        first = rpc("prepare", 0)
        again = rpc("prepare", 0)
        assert first["vote"] == again["vote"] == "yes"
        # Exactly one durable prepared record despite two votes.
        kinds = [r.kind for r in node.log.records]
        assert kinds.count("2pc-prepared") == 1


class TestIdempotency:
    def test_duplicate_operation_answers_from_the_durable_record(
        self, adt, rig
    ):
        node, rpc = rig
        first = rpc("op", 0, op_payload(adt, "Deposit", op_seq=0))
        dup = rpc("op", 0, op_payload(adt, "Deposit", op_seq=0))
        assert dup["outcome"] == "executed"
        assert dup["duplicate"] is True
        assert dup["returned"] == first["returned"]
        # Re-execution never happened: one operation record.
        ltxn = node.ltxn_of[0]
        assert len(node.sched.transaction(ltxn).records) == 1

    def test_decide_on_resolved_transaction_acks_without_touching(
        self, adt, rig
    ):
        node, rpc = rig
        rpc("op", 0, op_payload(adt, "Deposit"))
        rpc("prepare", 0)
        assert rpc("decide", 0, {"decision": "commit"})["outcome"] == "ack"
        records_before = len(node.log.records)
        assert rpc("decide", 0, {"decision": "commit"})["outcome"] == "ack"
        assert len(node.log.records) == records_before


class TestPresumedAbort:
    def test_unknown_transaction_queries_answer_abort(self):
        bus = SimBus()
        coordinator = Coordinator()
        coordinator.bus = bus
        bus.register_endpoint("coord", coordinator.handle)
        reply = bus.rpc("node0", "coord", "query", 99)
        assert reply.payload["decision"] == "abort"
        assert coordinator.stats.indoubt_queries == 1

    def test_only_commits_are_durably_logged(self, adt, table):
        workload = generate(
            adt,
            "obj",
            WorkloadConfig(
                transactions=6, operations_per_transaction=3, seed=23,
                abort_probability=0.15,
            ),
        )
        cluster = Cluster(adt, table, shards=2)
        transcript = cluster.run(workload, seed=23)
        kinds = {r.kind for r in cluster.coordinator.log.records}
        assert kinds <= {"2pc-commit"}  # presumed abort: no abort records
        logged = {
            json.loads(r.extra)["gtxn"]
            for r in cluster.coordinator.log.records
        }
        committed = {
            gtxn for gtxn, status in transcript.statuses
            if status == "COMMITTED"
        }
        # Every logged decision is a commit of a real committed txn; the
        # difference is the one-phase fast path (no log entry needed).
        assert logged <= committed
        assert cluster.stats.decisions_commit + cluster.stats.one_phase_commits == len(committed)

    def test_dependency_sets_piggyback_on_prepare_votes(self, adt, table):
        workload = generate(
            adt,
            "obj",
            WorkloadConfig(
                transactions=6, operations_per_transaction=3, seed=23,
                abort_probability=0.15,
            ),
        )
        cluster = Cluster(adt, table, shards=2)
        cluster.run(workload, seed=23)
        shipped = [
            json.loads(r.extra)
            for node in cluster.nodes
            for r in node.log.records
            if r.kind == "2pc-prepared"
        ]
        assert shipped, "no prepared votes in a multi-shard run"
        assert any(vote["ad"] or vote["cd"] for vote in shipped)

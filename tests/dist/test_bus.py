"""SimBus determinism, message faults, and the empty-plan contract."""

from repro.dist import DistStats, SimBus, SimCrash
from repro.robust import FaultPlan, FaultSpec


def echo_endpoint(bus, name="server"):
    """Register an endpoint that echoes every request back as a reply."""
    served = []

    def handler(message):
        served.append((message.kind, message.gtxn, dict(message.payload)))
        bus.send(
            name, message.src, f"{message.kind}-reply", message.gtxn,
            {"echo": message.payload.get("value")},
            request_id=message.request_id,
        )

    bus.register_endpoint(name, handler)
    return served


def script(bus):
    """A fixed RPC script; returns the observable outcomes."""
    replies = []
    for gtxn in range(8):
        reply = bus.rpc("client", "server", "ping", gtxn, {"value": gtxn})
        replies.append(None if reply is None else reply.payload["echo"])
    return replies


class TestFaultFreeBus:
    def test_rpc_round_trip_without_advancing_time(self):
        bus = SimBus()
        served = echo_endpoint(bus)
        assert script(bus) == list(range(8))
        assert [gtxn for _kind, gtxn, _p in served] == list(range(8))
        # Fault-free messages carry zero latency: sim-time never moves,
        # which is the precondition of one-shard transcript parity.
        assert bus.now == 0.0
        assert bus.stats.rpc_retries == 0
        assert bus.stats.rpc_timeouts == 0

    def test_empty_plan_is_bit_identical_to_no_plan(self):
        bare = SimBus()
        echo_endpoint(bare)
        bare_replies = script(bare)

        plan = FaultPlan(1991, FaultSpec())
        guarded = SimBus(plan=plan)
        echo_endpoint(guarded)
        assert script(guarded) == bare_replies
        assert guarded.stats.as_tuple() == bare.stats.as_tuple()
        assert plan.stats.faults_injected == 0

    def test_crash_downs_endpoint_and_purges_inbound(self):
        bus = SimBus(timeout=1.0, retries=1)

        def handler(message):
            raise SimCrash("server")

        bus.register_endpoint("server", handler)
        assert bus.rpc("client", "server", "ping", 0) is None
        assert bus.down() == {"server"}
        # Mail queued for a down endpoint is dropped at delivery.
        before = bus.stats.messages_dropped
        assert bus.rpc("client", "server", "ping", 1) is None
        assert bus.stats.messages_dropped > before
        bus.revive("server")
        assert bus.down() == set()


class TestMessageFaults:
    def test_drop_storm_times_out_with_capped_retries(self):
        plan = FaultPlan(7, FaultSpec(msg_drop_rate=1.0))
        bus = SimBus(plan=plan, timeout=1.0, retries=2)
        echo_endpoint(bus)
        assert bus.rpc("client", "server", "ping", 0) is None
        assert bus.stats.messages_dropped == 3  # initial send + 2 retries
        assert bus.stats.rpc_retries == 2
        assert bus.stats.rpc_timeouts == 1

    def test_duplicates_are_enqueued_twice(self):
        plan = FaultPlan(7, FaultSpec(msg_duplicate_rate=1.0))
        bus = SimBus(plan=plan)
        served = echo_endpoint(bus)
        replies = script(bus)
        assert replies == list(range(8))
        assert bus.stats.messages_duplicated > 0
        # Duplicated requests reach the handler twice (dedup is the
        # receiver's job); the duplicate replies surface as stale.
        assert len(served) > 8
        assert bus.stats.stale_replies > 0

    def test_same_seed_same_storm(self):
        outcomes = []
        for _ in range(2):
            plan = FaultPlan(23, FaultSpec.message_storm(0.2))
            bus = SimBus(plan=plan, timeout=1.0, retries=2)
            echo_endpoint(bus)
            outcomes.append(
                (
                    script(bus),
                    bus.stats.as_tuple(),
                    [(r.kind, r.detail) for r in plan.records],
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_different_seed_different_storm(self):
        def storm(seed):
            plan = FaultPlan(seed, FaultSpec.message_storm(0.3))
            bus = SimBus(plan=plan, timeout=1.0, retries=2)
            echo_endpoint(bus)
            script(bus)
            return [(r.kind, r.detail) for r in plan.records]

        assert storm(1) != storm(2)

    def test_partition_drops_both_directions_until_heal(self):
        plan = FaultPlan(5, FaultSpec(partition_rate=1.0, partition_duration=2.0))
        bus = SimBus(plan=plan, timeout=1.0, retries=0)
        echo_endpoint(bus)
        bus.partition_links.append(frozenset(("client", "server")))
        assert bus.rpc("client", "server", "ping", 0) is None
        assert bus.stats.partitions_opened == 1
        assert bus.stats.partition_drops >= 1
        # Rate 1.0 reopens the partition on every send until the
        # max_partitions cap (4); past the cap and the heal point,
        # traffic flows again.
        reply = None
        for _attempt in range(6):
            bus.now += 10.0
            reply = bus.rpc("client", "server", "ping", 1, {"value": 41})
            if reply is not None:
                break
        assert reply is not None and reply.payload["echo"] == 41
        assert bus.stats.partitions_opened == 4  # the cap held


class TestDistStats:
    def test_publish_exports_dist_counters(self):
        from repro.obs.registry import MetricsRegistry

        stats = DistStats(messages_sent=5, prepares_sent=2, votes_yes=2)
        registry = MetricsRegistry()
        stats.publish(registry)
        rendered = registry.render_json()
        assert '"dist_messages_sent": 5' in rendered
        assert '"dist_prepares_sent": 2' in rendered
        assert '"dist_votes_yes": 2' in rendered

    def test_as_tuple_is_sorted_and_complete(self):
        stats = DistStats()
        names = [name for name, _ in stats.as_tuple()]
        assert names == sorted(names)
        assert "one_phase_commits" in names

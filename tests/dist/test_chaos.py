"""Distributed chaos: storm determinism, byte-stable reports, audits."""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.dist import Cluster, audit_global, run_dist_chaos
from repro.experiments import golden
from repro.robust import FaultPlan, FaultSpec
from repro.robust.chaos import render_report, run_chaos


@pytest.fixture(scope="module")
def adts():
    account = AccountSpec()
    qstack = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    return {
        "Account": (account, derive(account).final_table),
        "QStack": (qstack, derive(qstack).final_table),
    }


def workload_for(adt, seed):
    return generate(
        adt,
        "obj",
        WorkloadConfig(
            transactions=5, operations_per_transaction=3, seed=seed,
            abort_probability=0.15,
        ),
    )


class TestStormDeterminism:
    def test_same_seed_same_plan_same_transcript(self, adts):
        adt, table = adts["Account"]
        transcripts = []
        for _ in range(2):
            cluster = Cluster(
                adt, table, shards=2,
                fault_plan=FaultPlan(9, FaultSpec.message_storm(0.1)),
            )
            transcripts.append(cluster.run(workload_for(adt, 9), seed=9))
        assert transcripts[0] == transcripts[1]

    def test_empty_message_plan_is_bit_identical_to_no_plan(self, adts):
        adt, table = adts["QStack"]
        bare = Cluster(adt, table, shards=2)
        bare_transcript = bare.run(workload_for(adt, 7), seed=7)
        guarded = Cluster(
            adt, table, shards=2, fault_plan=FaultPlan(7, FaultSpec())
        )
        assert guarded.run(workload_for(adt, 7), seed=7) == bare_transcript

    def test_dist_storm_exercises_crashes_and_still_audits(self, adts):
        adt, table = adts["Account"]
        crashed = 0
        for seed in (3, 13, 29):
            cluster = Cluster(
                adt, table, shards=2,
                fault_plan=FaultPlan(seed, FaultSpec.dist_storm(0.3)),
            )
            cluster.run(workload_for(adt, seed), seed=seed)
            crashed += cluster.stats.node_crashes
            audit = audit_global(cluster)
            assert audit.passed, audit.violations
            assert cluster.stats.node_recoveries + \
                cluster.stats.coordinator_recoveries >= \
                min(cluster.stats.node_crashes, 1)
        assert crashed > 0, "the dist storm never exercised a crash"

    def test_storm_audits_pass_across_the_matrix(self, adts):
        for name in adts:
            adt, table = adts[name]
            for shards in (2, 3):
                cluster = Cluster(
                    adt, table, shards=shards,
                    fault_plan=FaultPlan(11, FaultSpec.message_storm(0.08)),
                )
                cluster.run(workload_for(adt, 11), seed=11)
                audit = audit_global(cluster)
                assert audit.passed, (name, shards, audit.violations)


class TestDistChaosReport:
    def test_report_is_byte_stable(self, adts):
        reports = [
            render_report(
                run_dist_chaos(
                    adts, shard_counts=(1, 2), seeds=(7,),
                    transactions=4, operations=3,
                )
            )
            for _ in range(2)
        ]
        assert reports[0] == reports[1]

    def test_campaign_passes_and_covers_the_matrix(self, adts):
        report = run_dist_chaos(
            adts, shard_counts=(1, 2), seeds=(7, 23),
            transactions=4, operations=3, crash_sweep_enabled=True,
        )
        assert report["passed"], [
            cell for cell in report["cells"] if not cell["audit"]["passed"]
        ]
        # 2 ADTs x 2 shard counts x 3 mixes x 2 seeds
        assert len(report["cells"]) == 24
        assert all(s["passed"] for s in report["crash_sweeps"])
        baseline = [c for c in report["cells"] if c["mix"] == "baseline"]
        assert all(cell["faults"] is None for cell in baseline)

    def test_run_chaos_embeds_the_distributed_campaign(self, adts):
        report = run_chaos(
            {"Account": adts["Account"]},
            policies=("optimistic",),
            seeds=(7,),
            transactions=4,
            operations=3,
            crash_sweep_enabled=False,
            distributed=True,
            shard_counts=(1, 2),
        )
        assert report["matrix"]["shard_counts"] == [1, 2]
        dist = report["distributed"]
        assert dist["matrix"]["policy"] == "optimistic"
        assert report["passed"] == (
            all(c["fault_storm"]["serializable"] for c in report["cells"])
            and dist["passed"]
        )

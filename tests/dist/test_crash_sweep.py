"""The exhaustive distributed crash sweep: the PR's acceptance matrix.

Coordinator and participants are crashed at every protocol point a run
reaches — before/after each durable log append and before/after each
protocol send or scheduler application — each in its own fresh cluster
run.  After recovery and the termination protocol, every run must leave
no transaction in doubt, a serializable stitched global history, and
the AD/CD contract intact.
"""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.dist import Cluster, CrashSchedule, dist_crash_sweep
from repro.experiments import golden


def make_fixture(name):
    adt = (
        AccountSpec()
        if name == "Account"
        else QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    )
    return adt, derive(adt).final_table


def workload_for(adt, seed):
    return generate(
        adt,
        "obj",
        WorkloadConfig(
            transactions=4, operations_per_transaction=3, seed=seed,
            abort_probability=0.15,
        ),
    )


@pytest.mark.parametrize("adt_name", ["Account", "QStack"])
@pytest.mark.parametrize("shards", [1, 2])
@pytest.mark.parametrize("seed", [7, 23, 47])
def test_every_protocol_point_survives_a_crash(adt_name, shards, seed):
    adt, table = make_fixture(adt_name)
    sweep = dist_crash_sweep(
        adt, table, workload_for(adt, seed), shards=shards, seed=seed
    )
    assert sweep.points_reached > 0
    assert sweep.passed, [
        (f.actor, f.label, f.audit.violations, f.regressions)
        for f in sweep.failures()
    ]
    for result in sweep.results:
        assert result.audit.in_doubt == ()


def test_census_covers_both_sides_of_the_protocol():
    adt, table = make_fixture("Account")
    census = CrashSchedule(target=None)
    cluster = Cluster(adt, table, shards=2, crash_schedule=census)
    cluster.run(workload_for(adt, 23), seed=23)
    actors = {actor for actor, _label in census.points}
    labels = {label for _actor, label in census.points}
    assert "coord" in actors
    assert actors & {"node0", "node1"}
    # Participant points bracket log appends and scheduler applications;
    # coordinator points bracket sends and the decision-log write.
    assert {"attach:pre-log", "attach:post-log", "op:pre-apply",
            "op:post-apply", "prepare:pre-send"} <= labels
    assert any(label.startswith("decision:") for label in labels)


def test_max_points_caps_the_sweep():
    adt, table = make_fixture("Account")
    sweep = dist_crash_sweep(
        adt, table, workload_for(adt, 7), shards=2, seed=7, max_points=5
    )
    assert len(sweep.results) == 5
    assert sweep.passed

"""Replica groups: log shipping, view changes, fencing, failover.

The replication layer's contracts, each tested on its own:

* **Identity at ``replicas=1``** — no manager is built, so replicated
  clusters degenerate bit-identically to the bare ones (transcript and
  frontend parity).
* **Determinism** — a fault-free replicated run and the full failover
  campaign are byte-stable across repeated runs.
* **Zero committed loss** — killing every primary once mid-protocol
  loses no committed transaction: the primary ships its log tail before
  any reply externalizes an outcome.
* **Fencing** — a deposed primary's stale-epoch message is rejected
  with a ``fenced`` reply, never applied, and the run certifies
  single-primary-per-epoch.
* **Termination across failover** — a coordinator crash after the
  decision log write plus a participant crash before applying the
  decision, with a backup promotion in between, still resolves the
  in-doubt transaction to the logged decision.
"""

import hashlib

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.dist import run_distributed
from repro.dist.audit import audit_global
from repro.dist.chaos import _KillPrimariesOnce, run_replication_chaos
from repro.dist.cluster import Cluster, ClusterFrontend, shard_workload
from repro.experiments import golden
from repro.spec.operation import Invocation


def make_adt(name):
    if name == "Account":
        return AccountSpec()
    return QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)


@pytest.fixture(scope="module", params=["Account", "QStack"])
def fixture(request):
    adt = make_adt(request.param)
    return adt, derive(adt).final_table


def workload_for(adt, seed, transactions=8):
    return generate(
        adt,
        "obj",
        WorkloadConfig(
            transactions=transactions,
            operations_per_transaction=3,
            seed=seed,
        ),
    )


def digest(transcript) -> str:
    return hashlib.sha256(repr(transcript).encode()).hexdigest()


class _LabelCrash:
    """Crash schedule keyed on exact ``(actor, label)`` points.

    Each listed point fires exactly once, the first time its actor
    reaches its label; everything else runs through.
    """

    def __init__(self, points) -> None:
        self.remaining = set(points)
        self.fired: list[tuple[str, str]] = []

    def fire(self, actor: str, label: str) -> bool:
        if (actor, label) in self.remaining:
            self.remaining.discard((actor, label))
            self.fired.append((actor, label))
            return True
        return False


class TestReplicasOneParity:
    @pytest.mark.parametrize("policy", ["optimistic", "blocking"])
    def test_transcript_identical_to_bare_cluster(self, fixture, policy):
        adt, table = fixture
        workload = workload_for(adt, 7)
        bare = run_distributed(
            adt, table, workload, shards=2, policy=policy, seed=7
        )
        replicated = run_distributed(
            adt, table, workload, shards=2, policy=policy, seed=7, replicas=1
        )
        assert replicated == bare
        assert digest(replicated) == digest(bare)

    def test_frontend_transcript_identical(self, fixture):
        adt, table = fixture
        workload = workload_for(adt, 11)

        def serve(replicas):
            cluster = Cluster(
                adt, table, shards=2, policy="blocking", replicas=replicas
            )
            frontend = ClusterFrontend(cluster)
            assignments = shard_workload(workload, cluster.shard_names, 11)
            for index, program in enumerate(workload.programs):
                gtxn = frontend.begin()
                aborted = False
                for step_index, step in enumerate(program.steps):
                    decision = frontend.request(
                        gtxn, assignments[index][step_index], step.invocation
                    )
                    if decision.aborted:
                        aborted = True
                        break
                if aborted:
                    continue
                if program.voluntary_abort:
                    frontend.abort(gtxn, "voluntary")
                else:
                    frontend.try_commit(gtxn)
            frontend.finalize()
            return dict(cluster.gstatus), dict(cluster.gstamps)

        assert serve(1) == serve(2) == serve(1)


class TestDeterminism:
    def test_fault_free_replicated_run_is_bit_identical(self, fixture):
        adt, table = fixture
        workload = workload_for(adt, 1991)

        def run():
            cluster = Cluster(
                adt, table, shards=2, policy="blocking", replicas=2
            )
            transcript = cluster.run(workload, seed=1991)
            return cluster, transcript

        first_cluster, first = run()
        second_cluster, second = run()
        assert first == second
        assert digest(first) == digest(second)
        assert (
            first_cluster.replication.lag_report()
            == second_cluster.replication.lag_report()
        )

    def test_empty_fault_plan_is_bit_identical_across_runs(self, fixture):
        from repro.robust import FaultPlan, FaultSpec

        adt, table = fixture
        workload = workload_for(adt, 1991)

        def run():
            cluster = Cluster(
                adt,
                table,
                shards=2,
                policy="blocking",
                replicas=2,
                fault_plan=FaultPlan(1991, FaultSpec()),
            )
            return cluster.run(workload, seed=1991)

        assert digest(run()) == digest(run())

    def test_backups_fully_caught_up_after_fault_free_run(self, fixture):
        adt, table = fixture
        cluster = Cluster(adt, table, shards=2, policy="blocking", replicas=3)
        cluster.run(workload_for(adt, 5), seed=5)
        for shard, row in cluster.replication.lag_report().items():
            for backup in row["backups"].values():
                assert backup["lag"] == 0
                assert backup["applied"] == row["log_records"]


class TestFailover:
    def run_with_kills(self, adt, table, seed):
        cluster = Cluster(
            adt,
            table,
            shards=2,
            policy="blocking",
            replicas=2,
            crash_schedule=_KillPrimariesOnce(
                [f"node{i}" for i in range(2)]
            ),
        )
        transcript = cluster.run(workload_for(adt, seed, 10), seed=seed)
        return cluster, transcript

    def test_kill_every_primary_loses_no_commit(self, fixture):
        adt, table = fixture
        cluster, _ = self.run_with_kills(adt, table, 1991)
        assert cluster.crash_schedule.remaining == set()
        assert cluster.stats.view_changes == 2
        audit = audit_global(cluster)
        assert audit.passed, audit.violations
        lost = [
            gtxn
            for gtxn in cluster.coordinator.committed
            if cluster.gstatus.get(gtxn) != "COMMITTED"
        ]
        assert lost == []
        assert cluster.replication.fencing_violations() == []

    def test_failover_run_is_deterministic(self, fixture):
        adt, table = fixture
        _, first = self.run_with_kills(adt, table, 1991)
        _, second = self.run_with_kills(adt, table, 1991)
        assert digest(first) == digest(second)


class TestFencing:
    def test_stale_epoch_message_is_fenced_not_applied(self, fixture):
        adt, table = fixture
        cluster, _ = TestFailover().run_with_kills(adt, table, 1991)
        group = cluster.replication.groups["node0"]
        assert group.epoch >= 1
        statuses_before = dict(cluster.gstatus)
        fenced_before = cluster.stats.fenced_messages
        bus = cluster.bus
        stamp, bus.epoch_stamp = bus.epoch_stamp, None
        try:
            # A deposed epoch-0 primary's decision leg arrives late.
            bus.send(
                cluster.coordinator.name,
                "node0",
                "decide",
                payload={"decision": "abort", "_epoch": 0},
            )
            bus._pump("~fence-test", "", bus.now)
        finally:
            bus.epoch_stamp = stamp
        assert cluster.stats.fenced_messages == fenced_before + 1
        assert dict(cluster.gstatus) == statuses_before
        assert cluster.replication.fencing_violations() == []

    def test_current_epoch_messages_are_served(self, fixture):
        adt, table = fixture
        cluster = Cluster(adt, table, shards=2, policy="blocking", replicas=2)
        cluster.run(workload_for(adt, 3), seed=3)
        assert cluster.stats.fenced_messages == 0
        for group in cluster.replication.groups.values():
            assert {epoch for epoch, _ in group.servings} <= {group.epoch}


class TestTerminationAcrossFailover:
    def test_in_doubt_txn_resolves_to_logged_decision(self, fixture):
        """Coordinator dies right after logging the decision; the
        participant dies right before applying it; a backup is promoted
        in between.  The termination protocol must land the logged
        decision on the promoted primary — never a divergent one."""
        adt, table = fixture
        schedule = _LabelCrash(
            {
                ("coord", "decision:post-log"),
                ("node0", "decided:pre-log"),
            }
        )
        cluster = Cluster(
            adt,
            table,
            shards=2,
            policy="blocking",
            replicas=2,
            crash_schedule=schedule,
        )
        cluster.run(workload_for(adt, 1991, 10), seed=1991)
        assert ("coord", "decision:post-log") in schedule.fired
        assert cluster.stats.view_changes >= 1
        audit = audit_global(cluster)
        assert audit.passed, audit.violations
        assert audit.in_doubt == ()
        for gtxn in cluster.coordinator.committed:
            assert cluster.gstatus.get(gtxn) == "COMMITTED"


class TestObserverReads:
    def observer_invocation(self, adt):
        name = "Balance" if adt.name == "Account" else "Top"
        return Invocation(operation=name, args=())

    def test_replica_read_matches_primary_preview(self, fixture):
        adt, table = fixture
        cluster = Cluster(adt, table, shards=2, policy="blocking", replicas=2)
        cluster.run(workload_for(adt, 7), seed=7)
        invocation = self.observer_invocation(adt)
        for shard in cluster.shard_names:
            served = cluster.observer_read(shard, invocation)
            assert served == cluster._shard_object(shard).preview(invocation)
        assert cluster.stats.replica_reads == 2

    def test_falls_back_to_primary_without_live_backup(self, fixture):
        adt, table = fixture
        cluster = Cluster(adt, table, shards=2, policy="blocking", replicas=2)
        cluster.run(workload_for(adt, 7), seed=7)
        for group in cluster.replication.groups.values():
            for backup in group.backups:
                cluster.bus.crash(backup.name)
        invocation = self.observer_invocation(adt)
        served = cluster.observer_read("shard0", invocation)
        assert served == cluster._shard_object("shard0").preview(invocation)


class TestCampaign:
    def test_campaign_passes_and_is_byte_stable(self):
        adt = AccountSpec()
        adts = {"Account": (adt, derive(adt).final_table)}
        first = run_replication_chaos(adts, transactions=8)
        second = run_replication_chaos(adts, transactions=8)
        assert first == second
        assert first["passed"], [
            {
                name: scenario["gates"]
                for name, scenario in cell["scenarios"].items()
                if not scenario["passed"]
            }
            for cell in first["cells"]
            if not cell["passed"]
        ]
        kill = first["cells"][0]["scenarios"]["primary_kill"]
        assert kill["gates"]["all_primaries_killed"]
        assert kill["gates"]["no_committed_loss"]
        assert kill["gates"]["single_primary_per_epoch"]

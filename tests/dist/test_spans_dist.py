"""Cross-node span trees reconstructed from a 2-shard chaos trace.

The acceptance bar for causal tracing: from a single JSONL trace of a
two-shard chaos run, the stitcher rebuilds a *complete* span forest —
every committed global transaction has exactly one root ``txn`` span,
2PC ``prepare``/``decide`` legs appear as children of their ``commit``
attempt with correct parentage, and message duplication/reorder faults
produce no orphan or duplicate spans (idempotent dedup paths emit none).
"""

import io

import pytest

from repro.adts.registry import make_adt
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.dist import Cluster
from repro.obs.events import SpanRecorded
from repro.obs.spans import build_span_trees, critical_path, trace_id_for
from repro.obs.tracers import JsonlTracer, read_trace
from repro.robust import FaultPlan, FaultSpec

CHAOS = FaultSpec(
    msg_delay_rate=0.1,
    msg_duplicate_rate=0.15,
    msg_reorder_rate=0.15,
)


@pytest.fixture(scope="module")
def traced():
    """One seeded 2-shard chaos run: (transcript, events, spans)."""
    adt = make_adt("Account")
    table = derive(adt).final_table
    workload = generate(
        adt,
        "shared",
        WorkloadConfig(transactions=12, operations_per_transaction=6, seed=9),
    )
    buffer = io.StringIO()
    tracer = JsonlTracer(buffer)
    cluster = Cluster(
        adt,
        table,
        shards=2,
        policy="blocking",
        fault_plan=FaultPlan(21, spec=CHAOS),
        tracer=tracer,
    )
    transcript = cluster.run(workload, seed=9)
    tracer.close()
    events = read_trace(io.StringIO(buffer.getvalue()))
    spans = [event for event in events if isinstance(event, SpanRecorded)]
    return transcript, events, spans


class TestSpanForestCompleteness:
    def test_no_orphans_or_duplicates_under_chaos(self, traced):
        _transcript, events, _spans = traced
        forest = build_span_trees(events)
        assert forest.orphans == []
        assert forest.duplicates == []

    def test_every_committed_gtxn_has_exactly_one_root_txn_span(self, traced):
        transcript, events, _spans = traced
        committed = [
            gtxn for gtxn, status in transcript.statuses
            if status == "COMMITTED"
        ]
        assert committed, "seed must commit at least one transaction"
        roots = build_span_trees(events).roots_by_gtxn()
        for gtxn in committed:
            assert len(roots.get(gtxn, [])) == 1, gtxn
            root = roots[gtxn][0]
            assert root.event.name == "txn"
            assert root.event.node == "driver"
            assert root.event.trace_id == trace_id_for(gtxn)
            assert root.event.status == "COMMITTED"

    def test_2pc_legs_are_children_of_their_commit_attempt(self, traced):
        _transcript, _events, spans = traced
        by_id = {span.span_id: span for span in spans}
        legs = [
            span for span in spans
            if span.name in ("prepare", "decide", "commit-one")
        ]
        assert legs, "chaos run never reached 2PC"
        for leg in legs:
            parent = by_id[leg.parent_span_id]
            assert parent.name == "commit"
            assert parent.trace_id == leg.trace_id
            assert parent.gtxn == leg.gtxn

    def test_commit_spans_hang_off_the_root(self, traced):
        _transcript, _events, spans = traced
        by_id = {span.span_id: span for span in spans}
        commits = [span for span in spans if span.name == "commit"]
        assert commits
        for commit in commits:
            assert by_id[commit.parent_span_id].name == "txn"

    def test_critical_path_starts_at_the_root_txn(self, traced):
        transcript, events, _spans = traced
        roots = build_span_trees(events).roots_by_gtxn()
        committed = [
            gtxn for gtxn, status in transcript.statuses
            if status == "COMMITTED"
        ]
        for gtxn in committed:
            path = critical_path(roots[gtxn][0])
            assert path[0].event.name == "txn"
            # Durations along the path never exceed the root's.
            durations = [node.duration for node in path]
            assert durations == sorted(durations, reverse=True)

    def test_span_ids_are_per_actor_unique(self, traced):
        _transcript, _events, spans = traced
        ids = [span.span_id for span in spans]
        assert len(ids) == len(set(ids))
        assert all(span.span_id.startswith(span.node + ":") for span in spans)

"""One-shard cluster runs are transcript-identical to the bare harness.

The distribution layer's headline contract: with one shard, the whole
protocol stack — simulated bus, coordinator, one-phase commit, decision
logs — is an *identity transform* on the run.  ``to_harness()`` converts
the distributed transcript into the harness's ``Transcript`` and the
comparison is full structural equality: per-operation decisions,
resolutions, dependency edges, statuses, final state and seed counters.
"""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.cc.harness import drive
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.dist import run_distributed, shard_workload
from repro.experiments import golden


def make_adt(name):
    if name == "Account":
        return AccountSpec()
    return QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)


@pytest.fixture(scope="module", params=["Account", "QStack"])
def fixture(request):
    adt = make_adt(request.param)
    return adt, derive(adt).final_table


def workload_for(adt, seed):
    return generate(
        adt,
        "obj",
        WorkloadConfig(
            transactions=6, operations_per_transaction=3, seed=seed,
            abort_probability=0.15,
        ),
    )


class TestOneShardParity:
    @pytest.mark.parametrize("policy", ["optimistic", "blocking"])
    @pytest.mark.parametrize("seed", [7, 11, 23, 47])
    def test_transcript_identical_to_bare_scheduler(
        self, fixture, policy, seed
    ):
        adt, table = fixture
        workload = workload_for(adt, seed)
        baseline = drive(
            TableDrivenScheduler(policy=policy), adt, table, workload, "obj"
        )
        transcript = run_distributed(
            adt, table, workload, shards=1, policy=policy, seed=seed
        )
        assert transcript.to_harness() == baseline

    def test_to_harness_refuses_multi_shard(self, fixture):
        adt, table = fixture
        transcript = run_distributed(
            adt, table, workload_for(adt, 7), shards=2, seed=7
        )
        with pytest.raises(ValueError):
            transcript.to_harness()


class TestShardWorkload:
    def test_single_shard_is_degenerate(self, fixture):
        adt, _table = fixture
        workload = workload_for(adt, 7)
        assignment = shard_workload(workload, ["obj"], seed=7)
        assert len(assignment) == len(workload.programs)
        assert all(
            shard == "obj" for program in assignment for shard in program
        )

    def test_assignment_is_seeded(self, fixture):
        adt, _table = fixture
        workload = workload_for(adt, 7)
        names = ["shard0", "shard1"]

        def assignment(seed):
            return shard_workload(workload, names, seed=seed)

        assert assignment(7) == assignment(7)
        assert assignment(7) != assignment(8)
        assert {
            name for program in assignment(7) for name in program
        } <= set(names)

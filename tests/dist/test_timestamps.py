"""Timestamp consistency of distributed trace events (sim-clock truth).

Every event a distributed run emits must carry the ``SimBus`` sim-clock,
so a trace's times are monotone per emitting actor (and, since all
actors share the one bus clock, across the whole run), and a
``MessageSent``'s scheduled delivery must equal send-time + base latency
+ the injected delay — the trace is an exact record of the simulated
network, not a best-effort approximation.
"""

import pytest

from repro.adts.registry import make_adt
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.dist import Cluster
from repro.dist.bus import SimBus
from repro.obs.events import MessageSent, SpanRecorded
from repro.obs.tracers import RecordingTracer
from repro.robust import FaultPlan, FaultSpec


@pytest.fixture(scope="module")
def fixture():
    adt = make_adt("Account")
    return adt, derive(adt).final_table


class TestDeliverAt:
    def test_equals_send_time_plus_base_latency(self):
        tracer = RecordingTracer()
        bus = SimBus(base_latency=1.5, tracer=tracer)
        bus.register_endpoint("a", lambda message: None)
        bus.register_endpoint("b", lambda message: None)
        for gtxn in range(5):
            bus.send("a", "b", "op", gtxn=gtxn)
        for event in tracer.of_type(MessageSent):
            assert event.deliver_at == event.time + 1.5

    def test_equals_send_time_plus_base_latency_plus_injected_delay(self):
        plan = FaultPlan(
            11, spec=FaultSpec(msg_delay_rate=1.0, msg_delay_max=4.0)
        )
        tracer = RecordingTracer()
        bus = SimBus(base_latency=1.5, plan=plan, tracer=tracer)
        bus.register_endpoint("a", lambda message: None)
        bus.register_endpoint("b", lambda message: None)
        for gtxn in range(10):
            bus.send("a", "b", "op", gtxn=gtxn)
        sent = tracer.of_type(MessageSent)
        delays = [
            record for record in plan.records if record.kind == "msg_delay"
        ]
        assert len(sent) == len(delays) == 10  # rate 1.0: every send fires
        for event, record in zip(sent, delays):
            # The plan records the drawn amount as "src->dst:kind+<delay>"
            # to six decimals; the schedule uses the exact draw.
            amount = float(record.detail.rsplit("+", 1)[1])
            assert event.deliver_at == pytest.approx(
                event.time + 1.5 + amount, abs=1e-6
            )


class TestPerNodeMonotonicity:
    def test_chaos_run_times_are_monotone_per_actor(self, fixture):
        adt, table = fixture
        workload = generate(
            adt,
            "shared",
            WorkloadConfig(
                transactions=12, operations_per_transaction=6, seed=5
            ),
        )
        tracer = RecordingTracer()
        cluster = Cluster(
            adt,
            table,
            shards=2,
            policy="blocking",
            fault_plan=FaultPlan(
                3,
                spec=FaultSpec(
                    msg_drop_rate=0.03,
                    msg_delay_rate=0.1,
                    msg_duplicate_rate=0.1,
                    msg_reorder_rate=0.1,
                ),
            ),
            tracer=tracer,
        )
        cluster.run(workload, seed=5)
        assert tracer.events, "chaos run emitted no events"

        # All actors share the bus clock and sync their local schedulers
        # to it before emitting, so the whole stream is monotone — which
        # subsumes per-actor monotonicity.
        times = [event.time for event in tracer.events]
        assert all(b >= a for a, b in zip(times, times[1:]))

        # And explicitly per emitting node for the span stream, the one
        # event family that names its actor.
        last_per_node: dict[str, float] = {}
        for event in tracer.events:
            if isinstance(event, SpanRecorded):
                assert event.time >= last_per_node.get(event.node, 0.0)
                last_per_node[event.node] = event.time
                assert event.end == event.time  # spans close "now"
                assert event.start <= event.end
        assert len(last_per_node) >= 4  # driver, coord, both nodes

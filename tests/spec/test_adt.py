"""Unit tests for ADT specifications and invocation execution."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.errors import UnknownOperationError
from repro.spec.adt import EnumerationBounds, execute_invocation
from repro.spec.operation import Invocation


class TestEnumerationBounds:
    def test_defaults(self):
        bounds = EnumerationBounds()
        assert bounds.capacity == 3
        assert bounds.domain == ("a", "b")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EnumerationBounds(capacity=0)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            EnumerationBounds(domain=())


class TestADTSpecInterface:
    def test_operation_lookup(self, qstack_full):
        assert qstack_full.operation("Push").name == "Push"

    def test_unknown_operation_raises(self, qstack_full):
        with pytest.raises(UnknownOperationError):
            qstack_full.operation("Frobnicate")

    def test_operation_names_order(self, qstack_worked):
        assert qstack_worked.operation_names() == [
            "Push", "Pop", "Deq", "Top", "Size",
        ]

    def test_invocations_cross_product(self, qstack_worked):
        invocations = qstack_worked.invocations()
        # Push has one invocation per domain element; the rest are argless.
        assert Invocation("Push", ("a",)) in invocations
        assert Invocation("Push", ("b",)) in invocations
        assert Invocation("Size") in invocations
        assert len(invocations) == 2 + 4

    def test_invocations_of_single_operation(self, qstack_worked):
        assert qstack_worked.invocations_of("Pop") == [Invocation("Pop")]

    def test_state_list_size(self, qstack_full):
        # sum over lengths 0..3 of 2^k = 15
        assert len(qstack_full.state_list()) == 15

    def test_state_list_respects_tighter_bounds(self, qstack_full):
        bounds = EnumerationBounds(capacity=1, domain=("a",))
        assert set(qstack_full.state_list(bounds)) == {(), ("a",)}


class TestExecuteInvocation:
    def test_execution_record_fields(self, qstack_full):
        execution = execute_invocation(
            qstack_full, ("a",), Invocation("Push", ("b",))
        )
        assert execution.pre_state == ("a",)
        assert execution.post_state == ("a", "b")
        assert execution.returned.outcome == "ok"
        assert execution.trace.structure_modified
        assert execution.pre_simple_vertices == frozenset({(0,)})

    def test_identity_detection(self, qstack_full):
        execution = execute_invocation(qstack_full, ("a",), Invocation("Top"))
        assert execution.is_identity

    def test_executions_are_independent(self, qstack_full):
        invocation = Invocation("Push", ("a",))
        first = execute_invocation(qstack_full, (), invocation)
        second = execute_invocation(qstack_full, (), invocation)
        assert first.post_state == second.post_state == ("a",)

    def test_graph_state_round_trip(self, qstack_full):
        for state in qstack_full.state_list():
            graph = qstack_full.build_graph(state)
            assert qstack_full.abstract_state(graph) == state

"""Unit tests for the bounded enumeration utilities."""

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.spec.adt import EnumerationBounds
from repro.spec.enumeration import (
    all_executions,
    execution_index,
    executions_of,
    reachable_states,
    state_pairs,
)
from repro.spec.operation import Invocation


class TestAllExecutions:
    def test_covers_cross_product(self):
        adt = QStackSpec(capacity=1, domain=("a",))
        executions = list(all_executions(adt))
        # 2 states x 5 invocations (Push(a), Pop, Deq, Top, Size, Replace?, XTop?)
        invocations = adt.invocations()
        assert len(executions) == 2 * len(invocations)

    def test_executions_of_fixed_invocation(self):
        adt = QStackSpec(capacity=2, domain=("a",))
        executions = list(executions_of(adt, Invocation("Pop")))
        assert len(executions) == len(adt.state_list())
        assert all(e.invocation == Invocation("Pop") for e in executions)


class TestReachableStates:
    def test_qstack_full_reachability(self):
        adt = QStackSpec(capacity=2, domain=("a", "b"))
        assert reachable_states(adt) == set(adt.state_list())

    def test_account_reachability(self):
        adt = AccountSpec(max_balance=3, amounts=(1,))
        assert reachable_states(adt) == set(range(4))

    def test_max_steps_limits_exploration(self):
        adt = QStackSpec(capacity=3, domain=("a",))
        one_step = reachable_states(adt, max_steps=1)
        assert one_step == {(), ("a",)}


class TestHelpers:
    def test_state_pairs_is_square(self):
        adt = AccountSpec(max_balance=2, amounts=(1,))
        pairs = list(state_pairs(adt))
        assert len(pairs) == 3 * 3

    def test_execution_index_groups_by_invocation(self):
        adt = QStackSpec(capacity=1, domain=("a",), operations=["Push", "Pop"])
        index = execution_index(adt)
        assert set(index) == {Invocation("Push", ("a",)), Invocation("Pop")}
        assert all(len(executions) == 2 for executions in index.values())

    def test_execution_index_predicate_filter(self):
        adt = QStackSpec(capacity=1, domain=("a",), operations=["Push"])
        index = execution_index(
            adt, predicate=lambda e: e.returned.outcome == "nok"
        )
        (executions,) = index.values()
        assert all(e.returned.outcome == "nok" for e in executions)

"""Unit tests for return values (outcome/result split, Section 2)."""

import pytest

from repro.spec.returnvalue import NOK, OK, ReturnValue, nok, ok, result_only


class TestReturnValue:
    def test_outcome_only(self):
        value = ReturnValue(outcome=OK)
        assert value.has_outcome and not value.has_result

    def test_result_only(self):
        value = ReturnValue(result=7)
        assert value.has_result and not value.has_outcome

    def test_both_components(self):
        value = ReturnValue(outcome=OK, result="e")
        assert value.has_outcome and value.has_result

    def test_neither_component_rejected(self):
        # "an operation always produces a return-value"
        with pytest.raises(ValueError):
            ReturnValue()

    def test_equality_and_hash(self):
        assert ReturnValue(outcome=NOK) == ReturnValue(outcome=NOK)
        assert ReturnValue(result=1) != ReturnValue(result=2)
        assert len({ReturnValue(outcome=OK), ReturnValue(outcome=OK)}) == 1

    def test_repr_variants(self):
        assert "ok" in repr(ok())
        assert "nok" in repr(nok())
        assert "7" in repr(result_only(7))


class TestShorthands:
    def test_ok_with_result(self):
        value = ok("e")
        assert value.outcome == OK and value.result == "e"

    def test_nok(self):
        assert nok() == ReturnValue(outcome=NOK)

    def test_result_only(self):
        assert result_only(0).result == 0
        assert result_only(0).outcome is None

    def test_false_like_results_are_still_results(self):
        # result=0 must not be confused with "no result"
        assert result_only(0).has_result

"""Unit tests for the ADT registry."""

import pytest

from repro.adts.registry import BUILTIN_ADTS, builtin_names, make_adt
from repro.errors import SpecError
from repro.spec.adt import ADTSpec


class TestRegistry:
    def test_all_builtins_constructible(self):
        for name in builtin_names():
            adt = make_adt(name)
            assert isinstance(adt, ADTSpec)
            assert adt.operation_names()

    def test_expected_catalogue(self):
        assert set(BUILTIN_ADTS) == {
            "QStack", "Stack", "FifoQueue", "Set", "Account", "Directory",
            "Bank", "PriorityQueue",
        }

    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(SpecError, match="QStack"):
            make_adt("BTree")

    def test_builtins_have_consistent_state_spaces(self):
        from repro.spec.enumeration import reachable_states

        for name in builtin_names():
            adt = make_adt(name)
            states = set(adt.state_list())
            assert adt.initial_state() in states
            assert reachable_states(adt) <= states

"""Behavioural tests for the Account specification."""

import pytest

from repro.adts.account import AccountSpec
from repro.core.classification import classify_all_operations
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def adt() -> AccountSpec:
    return AccountSpec(max_balance=4, amounts=(1, 2))


def run(adt, state, operation, *args):
    return execute_invocation(adt, state, Invocation(operation, args))


class TestOperations:
    def test_deposit_adds(self, adt):
        execution = run(adt, 1, "Deposit", 2)
        assert execution.post_state == 3
        assert execution.returned.outcome == "ok"

    def test_deposit_saturates_at_cap(self, adt):
        assert run(adt, 4, "Deposit", 2).post_state == 4

    def test_deposit_always_ok(self, adt):
        for state in adt.state_list():
            assert run(adt, state, "Deposit", 1).returned.outcome == "ok"

    def test_withdraw_subtracts(self, adt):
        execution = run(adt, 3, "Withdraw", 2)
        assert execution.post_state == 1
        assert execution.returned.outcome == "ok"

    def test_withdraw_insufficient_funds(self, adt):
        execution = run(adt, 1, "Withdraw", 2)
        assert execution.returned.outcome == "nok"
        assert execution.is_identity

    def test_balance_observes(self, adt):
        execution = run(adt, 3, "Balance")
        assert execution.returned.result == 3
        assert execution.is_identity


class TestClassification:
    def test_recoverability_literature_classes(self, adt):
        # The classic example: Deposit is a pure modifier, Withdraw a
        # modifier-observer, Balance an observer.
        classes = classify_all_operations(adt)
        assert classes["Deposit"].name == "M"
        assert classes["Withdraw"].name == "MO"
        assert classes["Balance"].name == "O"

    def test_no_operation_modifies_structure(self, adt):
        # The account's single component is never inserted, deleted or
        # re-ordered; modification is content-only (observation includes S
        # because locating the component through the ``acct`` reference
        # notes its existence, as with QStack's Top).
        from repro.core.profile import characterize_all

        for name, profile in characterize_all(adt).items():
            assert profile.locality.modifier_kind in (None, "C"), name

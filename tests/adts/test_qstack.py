"""Behavioural tests for the QStack specification (Section 2 semantics)."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.graph.analysis import is_linear_chain
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def adt() -> QStackSpec:
    return QStackSpec(include_enq=True)


def run(adt, state, operation, *args):
    return execute_invocation(adt, state, Invocation(operation, args))


class TestPush:
    def test_push_appends_at_back(self, adt):
        execution = run(adt, ("x",), "Push", "y")
        assert execution.post_state == ("x", "y")
        assert execution.returned.outcome == "ok"

    def test_push_on_empty(self, adt):
        assert run(adt, (), "Push", "a").post_state == ("a",)

    def test_push_overflow(self, adt):
        execution = run(adt, ("a", "a", "a"), "Push", "b")
        assert execution.returned.outcome == "nok"
        assert execution.is_identity

    def test_enq_is_push(self, adt):
        assert run(adt, ("x",), "Enq", "y").post_state == ("x", "y")


class TestPop:
    def test_pop_removes_back(self, adt):
        execution = run(adt, ("x", "y"), "Pop")
        assert execution.post_state == ("x",)
        assert execution.returned.result == "y"

    def test_pop_empty(self, adt):
        execution = run(adt, (), "Pop")
        assert execution.returned.outcome == "nok"
        assert execution.is_identity

    def test_pop_last_element_dangles_both_references(self, adt):
        graph = adt.build_graph(("x",))
        from repro.graph.instrument import InstrumentedGraph

        view = InstrumentedGraph(graph)
        adt.operation("Pop").execute(view)
        assert graph.reference("b") is None
        assert graph.reference("f") is None


class TestDeq:
    def test_deq_removes_front(self, adt):
        execution = run(adt, ("x", "y"), "Deq")
        assert execution.post_state == ("y",)
        assert execution.returned.result == "x"

    def test_deq_empty(self, adt):
        assert run(adt, (), "Deq").returned.outcome == "nok"

    def test_fifo_behaviour(self, adt):
        state = ()
        for element in ("1", "2", "3"):
            state = run(adt, state, "Push", element).post_state
        order = []
        for _ in range(3):
            execution = run(adt, state, "Deq")
            order.append(execution.returned.result)
            state = execution.post_state
        assert order == ["1", "2", "3"]

    def test_lifo_behaviour(self, adt):
        state = ()
        for element in ("1", "2", "3"):
            state = run(adt, state, "Push", element).post_state
        order = []
        for _ in range(3):
            execution = run(adt, state, "Pop")
            order.append(execution.returned.result)
            state = execution.post_state
        assert order == ["3", "2", "1"]


class TestObservers:
    def test_top_returns_back_element(self, adt):
        execution = run(adt, ("x", "y"), "Top")
        assert execution.returned.result == "y"
        assert execution.is_identity

    def test_top_empty(self, adt):
        assert run(adt, (), "Top").returned.outcome == "nok"

    @pytest.mark.parametrize("state", [(), ("a",), ("a", "b", "a")])
    def test_size_counts(self, adt, state):
        assert run(adt, state, "Size").returned.result == len(state)


class TestReplace:
    def test_replace_rewrites_all_matches(self, adt):
        execution = run(adt, ("a", "b", "a"), "Replace", "a", "c")
        assert execution.post_state == ("c", "b", "c")
        assert execution.returned.outcome == "ok"

    def test_replace_without_matches_is_identity(self, adt):
        execution = run(adt, ("b",), "Replace", "a", "c")
        assert execution.is_identity
        assert execution.returned.outcome == "ok"

    def test_replace_on_empty(self, adt):
        assert run(adt, (), "Replace", "a", "b").returned.outcome == "ok"


class TestXTop:
    def test_exchanges_back_two(self, adt):
        assert run(adt, ("w", "x", "y"), "XTop").post_state == ("w", "y", "x")

    def test_two_elements_swaps_front_too(self, adt):
        assert run(adt, ("x", "y"), "XTop").post_state == ("y", "x")

    def test_fewer_than_two_elements_nok(self, adt):
        assert run(adt, ("x",), "XTop").returned.outcome == "nok"
        assert run(adt, (), "XTop").returned.outcome == "nok"

    def test_xtop_twice_is_identity(self, adt):
        once = run(adt, ("a", "b", "a"), "XTop").post_state
        twice = run(adt, once, "XTop").post_state
        assert twice == ("a", "b", "a")

    def test_xtop_touches_no_content(self, adt):
        trace = run(adt, ("a", "b"), "XTop").trace
        assert not trace.content_observed
        assert not trace.content_modified


class TestGraphInvariants:
    def test_every_operation_preserves_the_chain_shape(self, adt):
        from repro.graph.instrument import InstrumentedGraph

        for state in adt.state_list():
            for invocation in adt.invocations():
                graph = adt.build_graph(state)
                view = InstrumentedGraph(graph)
                adt.operation(invocation.operation).execute(
                    view, *invocation.args
                )
                assert is_linear_chain(graph), (state, invocation)

    def test_references_always_front_and_back(self, adt):
        from repro.graph.instrument import InstrumentedGraph

        for state in adt.state_list():
            for invocation in adt.invocations():
                graph = adt.build_graph(state)
                view = InstrumentedGraph(graph)
                adt.operation(invocation.operation).execute(
                    view, *invocation.args
                )
                post = adt.abstract_state(graph)
                front, back = graph.reference("f"), graph.reference("b")
                if post == ():
                    assert front is None and back is None
                else:
                    assert graph.vertex(front).value == post[0]
                    assert graph.vertex(back).value == post[-1]


class TestSpecConstruction:
    def test_operation_subset(self):
        adt = QStackSpec(operations=["Push", "Pop"])
        assert adt.operation_names() == ["Push", "Pop"]

    def test_capacity_respected(self):
        adt = QStackSpec(capacity=1, domain=("a",))
        assert run(adt, ("a",), "Push", "a").returned.outcome == "nok"

    def test_capacity_property(self):
        assert QStackSpec(capacity=5).capacity == 5


class TestEnqAlias:
    def test_enq_shares_push_semantics_and_conflicts(self):
        from repro.core.methodology import derive

        adt = QStackSpec(include_enq=True, operations=["Push", "Enq", "Pop", "Deq"])
        result = derive(adt)
        table = result.final_table
        # The alias inherits Push's classification, reference and entries.
        assert result.profiles["Enq"].op_class == result.profiles["Push"].op_class
        assert result.profiles["Enq"].declared_references == {"b"}
        for other in ("Pop", "Deq"):
            assert table.dependency(other, "Enq") == table.dependency(
                other, "Push"
            ), other

    def test_enq_is_classified_mo(self):
        from repro.core.classification import classify_operation

        adt = QStackSpec(include_enq=True)
        assert classify_operation(adt, "Enq").name == "MO"

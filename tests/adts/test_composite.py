"""Tests for composite (complex) objects and their multilevel semantics."""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.composite import CompositeSpec
from repro.adts.qstack import QStackSpec
from repro.core.dependency import Dependency
from repro.core.methodology import derive
from repro.errors import SpecError
from repro.graph.analysis import hierarchy_depth


@pytest.fixture(scope="module")
def bank() -> CompositeSpec:
    return CompositeSpec(
        "Bank",
        {
            "a": AccountSpec(max_balance=2, amounts=(1,)),
            "b": AccountSpec(max_balance=2, amounts=(1,)),
        },
    )


@pytest.fixture(scope="module")
def bank_result(bank):
    return derive(bank)


class TestStructure:
    def test_operations_are_namespaced(self, bank):
        assert "a.Deposit" in bank.operation_names()
        assert "b.Balance" in bank.operation_names()

    def test_states_are_products(self, bank):
        assert len(bank.state_list()) == 3 * 3

    def test_initial_state(self, bank):
        assert bank.initial_state() == (0, 0)

    def test_graph_is_two_levels_deep(self, bank):
        graph = bank.build_graph((1, 2))
        assert hierarchy_depth(graph) == 2
        assert len(graph) == 2  # one complex vertex per component

    def test_v_simple_uses_paths(self, bank):
        graph = bank.build_graph((0, 0))
        paths = graph.simple_vertices()
        assert all(len(path) == 2 for path in paths)
        assert len(paths) == 2

    def test_graph_round_trip(self, bank):
        for state in bank.state_list():
            assert bank.abstract_state(bank.build_graph(state)) == state

    def test_empty_composite_rejected(self):
        with pytest.raises(SpecError):
            CompositeSpec("Empty", {})

    def test_unknown_component_operation_rejected(self, bank):
        with pytest.raises(SpecError):
            bank.component_invocation("a", "Explode")


class TestDelegation:
    def test_delegation_updates_only_its_component(self, bank):
        execution = bank.run_component((1, 2), "a", "Deposit", 1)
        assert execution.post_state == (2, 2)
        assert execution.returned.outcome == "ok"

    def test_component_failure_propagates(self, bank):
        execution = bank.run_component((0, 1), "a", "Withdraw", 1)
        assert execution.returned.outcome == "nok"
        assert execution.is_identity

    def test_component_state_projection(self, bank):
        assert bank.component_state((1, 2), "b") == 2

    def test_parent_locality_is_the_component_vertex(self, bank):
        execution = bank.run_component((0, 0), "a", "Deposit", 1)
        assert len(execution.trace.content_modified) == 1
        assert execution.trace.references_read == {"a"}

    def test_observer_delegation_does_not_modify(self, bank):
        execution = bank.run_component((1, 2), "b", "Balance")
        assert execution.returned.result == 2
        assert not execution.trace.content_modified


class TestDerivedTable:
    def test_cross_component_operations_never_conflict(self, bank_result):
        table = bank_result.final_table
        for invoked in table.operations:
            for executing in table.operations:
                if invoked.split(".")[0] != executing.split(".")[0]:
                    entry = table.entry(invoked, executing)
                    assert entry.weakest() is Dependency.ND, (invoked, executing)

    def test_within_component_matches_the_plain_account(self, bank_result):
        account_result = derive(AccountSpec(max_balance=2, amounts=(1,)))
        composite = bank_result.final_table
        plain = account_result.final_table
        for invoked in ("Deposit", "Withdraw", "Balance"):
            for executing in ("Deposit", "Withdraw", "Balance"):
                assert composite.dependency(
                    f"a.{invoked}", f"a.{executing}"
                ) == plain.dependency(invoked, executing), (invoked, executing)

    def test_stage_monotonicity(self, bank_result):
        assert bank_result.stage5_table.refines(bank_result.stage3_table)


class TestHeterogeneousComposite:
    def test_queue_and_account(self):
        composite = CompositeSpec(
            "Branch",
            {
                "till": AccountSpec(max_balance=2, amounts=(1,)),
                "queue": QStackSpec(
                    capacity=1, domain=("c",), operations=["Push", "Pop"]
                ),
            },
        )
        execution = composite.run_component((1, ()), "queue", "Push", "c")
        assert execution.post_state == (1, ("c",))
        result = derive(composite)
        assert (
            result.final_table.dependency("till.Deposit", "queue.Push")
            is Dependency.ND
        )
        assert (
            result.final_table.dependency("queue.Pop", "queue.Push")
            is Dependency.AD
        )

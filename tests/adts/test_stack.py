"""Behavioural tests for the Stack specification."""

import pytest

from repro.adts.stack import StackSpec
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def adt() -> StackSpec:
    return StackSpec()


def run(adt, state, operation, *args):
    return execute_invocation(adt, state, Invocation(operation, args))


class TestOperations:
    def test_push_pop_lifo(self, adt):
        state = run(adt, (), "Push", "a").post_state
        state = run(adt, state, "Push", "b").post_state
        execution = run(adt, state, "Pop")
        assert execution.returned.result == "b"
        assert execution.post_state == ("a",)

    def test_push_overflow(self, adt):
        assert run(adt, ("a",) * 3, "Push", "b").returned.outcome == "nok"

    def test_pop_empty(self, adt):
        assert run(adt, (), "Pop").returned.outcome == "nok"

    def test_top_observes_without_removing(self, adt):
        execution = run(adt, ("a", "b"), "Top")
        assert execution.returned.result == "b"
        assert execution.is_identity

    def test_size(self, adt):
        assert run(adt, ("a", "b"), "Size").returned.result == 2

    def test_single_reference_only(self, adt):
        graph = adt.build_graph(("a",))
        assert graph.reference_names() == {"b"}


class TestStateSpace:
    def test_state_count(self, adt):
        assert len(adt.state_list()) == 15

    def test_graph_round_trip(self, adt):
        for state in adt.state_list():
            assert adt.abstract_state(adt.build_graph(state)) == state

    def test_initial_state_empty(self, adt):
        assert adt.initial_state() == ()

"""Behavioural tests for the Set specification (explicit referencing)."""

import pytest

from repro.adts.set_adt import SetSpec
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def adt() -> SetSpec:
    return SetSpec(domain=("a", "b", "c"))


def run(adt, state, operation, *args):
    return execute_invocation(adt, frozenset(state), Invocation(operation, args))


class TestOperations:
    def test_insert_new_element(self, adt):
        execution = run(adt, {"a"}, "Insert", "b")
        assert execution.post_state == frozenset({"a", "b"})
        assert execution.returned.outcome == "ok"

    def test_insert_duplicate_nok(self, adt):
        execution = run(adt, {"a"}, "Insert", "a")
        assert execution.returned.outcome == "nok"
        assert execution.is_identity

    def test_remove_member(self, adt):
        execution = run(adt, {"a", "b"}, "Remove", "a")
        assert execution.post_state == frozenset({"b"})
        assert execution.returned.outcome == "ok"

    def test_remove_absent_nok(self, adt):
        assert run(adt, {"b"}, "Remove", "a").returned.outcome == "nok"

    def test_member(self, adt):
        assert run(adt, {"a"}, "Member", "a").returned.outcome == "ok"
        assert run(adt, {"a"}, "Member", "b").returned.outcome == "nok"

    def test_member_never_modifies(self, adt):
        for state in adt.state_list():
            for element in ("a", "b", "c"):
                execution = execute_invocation(
                    adt, state, Invocation("Member", (element,))
                )
                assert execution.is_identity

    def test_cardinality(self, adt):
        assert run(adt, {"a", "c"}, "Cardinality").returned.result == 2


class TestLocalities:
    def test_member_observes_only_the_target(self, adt):
        execution = run(adt, {"a", "b"}, "Member", "a")
        assert len(execution.trace.structure_observed) == 1

    def test_no_ordering_edges_ever(self, adt):
        for state in adt.state_list():
            assert adt.build_graph(state).ordering_edges() == set()


class TestStateSpace:
    def test_all_subsets_enumerated(self, adt):
        assert len(adt.state_list()) == 8

    def test_graph_round_trip(self, adt):
        for state in adt.state_list():
            assert adt.abstract_state(adt.build_graph(state)) == state

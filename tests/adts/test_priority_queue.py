"""Behavioural tests for the PriorityQueue specification."""

import pytest

from repro.adts.priority_queue import PriorityQueueSpec
from repro.core.dependency import Dependency
from repro.graph.analysis import is_linear_chain
from repro.graph.instrument import InstrumentedGraph
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def adt() -> PriorityQueueSpec:
    return PriorityQueueSpec()


def run(adt, state, operation, *args):
    return execute_invocation(adt, state, Invocation(operation, args))


class TestInsert:
    @pytest.mark.parametrize(
        "state, element, expected",
        [
            ((), 2, (2,)),
            ((1, 3), 2, (1, 2, 3)),  # interior splice
            ((1, 2), 3, (1, 2, 3)),  # at the maximum end
            ((2, 3), 1, (1, 2, 3)),  # at the minimum end
            ((1, 1), 1, (1, 1, 1)),  # duplicates allowed
        ],
    )
    def test_sorted_insertion(self, adt, state, element, expected):
        execution = run(adt, state, "Insert", element)
        assert execution.post_state == expected
        assert execution.returned.outcome == "ok"

    def test_overflow(self, adt):
        execution = run(adt, (1, 2, 3), "Insert", 2)
        assert execution.returned.outcome == "nok"
        assert execution.is_identity

    def test_interior_insert_touches_neighbour_order(self, adt):
        # The splice rewires edges around both neighbours: structural
        # locality is not confined to the reference end.
        execution = run(adt, (1, 3), "Insert", 2)
        assert len(execution.trace.structure_modified) >= 2


class TestExtractAndObserve:
    def test_extract_min_returns_smallest(self, adt):
        execution = run(adt, (1, 2, 3), "ExtractMin")
        assert execution.returned.result == 1
        assert execution.post_state == (2, 3)

    def test_extract_empty(self, adt):
        assert run(adt, (), "ExtractMin").returned.outcome == "nok"

    def test_min_observes(self, adt):
        execution = run(adt, (2, 3), "Min")
        assert execution.returned.result == 2
        assert execution.is_identity

    def test_size(self, adt):
        assert run(adt, (1, 1, 2), "Size").returned.result == 3

    def test_heap_order_over_mixed_sequence(self, adt):
        state = ()
        for element in (3, 1, 2):
            state = run(adt, state, "Insert", element).post_state
        extracted = []
        for _ in range(3):
            execution = run(adt, state, "ExtractMin")
            extracted.append(execution.returned.result)
            state = execution.post_state
        assert extracted == [1, 2, 3]


class TestGraphInvariants:
    def test_chain_and_sortedness_preserved_by_every_operation(self, adt):
        for state in adt.state_list():
            for invocation in adt.invocations():
                graph = adt.build_graph(state)
                view = InstrumentedGraph(graph)
                adt.operation(invocation.operation).execute(
                    view, *invocation.args
                )
                assert is_linear_chain(graph), (state, invocation)
                post = adt.abstract_state(graph)  # raises if unsorted
                assert post == tuple(sorted(post))

    def test_min_reference_tracks_the_minimum(self, adt):
        graph = adt.build_graph((1, 2, 3))
        view = InstrumentedGraph(graph)
        adt.operation("ExtractMin").execute(view)
        assert graph.vertex(graph.reference("min")).value == 2


class TestDerivedConcurrency:
    def test_successful_inserts_commute(self, adt):
        # Sorted insertion is position-determined: two successful Inserts
        # reach the same queue in either order.
        from repro.core.methodology import derive

        entry = derive(adt).final_table.entry("Insert", "Insert")
        signatures = {
            (pair.dependency.name, pair.condition.render())
            for pair in entry.pairs
        }
        assert ("ND", "x_out = ok ∧ y_out = ok") in signatures

    def test_insert_extract_conflict(self, adt):
        from repro.core.methodology import derive

        table = derive(adt).final_table
        assert table.dependency("ExtractMin", "Insert") is Dependency.AD

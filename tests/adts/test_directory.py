"""Behavioural tests for the Directory specification."""

import pytest

from repro.adts.directory import DirectorySpec
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def adt() -> DirectorySpec:
    return DirectorySpec(keys=("k1", "k2"), values=("u", "v"))


def run(adt, state, operation, *args):
    return execute_invocation(adt, frozenset(state), Invocation(operation, args))


class TestOperations:
    def test_insert_new_key(self, adt):
        execution = run(adt, set(), "Insert", "k1", "u")
        assert execution.post_state == frozenset({("k1", "u")})
        assert execution.returned.outcome == "ok"

    def test_insert_existing_key_nok(self, adt):
        execution = run(adt, {("k1", "u")}, "Insert", "k1", "v")
        assert execution.returned.outcome == "nok"
        assert execution.is_identity

    def test_delete(self, adt):
        execution = run(adt, {("k1", "u"), ("k2", "v")}, "Delete", "k1")
        assert execution.post_state == frozenset({("k2", "v")})

    def test_delete_absent_nok(self, adt):
        assert run(adt, set(), "Delete", "k1").returned.outcome == "nok"

    def test_lookup(self, adt):
        assert run(adt, {("k1", "u")}, "Lookup", "k1").returned.result == "u"

    def test_lookup_absent_nok(self, adt):
        assert run(adt, set(), "Lookup", "k1").returned.outcome == "nok"

    def test_update(self, adt):
        execution = run(adt, {("k1", "u")}, "Update", "k1", "v")
        assert execution.post_state == frozenset({("k1", "v")})

    def test_update_absent_nok(self, adt):
        assert run(adt, set(), "Update", "k1", "v").returned.outcome == "nok"


class TestKeyDisjointness:
    def test_operations_on_distinct_keys_commute(self, adt):
        from repro.semantics.commutativity import forward_commute_invocations

        assert forward_commute_invocations(
            adt, Invocation("Insert", ("k1", "u")), Invocation("Delete", ("k2",))
        )
        assert forward_commute_invocations(
            adt, Invocation("Update", ("k1", "v")), Invocation("Lookup", ("k2",))
        )

    def test_operations_on_same_key_conflict(self, adt):
        from repro.semantics.commutativity import forward_commute_invocations

        assert not forward_commute_invocations(
            adt, Invocation("Insert", ("k1", "u")), Invocation("Delete", ("k1",))
        )


class TestStateSpace:
    def test_partial_mappings_enumerated(self, adt):
        # each of 2 keys absent or mapped to one of 2 values: 3^2 states
        assert len(adt.state_list()) == 9

    def test_keys_unique_in_every_state(self, adt):
        for state in adt.state_list():
            keys = [key for key, _ in state]
            assert len(keys) == len(set(keys))

    def test_graph_round_trip(self, adt):
        for state in adt.state_list():
            assert adt.abstract_state(adt.build_graph(state)) == state

"""Behavioural tests for the FIFO queue specification."""

import pytest

from repro.adts.fifo_queue import FifoQueueSpec
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def adt() -> FifoQueueSpec:
    return FifoQueueSpec()


def run(adt, state, operation, *args):
    return execute_invocation(adt, state, Invocation(operation, args))


class TestOperations:
    def test_enq_deq_fifo(self, adt):
        state = run(adt, (), "Enq", "1").post_state
        state = run(adt, state, "Enq", "2").post_state
        execution = run(adt, state, "Deq")
        assert execution.returned.result == "1"
        assert execution.post_state == ("2",)

    def test_enq_overflow(self, adt):
        assert run(adt, ("a",) * 3, "Enq", "b").returned.outcome == "nok"

    def test_deq_empty(self, adt):
        assert run(adt, (), "Deq").returned.outcome == "nok"

    def test_head_peeks_front(self, adt):
        execution = run(adt, ("x", "y"), "Head")
        assert execution.returned.result == "x"
        assert execution.is_identity

    def test_head_empty(self, adt):
        assert run(adt, (), "Head").returned.outcome == "nok"

    def test_length(self, adt):
        assert run(adt, ("x",), "Length").returned.result == 1


class TestReferences:
    def test_disjoint_references_for_mutators(self, adt):
        assert adt.operation("Enq").references_used == {"b"}
        assert adt.operation("Deq").references_used == {"f"}

    def test_references_collapse_on_singleton(self, adt):
        graph = adt.build_graph(("only",))
        assert graph.reference("f") == graph.reference("b")

    def test_references_distinct_with_two_elements(self, adt):
        graph = adt.build_graph(("x", "y"))
        assert graph.reference("f") != graph.reference("b")


class TestStateSpace:
    def test_graph_round_trip(self, adt):
        for state in adt.state_list():
            assert adt.abstract_state(adt.build_graph(state)) == state

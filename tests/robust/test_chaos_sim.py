"""Fault injection in the discrete-event simulator and chaos campaigns."""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.cc.simulator import SimulationConfig, simulate
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.errors import SchedulerError
from repro.experiments import golden
from repro.obs.events import RestartsExhausted
from repro.obs.tracers import RecordingTracer
from repro.robust import (
    DecisionLog,
    FaultPlan,
    FaultSpec,
    MonitoredScheduler,
    RobustStats,
    render_report,
    run_chaos,
)


@pytest.fixture(scope="module")
def adt():
    return QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)


@pytest.fixture(scope="module")
def table(adt):
    return derive(adt).final_table


def contended_workload(adt, seed=21):
    return generate(
        adt,
        "shared",
        WorkloadConfig(
            transactions=10,
            operations_per_transaction=3,
            mean_interarrival=0.1,
            operation_mix={"Pop": 2, "Push": 2, "Deq": 1},
            seed=seed,
        ),
    )


def fingerprint(metrics):
    """The comparable essence of a run: counters and derived observables."""
    return (
        metrics.summary(),
        metrics.blocked_durations,
        metrics.restarts_exhausted,
    )


class TestBitParity:
    def test_no_plan_and_empty_plan_are_identical(self, adt, table):
        workload = contended_workload(adt)
        bare = simulate(
            SimulationConfig(adt=adt, table=table, workload=workload)
        )
        empty = simulate(
            SimulationConfig(
                adt=adt,
                table=table,
                workload=workload,
                fault_plan=FaultPlan(99, FaultSpec()),
            )
        )
        assert fingerprint(bare) == fingerprint(empty)

    def test_same_seed_storms_are_identical(self, adt, table):
        workload = contended_workload(adt)

        def run():
            plan = FaultPlan(5, FaultSpec.storm(0.05))
            metrics = simulate(
                SimulationConfig(
                    adt=adt, table=table, workload=workload, fault_plan=plan
                )
            )
            return fingerprint(metrics), plan.report()

        first, second = run(), run()
        assert first == second

    def test_different_seed_storms_draw_different_schedules(
        self, adt, table
    ):
        workload = contended_workload(adt)
        reports = []
        for seed in (5, 6):
            plan = FaultPlan(seed, FaultSpec.storm(0.1))
            simulate(
                SimulationConfig(
                    adt=adt, table=table, workload=workload, fault_plan=plan
                )
            )
            reports.append(plan.report())
        assert reports[0]["records"] != reports[1]["records"]

    def test_storm_counters_reach_the_registry(self, adt, table):
        plan = FaultPlan(5, FaultSpec.storm(0.1))
        metrics = simulate(
            SimulationConfig(
                adt=adt,
                table=table,
                workload=contended_workload(adt),
                fault_plan=plan,
            )
        )
        assert metrics.robust is plan.stats
        assert plan.stats.faults_injected > 0  # premise: the storm fires
        rendered = metrics.to_registry().render_json()
        assert '"robust_faults_injected"' in rendered


class TestMonitoredSimulation:
    def test_wrapper_and_plan_share_one_counter_sink(self, adt, table):
        stats = RobustStats()
        plan = FaultPlan(7, FaultSpec.storm(0.05), stats=stats)
        metrics = simulate(
            SimulationConfig(
                adt=adt,
                table=table,
                workload=contended_workload(adt),
                fault_plan=plan,
                scheduler_wrapper=lambda s: MonitoredScheduler(
                    s, log=DecisionLog(), check_interval=8, robust_stats=stats
                ),
            )
        )
        assert metrics.robust is stats
        assert stats.invariant_checks > 0
        assert metrics.committed + metrics.aborted == 10


class TestRestartPolicies:
    def test_unknown_policy_rejected(self, adt, table):
        with pytest.raises(SchedulerError):
            simulate(
                SimulationConfig(
                    adt=adt,
                    table=table,
                    workload=contended_workload(adt),
                    restart_policy="fibonacci",
                )
            )

    def test_exponential_cap_bounds_the_backoff(self, adt, table):
        workload = contended_workload(adt)
        base = dict(
            adt=adt,
            table=table,
            workload=workload,
            restart_aborted=True,
            restart_backoff=100.0,
        )
        linear = simulate(SimulationConfig(**base))
        capped = simulate(
            SimulationConfig(
                **base,
                restart_policy="exponential",
                max_restart_backoff=1.0,
            )
        )
        assert linear.restarts > 0  # premise: restarts actually happen
        assert capped.restarts > 0
        # Linear waits restarts*100 time units; the capped exponential
        # waits at most 1.0 per restart, so its makespan collapses.
        assert capped.makespan < linear.makespan

    def test_default_linear_policy_matches_seed_behaviour(self, adt, table):
        workload = contended_workload(adt)
        implicit = simulate(
            SimulationConfig(
                adt=adt, table=table, workload=workload, restart_aborted=True
            )
        )
        explicit = simulate(
            SimulationConfig(
                adt=adt,
                table=table,
                workload=workload,
                restart_aborted=True,
                restart_policy="linear",
            )
        )
        assert fingerprint(implicit) == fingerprint(explicit)


class TestRestartsExhausted:
    def test_exhaustion_is_counted_and_traced(self, adt, table):
        tracer = RecordingTracer()
        metrics = simulate(
            SimulationConfig(
                adt=adt,
                table=table,
                workload=contended_workload(adt),
                restart_aborted=True,
                max_restarts=0,
                tracer=tracer,
            )
        )
        assert metrics.restarts_exhausted > 0
        events = tracer.of_type(RestartsExhausted)
        assert len(events) == metrics.restarts_exhausted
        assert all(event.restarts == 0 for event in events)
        assert "restarts_exhausted=" in metrics.summary()
        assert '"restarts_exhausted"' in metrics.to_registry().render_json()

    def test_successful_restarts_stay_silent(self):
        # An Account workload whose restarts all eventually commit: the
        # counter must stay zero and out of the summary line.
        account = AccountSpec()
        account_table = derive(account).final_table
        workload = generate(
            account,
            "shared",
            WorkloadConfig(
                transactions=8,
                operations_per_transaction=3,
                mean_interarrival=0.1,
                seed=13,
            ),
        )
        metrics = simulate(
            SimulationConfig(
                adt=account,
                table=account_table,
                workload=workload,
                restart_aborted=True,
                max_restarts=50,
            )
        )
        assert metrics.restarts > 0  # premise: retries actually happen
        assert metrics.committed == 8
        assert metrics.restarts_exhausted == 0
        assert "restarts_exhausted=" not in metrics.summary()


class TestChaosCampaign:
    @pytest.fixture(scope="class")
    def matrix(self):
        account = AccountSpec()
        return {"Account": (account, derive(account).final_table)}

    def test_report_is_byte_identical_across_runs(self, matrix):
        def campaign():
            return run_chaos(
                matrix,
                policies=("optimistic",),
                seeds=(3,),
                transactions=4,
                operations=2,
            )

        assert render_report(campaign()) == render_report(campaign())

    def test_campaign_passes_and_carries_evidence(self, matrix):
        report = run_chaos(
            matrix,
            policies=("optimistic", "blocking"),
            seeds=(3,),
            transactions=4,
            operations=2,
        )
        assert report["passed"]
        assert len(report["cells"]) == 2
        for cell in report["cells"]:
            assert cell["crash_sweep"]["passed"]
            assert cell["fault_storm"]["serializable"]
            assert cell["fault_storm"]["faults"]["seed"] == 3

    def test_sweep_can_be_disabled(self, matrix):
        report = run_chaos(
            matrix,
            policies=("optimistic",),
            seeds=(3,),
            transactions=3,
            operations=2,
            crash_sweep_enabled=False,
        )
        assert "crash_sweep" not in report["cells"][0]

"""Acceptance property: crash-and-recover at EVERY decision point.

For each seeded workload, the sweep kills the scheduler immediately
before each decision point, rebuilds it from the decision log by
verified replay, and requires the continuation transcript to be
bit-identical to the uncrashed baseline with a serializable committed
history.  Coverage: two ADTs x both policies x enough seeds that the
matrix exceeds ten distinct workloads.
"""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.experiments import golden
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.robust import baseline_run, crash_sweep

SEEDS = (11, 23, 47)
POLICIES = ("optimistic", "blocking")


@pytest.fixture(scope="module")
def subjects():
    account = AccountSpec()
    qstack = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    return {
        "Account": (account, derive(account).final_table),
        "QStack": (qstack, derive(qstack).final_table),
    }


def workload_for(adt, seed):
    return generate(
        adt,
        "obj",
        WorkloadConfig(
            transactions=5,
            operations_per_transaction=3,
            seed=seed,
            abort_probability=0.15,
        ),
    )


@pytest.mark.parametrize("adt_name", ["Account", "QStack"])
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_every_decision_point_recovers(subjects, adt_name, policy, seed):
    adt, table = subjects[adt_name]
    sweep = crash_sweep(adt, table, workload_for(adt, seed), policy=policy)
    assert sweep.decision_points > 0
    assert len(sweep.results) == sweep.decision_points
    assert sweep.passed, [result.to_dict() for result in sweep.failures]


def test_matrix_covers_at_least_ten_workloads():
    assert 2 * len(POLICIES) * len(SEEDS) >= 10


def test_sweep_report_is_byte_stable(subjects):
    import json

    adt, table = subjects["Account"]
    workload = workload_for(adt, SEEDS[0])
    first = crash_sweep(adt, table, workload, policy="optimistic")
    second = crash_sweep(adt, table, workload, policy="optimistic")
    assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
        second.to_dict(), sort_keys=True
    )


def test_log_grows_with_the_crash_point(subjects):
    adt, table = subjects["Account"]
    sweep = crash_sweep(
        adt, table, workload_for(adt, SEEDS[0]), policy="optimistic"
    )
    records = [result.log_records for result in sweep.results]
    assert records == sorted(records)
    # Later crash points recover from strictly richer logs than point 0.
    assert records[-1] > records[0]


def test_restricted_points_filter(subjects):
    adt, table = subjects["Account"]
    workload = workload_for(adt, SEEDS[0])
    _, decisions = baseline_run(adt, table, workload)
    sweep = crash_sweep(
        adt, table, workload, crash_points=[0, decisions - 1, decisions + 99]
    )
    assert [result.index for result in sweep.results] == [0, decisions - 1]
    assert sweep.passed

"""Invariant monitor: transparency, detection, and the degradation ladder."""

import pytest

from repro.adts.account import AccountSpec
from repro.cc.harness import drive
from repro.cc.reference import ReferenceScheduler
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.errors import InvariantViolationError
from repro.obs.events import DegradedMode, InvariantViolated
from repro.obs.tracers import RecordingTracer
from repro.robust import DecisionLog, MonitoredScheduler, RobustStats


@pytest.fixture(scope="module")
def adt():
    return AccountSpec()


@pytest.fixture(scope="module")
def table(adt):
    return derive(adt).final_table


@pytest.fixture(scope="module")
def workload(adt):
    return generate(
        adt,
        "obj",
        WorkloadConfig(
            transactions=6, operations_per_transaction=3, seed=29,
            abort_probability=0.2,
        ),
    )


def monitored(policy="optimistic", tracer=None, **kwargs):
    stats = kwargs.pop("stats", None) or RobustStats()
    scheduler = MonitoredScheduler(
        TableDrivenScheduler(policy=policy, tracer=tracer),
        log=DecisionLog(),
        robust_stats=stats,
        **kwargs,
    )
    return scheduler, stats


def seed_contention(scheduler, adt):
    """Two overlapping transactions with executed operations."""
    deposit = adt.invocations_of("Deposit")[1]
    withdraw = adt.invocations_of("Withdraw")[1]
    t0 = scheduler.begin()
    t1 = scheduler.begin()
    assert scheduler.request(t0, "obj", deposit).executed
    assert scheduler.request(t1, "obj", withdraw).executed
    return t0, t1


def corrupt_shadow(scheduler, txn):
    """Plant a wrong maintained state in the live shadow index."""
    shadow = scheduler.inner.shadow_index()
    shadow._objects["obj"].excluding[txn] = ("garbage",)


class TestTransparency:
    @pytest.mark.parametrize("policy", ["optimistic", "blocking"])
    def test_clean_run_is_bit_identical_and_audited(
        self, adt, table, workload, policy
    ):
        plain = drive(
            TableDrivenScheduler(policy=policy), adt, table, workload
        )
        scheduler, stats = monitored(policy=policy, check_interval=2)
        assert drive(scheduler, adt, table, workload) == plain
        assert stats.invariant_checks > 0
        assert stats.invariant_violations == 0
        assert stats.degradations == 0
        assert not scheduler.degraded

    def test_check_interval_sets_the_cadence(self, adt, table, workload):
        every, every_stats = monitored(check_interval=1)
        sparse, sparse_stats = monitored(check_interval=5)
        drive(every, adt, table, workload)
        drive(sparse, adt, table, workload)
        assert every_stats.invariant_checks > sparse_stats.invariant_checks

    def test_check_interval_validated(self):
        with pytest.raises(ValueError):
            monitored(check_interval=0)


class TestDetection:
    def test_clean_scheduler_passes_every_invariant(self, adt, table):
        scheduler, _ = monitored()
        scheduler.register_object("obj", adt, table)
        seed_contention(scheduler, adt)
        assert scheduler.check_invariants() == []

    def test_shadow_corruption_is_named(self, adt, table):
        scheduler, _ = monitored()
        scheduler.register_object("obj", adt, table)
        t0, _ = seed_contention(scheduler, adt)
        corrupt_shadow(scheduler, t0)
        failures = scheduler.check_invariants()
        assert [invariant for invariant, _ in failures] == ["shadow_freshness"]

    def test_dependency_cycle_is_named(self, adt, table):
        scheduler, _ = monitored()
        scheduler.register_object("obj", adt, table)
        seed_contention(scheduler, adt)

        class Cyclic:
            def edges(self):
                return {(0, 1): "AD", (1, 0): "CD"}

        scheduler.inner.dependency_graph = lambda: Cyclic()
        failures = scheduler.check_invariants()
        assert [invariant for invariant, _ in failures] == ["acyclicity"]

    def test_tampered_committed_return_breaks_serializability(
        self, adt, table
    ):
        import dataclasses

        from repro.spec.returnvalue import result_only

        scheduler, _ = monitored()
        scheduler.register_object("obj", adt, table)
        t0, _ = seed_contention(scheduler, adt)
        assert scheduler.try_commit(t0).committed
        transaction = scheduler.transaction(t0)
        transaction.records[0] = dataclasses.replace(
            transaction.records[0], returned=result_only(-999)
        )
        failures = dict(scheduler.check_invariants())
        assert "serializability" in failures


class TestDegradationLadder:
    def test_quarantine_rebuild_repairs_the_fast_path(self, adt, table):
        tracer = RecordingTracer()
        scheduler, stats = monitored(tracer=tracer, max_recoveries=2)
        scheduler.register_object("obj", adt, table)
        t0, _ = seed_contention(scheduler, adt)
        corrupt_shadow(scheduler, t0)

        scheduler.enforce()

        assert stats.invariant_violations == 1
        assert stats.recoveries == 1
        assert stats.degradations == 0
        assert not scheduler.degraded
        assert len(tracer.of_type(InvariantViolated)) == 1
        assert scheduler.check_invariants() == []

    def test_exhausted_rebuilds_degrade_to_reference(self, adt, table):
        tracer = RecordingTracer()
        scheduler, stats = monitored(tracer=tracer, max_recoveries=1)
        scheduler.register_object("obj", adt, table)
        t0, t1 = seed_contention(scheduler, adt)

        corrupt_shadow(scheduler, t0)
        scheduler.enforce()  # rung 1: rebuild spends the only recovery
        corrupt_shadow(scheduler, t0)
        scheduler.enforce()  # rung 2: replay into the reference scheduler

        assert scheduler.degraded
        assert isinstance(scheduler.inner, ReferenceScheduler)
        assert stats.degradations == 1
        degraded_events = tracer.of_type(DegradedMode)
        assert [event.reason for event in degraded_events] == [
            "shadow_freshness"
        ]

        # The degraded scheduler keeps serving the run to completion...
        assert scheduler.try_commit(t0).committed
        assert scheduler.try_commit(t1).committed

        # ...with bit-parity against a pure reference execution.
        oracle = ReferenceScheduler()
        oracle.register_object("obj", adt, table)
        seed_contention(oracle, adt)
        assert oracle.try_commit(0).committed
        assert oracle.try_commit(1).committed
        assert (
            scheduler.object("obj").state() == oracle.object("obj").state()
        )

    def test_persistent_corruption_raises(self, adt, table):
        scheduler, stats = monitored(max_recoveries=1)
        scheduler.register_object("obj", adt, table)
        seed_contention(scheduler, adt)
        # Authoritative-state corruption: no rebuild or replay can repair
        # a check that keeps failing.
        scheduler._check_acyclicity = lambda: "forced corruption"

        with pytest.raises(InvariantViolationError):
            scheduler.enforce()
        assert scheduler.degraded
        assert stats.degradations == 1
        assert stats.recoveries == 1

    def test_tainted_log_blocks_degradation(self, adt, table):
        import dataclasses

        # A corruption that slips between two audits can poison a
        # *logged* decision.  The degraded replay then rightly refuses to
        # vouch for the recorded history: the ladder must end in
        # InvariantViolationError naming the tainted log, not in a raw
        # RecoveryError escaping from the replay.
        scheduler, stats = monitored(max_recoveries=0)
        scheduler.register_object("obj", adt, table)
        t0, _ = seed_contention(scheduler, adt)
        target = next(
            index
            for index, record in enumerate(scheduler.log.records)
            if record.kind == "request"
        )
        scheduler.log.records[target] = dataclasses.replace(
            scheduler.log.records[target], returned="ReturnValue(bogus)"
        )
        corrupt_shadow(scheduler, t0)

        with pytest.raises(InvariantViolationError, match="tainted"):
            scheduler.enforce()
        assert not scheduler.degraded
        assert stats.degradations == 0

    def test_counters_flow_into_the_registry(self, adt, table):
        from repro.obs.registry import MetricsRegistry

        scheduler, stats = monitored(max_recoveries=2)
        scheduler.register_object("obj", adt, table)
        t0, _ = seed_contention(scheduler, adt)
        corrupt_shadow(scheduler, t0)
        scheduler.enforce()

        registry = MetricsRegistry()
        stats.publish(registry)
        rendered = registry.render_json()
        assert '"robust_invariant_violations": 1' in rendered
        assert '"robust_recoveries": 1' in rendered


class TestMonitoredReincarnation:
    def test_crash_recovery_keeps_the_monitor_config(self, adt, table):
        stats = RobustStats()
        scheduler, _ = monitored(check_interval=3, stats=stats)
        scheduler.register_object("obj", adt, table)
        t0, t1 = seed_contention(scheduler, adt)

        reborn = scheduler.reincarnate()
        assert isinstance(reborn, MonitoredScheduler)
        assert reborn.check_interval == 3
        assert reborn.robust_stats is stats
        assert reborn.try_commit(t0).committed
        assert reborn.try_commit(t1).committed

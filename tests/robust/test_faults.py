"""Determinism and bit-parity guarantees of the fault plan."""

import json

import pytest

from repro.robust import FAULT_KINDS, FaultPlan, FaultSpec, RobustStats


def consume(plan, rounds=200):
    """A fixed consult script: what a deterministic driver would do."""
    fired = []
    for txn in range(rounds):
        if plan.spurious_abort(txn):
            fired.append(("spurious_abort", txn))
        if plan.op_failure(txn):
            fired.append(("op_failure", txn))
        delay = plan.commit_delay(txn)
        if delay is not None:
            fired.append(("commit_delay", txn))
        mode = plan.cache_poison()
        if mode:
            fired.append(("cache_poison", mode))
        if plan.crash():
            fired.append(("crash", txn))
    return fired


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(spurious_abort_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(crash_rate=-0.1)

    def test_empty_detection(self):
        assert FaultSpec().is_empty
        assert not FaultSpec.storm().is_empty
        assert not FaultSpec(op_failure_rate=0.01).is_empty

    def test_storm_scales_with_intensity(self):
        storm = FaultSpec.storm(0.2)
        assert storm.spurious_abort_rate == 0.2
        assert storm.crash_rate == 0.1


class TestFaultPlanDeterminism:
    def test_same_seed_same_schedule(self):
        a = consume(FaultPlan(42, FaultSpec.storm(0.2)))
        b = consume(FaultPlan(42, FaultSpec.storm(0.2)))
        assert a == b
        assert a  # premise: the storm actually fires

    def test_different_seed_different_schedule(self):
        a = consume(FaultPlan(42, FaultSpec.storm(0.2)))
        b = consume(FaultPlan(43, FaultSpec.storm(0.2)))
        assert a != b

    def test_report_byte_identical_across_runs(self):
        plan_a = FaultPlan(7, FaultSpec.storm(0.1))
        plan_b = FaultPlan(7, FaultSpec.storm(0.1))
        consume(plan_a)
        consume(plan_b)
        assert json.dumps(plan_a.report(), sort_keys=True) == json.dumps(
            plan_b.report(), sort_keys=True
        )

    def test_report_embeds_seed_and_spec(self):
        plan = FaultPlan(9, FaultSpec.storm(0.1))
        consume(plan)
        report = plan.report()
        assert report["seed"] == 9
        assert report["spec"]["spurious_abort_rate"] == 0.1
        assert report["faults_injected"] == len(report["records"])


class TestBitParityGuard:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan(1, FaultSpec())
        assert FaultPlan(1, FaultSpec.storm())

    def test_zero_rate_points_never_fire_and_never_draw(self):
        plan = FaultPlan(1, FaultSpec())
        before = plan._rng.getstate()
        assert consume(plan) == []
        # Bit-parity foundation: an all-zero spec draws nothing from the
        # RNG, so guarded call sites can consult it freely.
        assert plan._rng.getstate() == before
        assert plan.stats.faults_injected == 0

    def test_max_faults_caps_the_campaign(self):
        spec = FaultSpec(spurious_abort_rate=1.0, max_faults=5)
        plan = FaultPlan(3, spec)
        fired = [plan.spurious_abort(txn) for txn in range(20)]
        assert sum(fired) == 5
        assert plan.stats.faults_injected == 5

    def test_max_crashes_caps_crash_events(self):
        plan = FaultPlan(3, FaultSpec(crash_rate=1.0, max_crashes=2))
        assert [plan.crash() for _ in range(6)].count(True) == 2


class TestRobustStats:
    def test_counters_by_kind_track_records(self):
        plan = FaultPlan(11, FaultSpec.storm(0.3))
        consume(plan)
        stats = plan.stats
        assert stats.faults_injected == sum(stats.faults_by_kind.values())
        assert set(stats.faults_by_kind) == set(FAULT_KINDS)

    def test_publish_exports_robust_counters(self):
        from repro.obs.registry import MetricsRegistry

        stats = RobustStats(
            faults_injected=4, recoveries=2, invariant_checks=9,
            invariant_violations=1, degradations=1,
        )
        registry = MetricsRegistry()
        stats.publish(registry)
        rendered = registry.render_json()
        assert '"robust_faults_injected": 4' in rendered
        assert '"robust_recoveries": 2' in rendered
        assert '"robust_degradations": 1' in rendered

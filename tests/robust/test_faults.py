"""Determinism and bit-parity guarantees of the fault plan."""

import json

import pytest

from repro.robust import FAULT_KINDS, FaultPlan, FaultSpec, RobustStats


def consume(plan, rounds=200):
    """A fixed consult script: what a deterministic driver would do."""
    fired = []
    for txn in range(rounds):
        if plan.spurious_abort(txn):
            fired.append(("spurious_abort", txn))
        if plan.op_failure(txn):
            fired.append(("op_failure", txn))
        delay = plan.commit_delay(txn)
        if delay is not None:
            fired.append(("commit_delay", txn))
        mode = plan.cache_poison()
        if mode:
            fired.append(("cache_poison", mode))
        if plan.crash():
            fired.append(("crash", txn))
    return fired


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(spurious_abort_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(crash_rate=-0.1)

    def test_empty_detection(self):
        assert FaultSpec().is_empty
        assert not FaultSpec.storm().is_empty
        assert not FaultSpec(op_failure_rate=0.01).is_empty

    def test_storm_scales_with_intensity(self):
        storm = FaultSpec.storm(0.2)
        assert storm.spurious_abort_rate == 0.2
        assert storm.crash_rate == 0.1


class TestFaultPlanDeterminism:
    def test_same_seed_same_schedule(self):
        a = consume(FaultPlan(42, FaultSpec.storm(0.2)))
        b = consume(FaultPlan(42, FaultSpec.storm(0.2)))
        assert a == b
        assert a  # premise: the storm actually fires

    def test_different_seed_different_schedule(self):
        a = consume(FaultPlan(42, FaultSpec.storm(0.2)))
        b = consume(FaultPlan(43, FaultSpec.storm(0.2)))
        assert a != b

    def test_report_byte_identical_across_runs(self):
        plan_a = FaultPlan(7, FaultSpec.storm(0.1))
        plan_b = FaultPlan(7, FaultSpec.storm(0.1))
        consume(plan_a)
        consume(plan_b)
        assert json.dumps(plan_a.report(), sort_keys=True) == json.dumps(
            plan_b.report(), sort_keys=True
        )

    def test_report_embeds_seed_and_spec(self):
        plan = FaultPlan(9, FaultSpec.storm(0.1))
        consume(plan)
        report = plan.report()
        assert report["seed"] == 9
        assert report["spec"]["spurious_abort_rate"] == 0.1
        assert report["faults_injected"] == len(report["records"])


class TestBitParityGuard:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan(1, FaultSpec())
        assert FaultPlan(1, FaultSpec.storm())

    def test_zero_rate_points_never_fire_and_never_draw(self):
        plan = FaultPlan(1, FaultSpec())
        before = {k: rng.getstate() for k, rng in plan._streams.items()}
        assert consume(plan) == []
        # Bit-parity foundation: an all-zero spec draws nothing from any
        # per-point RNG stream, so guarded call sites can consult it freely.
        assert {k: rng.getstate() for k, rng in plan._streams.items()} == before
        assert plan.stats.faults_injected == 0

    def test_max_faults_caps_the_campaign(self):
        spec = FaultSpec(spurious_abort_rate=1.0, max_faults=5)
        plan = FaultPlan(3, spec)
        fired = [plan.spurious_abort(txn) for txn in range(20)]
        assert sum(fired) == 5
        assert plan.stats.faults_injected == 5

    def test_max_crashes_caps_crash_events(self):
        plan = FaultPlan(3, FaultSpec(crash_rate=1.0, max_crashes=2))
        assert [plan.crash() for _ in range(6)].count(True) == 2


class TestStreamIndependence:
    def test_message_faults_leave_scheduler_streams_byte_identical(self):
        """The PR 4 determinism contract extended to messages: adding
        message-level fault points to a spec (and consulting them) must
        not perturb the five scheduler-level per-point RNG streams."""
        import dataclasses

        base = FaultSpec.storm(0.1)
        extended = dataclasses.replace(
            base,
            msg_drop_rate=0.2,
            msg_duplicate_rate=0.2,
            msg_delay_rate=0.2,
            msg_reorder_rate=0.2,
            partition_rate=0.1,
        )
        plain = FaultPlan(42, base)
        noisy = FaultPlan(42, extended)

        plain_fired = []
        noisy_fired = []
        for txn in range(100):
            # Identical scheduler-level consult script on both plans...
            for plan, fired in ((plain, plain_fired), (noisy, noisy_fired)):
                fired.append(
                    (
                        plan.spurious_abort(txn),
                        plan.op_failure(txn),
                        plan.commit_delay(txn),
                        plan.cache_poison(),
                        plan.crash(),
                    )
                )
            # ...interleaved with message-level consults on one of them
            # (what the SimBus does between scheduler turns).
            noisy.msg_drop("a->b:op")
            noisy.msg_duplicate("a->b:op")
            noisy.msg_delay("a->b:op")
            noisy.msg_reorder("a->b:op")
            noisy.partition(2)
        assert plain_fired == noisy_fired
        for kind in FAULT_KINDS:
            assert (
                plain._streams[kind].getstate()
                == noisy._streams[kind].getstate()
            ), f"stream {kind!r} perturbed by message-fault consults"

    def test_message_points_have_private_streams(self):
        from repro.robust import MESSAGE_FAULT_KINDS

        plan = FaultPlan(1, FaultSpec.message_storm(0.5))
        before = {k: plan._streams[k].getstate() for k in FAULT_KINDS}
        for _ in range(50):
            plan.msg_drop()
            plan.msg_duplicate()
            plan.msg_delay()
            plan.msg_reorder()
            plan.partition(3)
        # Scheduler streams untouched; every consulted message stream
        # advanced.
        assert {k: plan._streams[k].getstate() for k in FAULT_KINDS} == before
        fired_kinds = {record.kind for record in plan.records}
        assert fired_kinds <= set(MESSAGE_FAULT_KINDS)
        assert plan.stats.faults_injected > 0

    def test_replica_crash_point_leaves_existing_streams_byte_identical(self):
        """The same contract extended to replication: adding (and
        consulting) the ``replica_crash`` point must not perturb any
        scheduler- or message-level stream — pre-replication plans stay
        bit-identical."""
        import dataclasses

        from repro.robust import MESSAGE_FAULT_KINDS

        base = FaultSpec.dist_storm(0.1)
        extended = dataclasses.replace(
            base, replica_crash_rate=0.3, max_replica_crashes=10
        )
        plain = FaultPlan(42, base)
        noisy = FaultPlan(42, extended)

        plain_fired = []
        noisy_fired = []
        for txn in range(100):
            for plan, fired in ((plain, plain_fired), (noisy, noisy_fired)):
                fired.append(
                    (
                        plan.spurious_abort(txn),
                        plan.crash(),
                        plan.msg_drop("a->b:op"),
                        plan.msg_delay("a->b:op"),
                        plan.partition(2),
                    )
                )
            noisy.replica_crash(2)
        assert plain_fired == noisy_fired
        for kind in FAULT_KINDS + MESSAGE_FAULT_KINDS:
            assert (
                plain._streams[kind].getstate()
                == noisy._streams[kind].getstate()
            ), f"stream {kind!r} perturbed by replica_crash consults"
        assert any(
            record.kind == "replica_crash" for record in noisy.records
        )

    def test_zero_rate_replica_crash_never_draws(self):
        plan = FaultPlan(7, FaultSpec.dist_storm(0.1))
        before = plan._streams["replica_crash"].getstate()
        for _ in range(50):
            assert plan.replica_crash(3) is None
        assert plan._streams["replica_crash"].getstate() == before


class TestRobustStats:
    def test_counters_by_kind_track_records(self):
        plan = FaultPlan(11, FaultSpec.storm(0.3))
        consume(plan)
        stats = plan.stats
        assert stats.faults_injected == sum(stats.faults_by_kind.values())
        assert set(stats.faults_by_kind) == set(FAULT_KINDS)

    def test_publish_exports_robust_counters(self):
        from repro.obs.registry import MetricsRegistry

        stats = RobustStats(
            faults_injected=4, recoveries=2, invariant_checks=9,
            invariant_violations=1, degradations=1,
        )
        registry = MetricsRegistry()
        stats.publish(registry)
        rendered = registry.render_json()
        assert '"robust_faults_injected": 4' in rendered
        assert '"robust_recoveries": 2' in rendered
        assert '"robust_degradations": 1' in rendered

"""Decision-log recording, crash recovery by replay, and durability."""

import pytest

from repro.adts.account import AccountSpec
from repro.cc.harness import drive
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.errors import RecoveryError
from repro.robust import Decision, DecisionLog, LoggingScheduler, recover


@pytest.fixture(scope="module")
def adt():
    return AccountSpec()


@pytest.fixture(scope="module")
def table(adt):
    return derive(adt).final_table


@pytest.fixture(scope="module")
def workload(adt):
    return generate(
        adt,
        "obj",
        WorkloadConfig(
            transactions=6, operations_per_transaction=3, seed=17,
            abort_probability=0.2,
        ),
    )


def logged_run(adt, table, workload, policy="optimistic"):
    scheduler = LoggingScheduler(TableDrivenScheduler(policy=policy))
    transcript = drive(scheduler, adt, table, workload)
    return scheduler, transcript


class TestLoggingTransparency:
    @pytest.mark.parametrize("policy", ["optimistic", "blocking"])
    def test_wrapper_is_invisible_to_the_harness(
        self, adt, table, workload, policy
    ):
        plain = drive(
            TableDrivenScheduler(policy=policy), adt, table, workload
        )
        _, logged = logged_run(adt, table, workload, policy=policy)
        assert plain == logged

    def test_every_call_is_recorded(self, adt, table, workload):
        scheduler, transcript = logged_run(adt, table, workload)
        kinds = [record.kind for record in scheduler.log.records]
        assert kinds[0] == "register"
        assert kinds.count("begin") == len(workload.programs)
        assert kinds.count("request") == len(transcript.op_decisions)

    def test_policy_captured(self, adt, table, workload):
        scheduler, _ = logged_run(adt, table, workload, policy="blocking")
        assert scheduler.log.policy == "blocking"


class TestPolicySwitchRecords:
    """Per-object discipline switches are decisions too: un-logged, a
    recovered scheduler (or a backup replica applying the shipped log)
    would replay every subsequent request under the base policy and
    diverge."""

    def switched_run(self, adt, table, workload):
        from repro.spec.operation import Invocation

        scheduler, _ = logged_run(adt, table, workload)
        scheduler.set_object_policy("obj", "queued")
        # Post-switch activity that recovery must replay under the
        # switched discipline, not the base one.
        txn = scheduler.begin()
        scheduler.request(txn, "obj", Invocation("Deposit", (5,)))
        scheduler.try_commit(txn)
        return scheduler

    def test_switch_is_logged(self, adt, table, workload):
        scheduler = self.switched_run(adt, table, workload)
        switches = [
            record
            for record in scheduler.log.records
            if record.kind == "policy"
        ]
        assert [
            (record.object_name, record.outcome) for record in switches
        ] == [("obj", "queued")]

    def test_recovery_replays_the_switch(self, adt, table, workload):
        scheduler = self.switched_run(adt, table, workload)
        recovered = recover(scheduler.log)
        assert recovered.object_policy("obj") == "queued"

    def test_rejected_switch_logs_nothing(self, adt, table):
        from repro.errors import SchedulerError
        from repro.spec.operation import Invocation

        scheduler = LoggingScheduler(
            TableDrivenScheduler(policy="optimistic")
        )
        scheduler.register_object("obj", adt, table)
        txn = scheduler.begin()
        scheduler.request(txn, "obj", Invocation("Deposit", (5,)))
        records_before = len(scheduler.log.records)
        with pytest.raises(SchedulerError):
            scheduler.set_object_policy("obj", "queued")
        assert len(scheduler.log.records) == records_before

    def test_policy_record_round_trips_through_jsonl(
        self, adt, table, workload, tmp_path
    ):
        scheduler = self.switched_run(adt, table, workload)
        path = str(tmp_path / "switched.jsonl")
        scheduler.log.dump_jsonl(path)

        def resolve(_name, _adt_name, _state_repr):
            return adt, table, adt.initial_state()

        loaded = DecisionLog.load(path, resolve)
        recovered = recover(loaded)
        assert recovered.object_policy("obj") == "queued"


class TestRecovery:
    @pytest.mark.parametrize("policy", ["optimistic", "blocking"])
    def test_replay_rebuilds_identical_state(
        self, adt, table, workload, policy
    ):
        scheduler, _ = logged_run(adt, table, workload, policy=policy)
        recovered = recover(scheduler.log)
        assert recovered.policy == policy
        assert (
            recovered.object("obj").state()
            == scheduler.object("obj").state()
        )
        # The full counter state is rebuilt, not approximated.
        assert recovered.stats == scheduler.inner.stats
        assert (
            recovered.dependency_graph().edges()
            == scheduler.dependency_graph().edges()
        )
        for txn in range(len(workload.programs)):
            assert (
                recovered.transaction(txn).status
                is scheduler.transaction(txn).status
            )

    def test_divergent_log_raises_recovery_error(self, adt, table, workload):
        scheduler, _ = logged_run(adt, table, workload)
        log = scheduler.log
        # Corrupt one recorded outcome: replay must refuse, not diverge
        # silently.
        target = next(
            index
            for index, record in enumerate(log.records)
            if record.kind == "request" and record.outcome == "executed"
        )
        import dataclasses

        log.records[target] = dataclasses.replace(
            log.records[target], returned="ReturnValue(outcome='bogus')"
        )
        with pytest.raises(RecoveryError):
            recover(log)

    def test_unknown_kind_raises(self):
        log = DecisionLog()
        log.append(Decision(kind="meddle"))
        with pytest.raises(RecoveryError):
            recover(log)

    @pytest.mark.parametrize("compiled", [True, False])
    def test_recovery_preserves_dispatch_mode(
        self, adt, table, workload, compiled
    ):
        # A reference run must recover onto the reference path (and a
        # compiled run onto the compiled one): recovery rebuilding the
        # scheduler with constructor defaults would silently flip the
        # dispatch mode at the first crash.
        scheduler = LoggingScheduler(
            TableDrivenScheduler(policy="blocking", compiled=compiled)
        )
        drive(scheduler, adt, table, workload)
        reborn = scheduler.reincarnate()
        assert reborn.inner.compiled is compiled

    def test_divergent_blocked_set_raises_recovery_error(
        self, adt, table, workload
    ):
        # A "blocked" outcome alone cannot certify the wait graph — and
        # deadlock victims are chosen from that graph inside the call,
        # unlogged.  A blocker-set mismatch is taint, not a recovery.
        scheduler, _ = logged_run(adt, table, workload, policy="blocking")
        log = scheduler.log
        target = next(
            (
                index
                for index, record in enumerate(log.records)
                if record.kind == "request" and record.outcome == "blocked"
            ),
            None,
        )
        if target is None:
            pytest.skip("workload produced no blocked request")
        import dataclasses

        record = log.records[target]
        log.records[target] = dataclasses.replace(
            record, blocked_on=tuple(record.blocked_on) + (999,)
        )
        with pytest.raises(RecoveryError, match="blocked on"):
            recover(log)


class TestDurability:
    def test_jsonl_round_trip(self, adt, table, workload, tmp_path):
        scheduler, _ = logged_run(adt, table, workload, policy="blocking")
        path = tmp_path / "decisions.jsonl"
        scheduler.log.dump_jsonl(str(path))

        def resolve(_name, _adt_name, _state_repr):
            return adt, table, adt.initial_state()

        loaded = DecisionLog.load(str(path), resolve=resolve)
        assert loaded.policy == "blocking"
        assert loaded.records == scheduler.log.records
        recovered = recover(loaded)
        assert (
            recovered.object("obj").state()
            == scheduler.object("obj").state()
        )

    def test_streaming_attachment_replays_history(
        self, adt, table, workload, tmp_path
    ):
        scheduler, _ = logged_run(adt, table, workload)
        path = tmp_path / "late.jsonl"
        with open(path, "w", encoding="utf-8") as stream:
            scheduler.log.attach_jsonl(stream)
            # Appends after attachment stream through immediately.
            txn = scheduler.begin()
            scheduler.abort(txn)
        lines = path.read_text().strip().splitlines()
        # header + all prior records + begin + abort
        assert len(lines) == 1 + len(scheduler.log.records)

    def test_load_without_resolver_refuses_replay(
        self, adt, table, workload, tmp_path
    ):
        scheduler, _ = logged_run(adt, table, workload)
        path = tmp_path / "bare.jsonl"
        scheduler.log.dump_jsonl(str(path))
        loaded = DecisionLog.load(str(path))
        assert len(loaded.records) == len(scheduler.log.records)
        with pytest.raises(RecoveryError):
            recover(loaded)

    def test_corrupt_jsonl_raises(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"kind": "begin", "txn": 0}\nnot json\n')
        with pytest.raises(RecoveryError):
            DecisionLog.load(str(path))

    def test_dump_is_atomic_and_leaves_no_temp_files(
        self, adt, table, workload, tmp_path
    ):
        scheduler, _ = logged_run(adt, table, workload)
        path = tmp_path / "decisions.jsonl"
        # Pre-existing durable copy: a dump must replace it atomically.
        path.write_text("stale previous dump\n")
        scheduler.log.dump_jsonl(str(path))
        assert [p.name for p in tmp_path.iterdir()] == ["decisions.jsonl"]
        text = path.read_text()
        assert text.endswith("\n")
        assert "stale" not in text

    def test_dump_failure_keeps_the_previous_durable_copy(self, tmp_path):
        log = DecisionLog()
        log.append(Decision(kind="begin", txn=0))
        path = tmp_path / "decisions.jsonl"
        path.write_text("previous durable copy\n")
        # Sabotage serialisation mid-dump: the temp file must be cleaned
        # up and the previous durable copy left untouched.
        log.records.append(object())  # no .to_dict() -> AttributeError
        with pytest.raises(AttributeError):
            log.dump_jsonl(str(path))
        assert path.read_text() == "previous durable copy\n"
        assert [p.name for p in tmp_path.iterdir()] == ["decisions.jsonl"]


class TestTornTailTolerance:
    def dumped(self, adt, table, workload, tmp_path):
        scheduler, _ = logged_run(adt, table, workload)
        path = tmp_path / "decisions.jsonl"
        scheduler.log.dump_jsonl(str(path))
        return scheduler.log, path, path.read_bytes()

    def test_truncation_at_every_byte_of_the_last_record(
        self, adt, table, workload, tmp_path
    ):
        log, path, raw = self.dumped(adt, table, workload, tmp_path)
        total = len(log.records)
        last_line_start = raw.rstrip(b"\n").rfind(b"\n") + 1
        # Every cut inside the final record (the crash-mid-append
        # signature: partial line, no trailing newline) must load with
        # the tail discarded and counted — never raise.
        for cut in range(last_line_start + 1, len(raw) - 1):
            path.write_bytes(raw[:cut])
            loaded = DecisionLog.load(str(path))
            assert loaded.torn_tail_records == 1, f"cut at byte {cut}"
            assert len(loaded.records) == total - 1
            assert loaded.records == log.records[:-1]

    def test_truncation_at_the_record_boundary_is_clean(
        self, adt, table, workload, tmp_path
    ):
        log, path, raw = self.dumped(adt, table, workload, tmp_path)
        last_line_start = raw.rstrip(b"\n").rfind(b"\n") + 1
        # Cut exactly at the boundary: the file ends with the previous
        # record's newline — nothing is torn.
        path.write_bytes(raw[:last_line_start])
        loaded = DecisionLog.load(str(path))
        assert loaded.torn_tail_records == 0
        assert loaded.records == log.records[:-1]

    def test_missing_final_newline_alone_is_not_a_torn_tail(
        self, adt, table, workload, tmp_path
    ):
        log, path, raw = self.dumped(adt, table, workload, tmp_path)
        path.write_bytes(raw[:-1])  # complete record, newline lost
        loaded = DecisionLog.load(str(path))
        assert loaded.torn_tail_records == 0
        assert loaded.records == log.records

    def test_corruption_before_the_tail_still_raises(
        self, adt, table, workload, tmp_path
    ):
        _log, path, raw = self.dumped(adt, table, workload, tmp_path)
        lines = raw.split(b"\n")
        lines[2] = b"garbage mid-log"
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(RecoveryError):
            DecisionLog.load(str(path))

    def test_newline_terminated_garbage_tail_still_raises(
        self, adt, table, workload, tmp_path
    ):
        _log, path, raw = self.dumped(adt, table, workload, tmp_path)
        path.write_bytes(raw + b"garbage\n")
        with pytest.raises(RecoveryError):
            DecisionLog.load(str(path))


class TestProtocolRecords:
    def test_extra_field_round_trips_through_jsonl(self, tmp_path):
        import json as json_module

        log = DecisionLog()
        extra = json_module.dumps({"gtxn": 3, "ad": [1], "cd": [2]})
        log.append(Decision(kind="2pc-prepared", txn=0, extra=extra))
        path = tmp_path / "protocol.jsonl"
        log.dump_jsonl(str(path))
        loaded = DecisionLog.load(str(path))
        assert loaded.records == log.records
        assert json_module.loads(loaded.records[0].extra)["gtxn"] == 3

    def test_protocol_records_are_skipped_by_scheduler_replay(
        self, adt, table, workload
    ):
        scheduler, _ = logged_run(adt, table, workload)
        plain = recover(scheduler.log)
        scheduler.log.append(
            Decision(kind="2pc-attach", txn=0, extra='{"gtxn": 0}')
        )
        scheduler.log.append(
            Decision(kind="2pc-commit", txn=0, extra='{"gtxn": 0}')
        )
        recovered = recover(scheduler.log)
        assert (
            recovered.object("obj").state() == plain.object("obj").state()
        )
        assert recovered.stats == plain.stats


class TestReincarnation:
    def test_reincarnate_continues_on_the_same_log(self, adt, table):
        scheduler = LoggingScheduler(TableDrivenScheduler())
        scheduler.register_object("obj", adt, table)
        t0 = scheduler.begin()
        deposit = adt.invocations_of("Deposit")[0]
        scheduler.request(t0, "obj", deposit)

        reborn = scheduler.reincarnate()
        assert reborn.log is scheduler.log
        assert reborn.object("obj").state() == scheduler.object("obj").state()
        # The recovered scheduler keeps serving the same transactions.
        assert reborn.try_commit(t0).committed

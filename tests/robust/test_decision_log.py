"""Decision-log recording, crash recovery by replay, and durability."""

import pytest

from repro.adts.account import AccountSpec
from repro.cc.harness import drive
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.errors import RecoveryError
from repro.robust import Decision, DecisionLog, LoggingScheduler, recover


@pytest.fixture(scope="module")
def adt():
    return AccountSpec()


@pytest.fixture(scope="module")
def table(adt):
    return derive(adt).final_table


@pytest.fixture(scope="module")
def workload(adt):
    return generate(
        adt,
        "obj",
        WorkloadConfig(
            transactions=6, operations_per_transaction=3, seed=17,
            abort_probability=0.2,
        ),
    )


def logged_run(adt, table, workload, policy="optimistic"):
    scheduler = LoggingScheduler(TableDrivenScheduler(policy=policy))
    transcript = drive(scheduler, adt, table, workload)
    return scheduler, transcript


class TestLoggingTransparency:
    @pytest.mark.parametrize("policy", ["optimistic", "blocking"])
    def test_wrapper_is_invisible_to_the_harness(
        self, adt, table, workload, policy
    ):
        plain = drive(
            TableDrivenScheduler(policy=policy), adt, table, workload
        )
        _, logged = logged_run(adt, table, workload, policy=policy)
        assert plain == logged

    def test_every_call_is_recorded(self, adt, table, workload):
        scheduler, transcript = logged_run(adt, table, workload)
        kinds = [record.kind for record in scheduler.log.records]
        assert kinds[0] == "register"
        assert kinds.count("begin") == len(workload.programs)
        assert kinds.count("request") == len(transcript.op_decisions)

    def test_policy_captured(self, adt, table, workload):
        scheduler, _ = logged_run(adt, table, workload, policy="blocking")
        assert scheduler.log.policy == "blocking"


class TestRecovery:
    @pytest.mark.parametrize("policy", ["optimistic", "blocking"])
    def test_replay_rebuilds_identical_state(
        self, adt, table, workload, policy
    ):
        scheduler, _ = logged_run(adt, table, workload, policy=policy)
        recovered = recover(scheduler.log)
        assert recovered.policy == policy
        assert (
            recovered.object("obj").state()
            == scheduler.object("obj").state()
        )
        # The full counter state is rebuilt, not approximated.
        assert recovered.stats == scheduler.inner.stats
        assert (
            recovered.dependency_graph().edges()
            == scheduler.dependency_graph().edges()
        )
        for txn in range(len(workload.programs)):
            assert (
                recovered.transaction(txn).status
                is scheduler.transaction(txn).status
            )

    def test_divergent_log_raises_recovery_error(self, adt, table, workload):
        scheduler, _ = logged_run(adt, table, workload)
        log = scheduler.log
        # Corrupt one recorded outcome: replay must refuse, not diverge
        # silently.
        target = next(
            index
            for index, record in enumerate(log.records)
            if record.kind == "request" and record.outcome == "executed"
        )
        import dataclasses

        log.records[target] = dataclasses.replace(
            log.records[target], returned="ReturnValue(outcome='bogus')"
        )
        with pytest.raises(RecoveryError):
            recover(log)

    def test_unknown_kind_raises(self):
        log = DecisionLog()
        log.append(Decision(kind="meddle"))
        with pytest.raises(RecoveryError):
            recover(log)


class TestDurability:
    def test_jsonl_round_trip(self, adt, table, workload, tmp_path):
        scheduler, _ = logged_run(adt, table, workload, policy="blocking")
        path = tmp_path / "decisions.jsonl"
        scheduler.log.dump_jsonl(str(path))

        def resolve(_name, _adt_name, _state_repr):
            return adt, table, adt.initial_state()

        loaded = DecisionLog.load(str(path), resolve=resolve)
        assert loaded.policy == "blocking"
        assert loaded.records == scheduler.log.records
        recovered = recover(loaded)
        assert (
            recovered.object("obj").state()
            == scheduler.object("obj").state()
        )

    def test_streaming_attachment_replays_history(
        self, adt, table, workload, tmp_path
    ):
        scheduler, _ = logged_run(adt, table, workload)
        path = tmp_path / "late.jsonl"
        with open(path, "w", encoding="utf-8") as stream:
            scheduler.log.attach_jsonl(stream)
            # Appends after attachment stream through immediately.
            txn = scheduler.begin()
            scheduler.abort(txn)
        lines = path.read_text().strip().splitlines()
        # header + all prior records + begin + abort
        assert len(lines) == 1 + len(scheduler.log.records)

    def test_load_without_resolver_refuses_replay(
        self, adt, table, workload, tmp_path
    ):
        scheduler, _ = logged_run(adt, table, workload)
        path = tmp_path / "bare.jsonl"
        scheduler.log.dump_jsonl(str(path))
        loaded = DecisionLog.load(str(path))
        assert len(loaded.records) == len(scheduler.log.records)
        with pytest.raises(RecoveryError):
            recover(loaded)

    def test_corrupt_jsonl_raises(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"kind": "begin", "txn": 0}\nnot json\n')
        with pytest.raises(RecoveryError):
            DecisionLog.load(str(path))


class TestReincarnation:
    def test_reincarnate_continues_on_the_same_log(self, adt, table):
        scheduler = LoggingScheduler(TableDrivenScheduler())
        scheduler.register_object("obj", adt, table)
        t0 = scheduler.begin()
        deposit = adt.invocations_of("Deposit")[0]
        scheduler.request(t0, "obj", deposit)

        reborn = scheduler.reincarnate()
        assert reborn.log is scheduler.log
        assert reborn.object("obj").state() == scheduler.object("obj").state()
        # The recovered scheduler keeps serving the same transactions.
        assert reborn.try_commit(t0).committed

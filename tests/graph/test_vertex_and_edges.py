"""Unit tests for vertices, edges and the id allocator."""

from repro.graph.edges import ComposedOfEdge, OrderingEdge
from repro.graph.object_graph import ObjectGraph
from repro.graph.vertex import Vertex, VertexIdAllocator


class TestVertex:
    def test_display_name_prefers_label(self):
        assert Vertex(vid=3, label="B").display_name() == "B"

    def test_display_name_falls_back_to_id(self):
        assert Vertex(vid=3).display_name() == "v3"

    def test_primitive_is_not_complex(self):
        assert not Vertex(vid=0, value=42).is_complex()

    def test_nested_graph_is_complex(self):
        assert Vertex(vid=0, value=ObjectGraph("inner")).is_complex()


class TestAllocator:
    def test_ids_are_unique_and_increasing(self):
        allocator = VertexIdAllocator()
        ids = [allocator.allocate() for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_independent_allocators_restart(self):
        first = VertexIdAllocator().allocate()
        second = VertexIdAllocator().allocate()
        assert first == second == 0


class TestEdges:
    def test_ordering_edge_endpoints(self):
        edge = OrderingEdge(source=1, target=2)
        assert edge.endpoints() == (1, 2)

    def test_ordering_edges_hashable_and_directional(self):
        assert OrderingEdge(1, 2) != OrderingEdge(2, 1)
        assert len({OrderingEdge(1, 2), OrderingEdge(1, 2)}) == 1

    def test_composed_of_edge_identity(self):
        assert ComposedOfEdge(3) == ComposedOfEdge(3)
        assert ComposedOfEdge(3) != ComposedOfEdge(4)

"""Unit tests for the graph renderers (Figures 1 and 2 machinery)."""

from repro.graph.builder import GraphBuilder, build_chain
from repro.graph.render import render_ascii, render_chain, render_dot


def figure1_graph():
    inner = (
        GraphBuilder("D")
        .component("E", value="e")
        .component("F", value="f")
        .order("E", "F")
        .order("F", "E")
        .build()
    )
    return (
        GraphBuilder("A")
        .component("B", value="b")
        .component("C", value="c")
        .component("D", value=inner)
        .order("B", "C")
        .order("C", "D")
        .build()
    )


class TestAsciiRender:
    def test_mentions_all_components(self):
        text = render_ascii(figure1_graph())
        for label in ("A", "B", "C", "D", "E", "F"):
            assert label in text

    def test_shows_ordering_edges(self):
        text = render_ascii(figure1_graph())
        assert "B..>C" in text
        assert "C..>D" in text

    def test_shows_references(self):
        graph = build_chain("Q", ["x"], references=[("b", 0)])
        assert "ref b" in render_ascii(graph)

    def test_dangling_reference_rendered(self):
        graph = build_chain("Q", [], references=[("f", None)])
        assert "ref f -> -" in render_ascii(graph)


class TestDotRender:
    def test_valid_digraph_wrapper(self):
        text = render_dot(figure1_graph())
        assert text.startswith("digraph object_graph {")
        assert text.rstrip().endswith("}")

    def test_ordering_edges_dotted(self):
        assert "style=dotted" in render_dot(figure1_graph())

    def test_nested_objects_are_clusters(self):
        assert "subgraph cluster_" in render_dot(figure1_graph())

    def test_references_dashed(self):
        graph = build_chain("Q", ["x"], references=[("b", 0)])
        assert "style=dashed" in render_dot(graph)


class TestChainRender:
    def test_front_first_layout(self):
        graph = build_chain(
            "QStack", ["e1", "e2", "e3"], references=[("f", 0), ("b", 2)]
        )
        text = render_chain(graph)
        assert text.index("e1") < text.index("e2") < text.index("e3")
        assert "[f]" in text
        assert "[b]" in text

    def test_empty_chain(self):
        graph = build_chain("QStack", [], references=[("f", None), ("b", None)])
        assert "<empty>" in render_chain(graph)

    def test_non_chain_falls_back_to_ascii(self):
        graph = GraphBuilder("A").component("B").component("C").build()
        # no ordering edges over two components -> not a linear chain
        assert render_chain(graph) == render_ascii(graph)

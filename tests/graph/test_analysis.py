"""Unit tests for graph analysis helpers."""

from repro.graph.analysis import (
    component_count,
    has_ordering_cycle,
    hierarchy_depth,
    is_linear_chain,
    ordering_walk,
)
from repro.graph.builder import GraphBuilder, build_chain
from repro.graph.object_graph import ObjectGraph


class TestCycles:
    def test_chain_has_no_cycle(self):
        graph = build_chain("Q", [1, 2, 3])
        assert not has_ordering_cycle(graph)

    def test_two_cycle_detected(self):
        graph = ObjectGraph()
        a, b = graph.add_vertex(), graph.add_vertex()
        graph.add_ordering_edge(a, b)
        graph.add_ordering_edge(b, a)
        assert has_ordering_cycle(graph)

    def test_disconnected_cycle_detected(self):
        graph = ObjectGraph()
        a, b, c = (graph.add_vertex() for _ in range(3))
        graph.add_ordering_edge(b, c)
        graph.add_ordering_edge(c, b)
        assert has_ordering_cycle(graph)
        assert a in graph  # the isolated vertex does not mask the cycle

    def test_empty_graph_has_no_cycle(self):
        assert not has_ordering_cycle(ObjectGraph())


class TestOrderingWalk:
    def test_walk_covers_chain(self):
        graph = build_chain("Q", ["a", "b", "c"])
        heads = [v for v in graph.vertex_ids() if not graph.predecessors(v)]
        walked = [graph.vertex(v).value for v in ordering_walk(graph, heads[0])]
        assert walked == ["c", "b", "a"]

    def test_walk_terminates_on_cycle(self):
        graph = ObjectGraph()
        a, b = graph.add_vertex(), graph.add_vertex()
        graph.add_ordering_edge(a, b)
        graph.add_ordering_edge(b, a)
        assert len(list(ordering_walk(graph, a))) == 2

    def test_walk_respects_limit(self):
        graph = build_chain("Q", [1, 2, 3, 4])
        heads = [v for v in graph.vertex_ids() if not graph.predecessors(v)]
        assert len(list(ordering_walk(graph, heads[0], limit=2))) == 2


class TestHierarchy:
    def test_flat_graph_depth_one(self):
        graph = build_chain("Q", [1, 2])
        assert hierarchy_depth(graph) == 1

    def test_nested_depth(self):
        inner = GraphBuilder("D").component("E").build()
        graph = GraphBuilder("A").component("D", value=inner).build()
        assert hierarchy_depth(graph) == 2

    def test_empty_graph_depth_one(self):
        assert hierarchy_depth(ObjectGraph()) == 1

    def test_component_count_recursive(self):
        inner = GraphBuilder("D").component("E").component("F").build()
        graph = (
            GraphBuilder("A").component("B").component("D", value=inner).build()
        )
        assert component_count(graph) == 2
        assert component_count(graph, recursive=True) == 4


class TestLinearChain:
    def test_chain_is_linear(self):
        assert is_linear_chain(build_chain("Q", [1, 2, 3]))

    def test_empty_and_singleton_are_linear(self):
        assert is_linear_chain(build_chain("Q", []))
        assert is_linear_chain(build_chain("Q", [1]))

    def test_fork_is_not_linear(self):
        graph = ObjectGraph()
        a, b, c = (graph.add_vertex() for _ in range(3))
        graph.add_ordering_edge(a, b)
        graph.add_ordering_edge(a, c)
        assert not is_linear_chain(graph)

    def test_disconnected_is_not_linear(self):
        graph = ObjectGraph()
        a, b = graph.add_vertex(), graph.add_vertex()
        graph.add_vertex()
        graph.add_ordering_edge(a, b)
        assert not is_linear_chain(graph)

    def test_cycle_is_not_linear(self):
        graph = ObjectGraph()
        a, b = graph.add_vertex(), graph.add_vertex()
        graph.add_ordering_edge(a, b)
        graph.add_ordering_edge(b, a)
        assert not is_linear_chain(graph)

"""Tests for id-preserving graph cloning (conflict-preview machinery)."""

from repro.adts.qstack import QStackSpec
from repro.graph.builder import GraphBuilder
from repro.graph.instrument import InstrumentedGraph
from repro.graph.object_graph import ObjectGraph


class TestClone:
    def test_clone_preserves_vertices_edges_references(self):
        graph = QStackSpec().build_graph(("a", "b"))
        clone = graph.clone()
        assert clone.vertex_ids() == graph.vertex_ids()
        assert clone.ordering_edges() == graph.ordering_edges()
        assert clone.reference("f") == graph.reference("f")
        assert clone.reference("b") == graph.reference("b")

    def test_clone_is_independent(self):
        graph = QStackSpec().build_graph(("a",))
        clone = graph.clone()
        clone.set_content(next(iter(clone.vertex_ids())), "changed")
        assert graph.vertex(next(iter(graph.vertex_ids()))).value == "a"

    def test_clone_allocates_the_same_future_ids(self):
        graph = QStackSpec().build_graph(("a", "b"))
        clone = graph.clone()
        assert graph.add_vertex("x") == clone.add_vertex("y")

    def test_preview_trace_comparable_with_live_trace(self):
        adt = QStackSpec()
        graph = adt.build_graph(("a", "b"))
        clone = graph.clone()
        live = InstrumentedGraph(graph)
        previewed = InstrumentedGraph(clone)
        adt.operation("Push").execute(live, "c")
        adt.operation("Push").execute(previewed, "c")
        assert live.trace.structure_modified == previewed.trace.structure_modified
        assert live.trace.content_modified == previewed.trace.content_modified

    def test_nested_graphs_are_deep_cloned(self):
        inner = GraphBuilder("D").component("E", value="e").build()
        graph = ObjectGraph("A")
        vid = graph.add_vertex(value=inner)
        clone = graph.clone()
        nested_clone = clone.vertex(vid).value
        nested_clone.set_content(next(iter(nested_clone.vertex_ids())), "mutated")
        assert graph.content(vid) != clone.content(vid)

"""Unit tests for the instrumented graph and locality traces (Defs. 11-17)."""

import pytest

from repro.graph.instrument import EdgeAttribution, InstrumentedGraph, LocalityTrace
from repro.graph.object_graph import ObjectGraph


@pytest.fixture
def view() -> InstrumentedGraph:
    return InstrumentedGraph(ObjectGraph("obj"))


class TestStructureModification:
    def test_insert_enters_sm_and_cm(self, view):
        vid = view.insert_vertex("x")
        assert vid in view.trace.structure_modified
        assert vid in view.trace.content_modified

    def test_delete_enters_sm_and_cm(self, view):
        vid = view.insert_vertex("x")
        view.trace = LocalityTrace()  # fresh trace for the delete alone
        value = view.delete_vertex(vid)
        assert value == "x"
        assert vid in view.trace.structure_modified
        assert vid in view.trace.content_modified

    def test_delete_attributes_surviving_neighbours_under_both(self, view):
        a = view.insert_vertex("a")
        b = view.insert_vertex("b")
        view.add_ordering_edge(a, b)
        view.trace = LocalityTrace()
        view.delete_vertex(a)
        assert b in view.trace.structure_modified

    def test_delete_ignores_neighbours_under_source_attribution(self):
        view = InstrumentedGraph(ObjectGraph("obj"), EdgeAttribution.SOURCE)
        a = view.insert_vertex("a")
        b = view.insert_vertex("b")
        view.add_ordering_edge(a, b)
        view.trace = LocalityTrace()
        view.delete_vertex(a)
        assert b not in view.trace.structure_modified

    def test_ordering_edge_attribution_both(self, view):
        a, b = view.insert_vertex(), view.insert_vertex()
        view.trace = LocalityTrace()
        view.add_ordering_edge(a, b)
        assert view.trace.structure_modified == {a, b}

    def test_ordering_edge_attribution_source_only(self):
        view = InstrumentedGraph(ObjectGraph("obj"), EdgeAttribution.SOURCE)
        a, b = view.insert_vertex(), view.insert_vertex()
        view.trace = LocalityTrace()
        view.add_ordering_edge(a, b)
        assert view.trace.structure_modified == {a}


class TestContentAccess:
    def test_modify_content_enters_cm_only(self, view):
        vid = view.insert_vertex("old")
        view.trace = LocalityTrace()
        view.modify_content(vid, "new")
        assert view.trace.content_modified == {vid}
        assert not view.trace.structure_modified
        assert view.graph.content(vid) == "new"

    def test_observe_content_enters_co(self, view):
        vid = view.insert_vertex("x")
        view.trace = LocalityTrace()
        assert view.observe_content(vid) == "x"
        assert view.trace.content_observed == {vid}
        assert view.trace.is_pure_observer()


class TestStructureObservation:
    def test_observe_presence(self, view):
        vid = view.insert_vertex()
        view.trace = LocalityTrace()
        assert view.observe_presence(vid)
        assert view.trace.structure_observed == {vid}

    def test_observe_absent_vertex_records_nothing(self, view):
        assert not view.observe_presence(99)
        assert not view.trace.structure_observed

    def test_observe_all_presence(self, view):
        vids = {view.insert_vertex() for _ in range(3)}
        view.trace = LocalityTrace()
        assert view.observe_all_presence() == vids
        assert view.trace.structure_observed == vids

    def test_observe_order_records_endpoints(self, view):
        a, b = view.insert_vertex(), view.insert_vertex()
        view.add_ordering_edge(a, b)
        view.trace = LocalityTrace()
        assert view.observe_order(a) == {b}
        assert view.trace.structure_observed == {a, b}

    def test_observe_predecessors(self, view):
        a, b = view.insert_vertex(), view.insert_vertex()
        view.add_ordering_edge(a, b)
        view.trace = LocalityTrace()
        assert view.observe_predecessors(b) == {a}
        assert view.trace.structure_observed == {a, b}


class TestReferences:
    def test_deref_records_read_and_so(self, view):
        vid = view.insert_vertex()
        view.graph.declare_reference("b", vid)
        view.trace = LocalityTrace()
        assert view.deref("b") == vid
        assert "b" in view.trace.references_read
        assert vid in view.trace.structure_observed

    def test_deref_dangling_records_read_only(self, view):
        view.graph.declare_reference("f", None)
        assert view.deref("f") is None
        assert "f" in view.trace.references_read
        assert not view.trace.structure_observed

    def test_retarget_records_write(self, view):
        vid = view.insert_vertex()
        view.graph.declare_reference("b", None)
        view.retarget("b", vid)
        assert "b" in view.trace.references_written
        assert view.graph.reference("b") == vid


class TestLocalityTrace:
    def test_derived_sets(self):
        trace = LocalityTrace(
            structure_observed={1},
            structure_modified={2},
            content_observed={3},
            content_modified={2, 4},
        )
        assert trace.structure_locality == {1, 2}
        assert trace.content_locality == {2, 3, 4}
        assert trace.locality == {1, 2, 3, 4}

    def test_kind_lookup(self):
        trace = LocalityTrace(structure_observed={7})
        assert trace.kind("so") == {7}
        assert trace.kind("cm") == set()

    def test_merge_unions_everything(self):
        first = LocalityTrace(structure_observed={1}, references_read={"f"})
        second = LocalityTrace(content_modified={2}, references_written={"b"})
        merged = first.merge(second)
        assert merged.structure_observed == {1}
        assert merged.content_modified == {2}
        assert merged.references_read == {"f"}
        assert merged.references_written == {"b"}

    def test_predicates(self):
        assert LocalityTrace(structure_observed={1}).observes_structure()
        assert LocalityTrace(structure_modified={1}).modifies_structure()
        assert LocalityTrace(content_observed={1}).observes_content()
        assert LocalityTrace(content_modified={1}).modifies_content()
        assert LocalityTrace().is_pure_observer()
        assert not LocalityTrace(content_modified={1}).is_pure_observer()

"""Unit tests for the object graph (Defs. 7-10, 18, 20)."""

import pytest

from repro.errors import (
    InvalidEdgeError,
    UnknownReferenceError,
    UnknownVertexError,
)
from repro.graph.object_graph import ObjectGraph


@pytest.fixture
def graph() -> ObjectGraph:
    return ObjectGraph("obj")


class TestVertices:
    def test_add_vertex_returns_fresh_ids(self, graph):
        first = graph.add_vertex("x")
        second = graph.add_vertex("y")
        assert first != second
        assert graph.vertex_ids() == {first, second}

    def test_vertex_ids_never_reused_after_removal(self, graph):
        first = graph.add_vertex("x")
        graph.remove_vertex(first)
        second = graph.add_vertex("y")
        assert second != first

    def test_remove_vertex_returns_the_vertex(self, graph):
        vid = graph.add_vertex("payload")
        removed = graph.remove_vertex(vid)
        assert removed.value == "payload"
        assert vid not in graph

    def test_unknown_vertex_raises(self, graph):
        with pytest.raises(UnknownVertexError):
            graph.vertex(99)

    def test_len_counts_components(self, graph):
        graph.add_vertex()
        graph.add_vertex()
        assert len(graph) == 2

    def test_contains(self, graph):
        vid = graph.add_vertex()
        assert vid in graph
        assert 1234 not in graph


class TestComposedOfEdges:
    def test_one_composed_of_edge_per_component(self, graph):
        graph.add_vertex()
        graph.add_vertex()
        edges = graph.composed_of_edges()
        assert len(edges) == 2
        assert {edge.target for edge in edges} == graph.vertex_ids()

    def test_removal_drops_the_composed_of_edge(self, graph):
        vid = graph.add_vertex()
        graph.remove_vertex(vid)
        assert graph.composed_of_edges() == set()


class TestOrderingEdges:
    def test_add_and_query_successors(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        graph.add_ordering_edge(a, b)
        assert graph.successors(a) == {b}
        assert graph.predecessors(b) == {a}

    def test_self_loop_rejected(self, graph):
        vid = graph.add_vertex()
        with pytest.raises(InvalidEdgeError):
            graph.add_ordering_edge(vid, vid)

    def test_cycles_between_distinct_vertices_allowed(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        graph.add_ordering_edge(a, b)
        graph.add_ordering_edge(b, a)  # paper: ordering graphs may have cycles
        assert graph.successors(a) == {b}
        assert graph.successors(b) == {a}

    def test_edges_to_unknown_vertices_rejected(self, graph):
        vid = graph.add_vertex()
        with pytest.raises(UnknownVertexError):
            graph.add_ordering_edge(vid, 99)

    def test_vertex_removal_drops_incident_ordering_edges(self, graph):
        a, b, c = (graph.add_vertex() for _ in range(3))
        graph.add_ordering_edge(a, b)
        graph.add_ordering_edge(b, c)
        graph.remove_vertex(b)
        assert graph.ordering_edges() == set()

    def test_remove_ordering_edge_is_idempotent(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        graph.add_ordering_edge(a, b)
        graph.remove_ordering_edge(a, b)
        graph.remove_ordering_edge(a, b)  # no error
        assert graph.ordering_edges() == set()


class TestContent:
    def test_primitive_content(self, graph):
        vid = graph.add_vertex(41)
        graph.set_content(vid, 42)
        assert graph.content(vid) == 42

    def test_complex_content_is_recursive(self, graph):
        inner = ObjectGraph("inner")
        e = inner.add_vertex("e")
        vid = graph.add_vertex(inner)
        assert graph.content(vid) == {e: "e"}

    def test_simple_vertices_flat(self, graph):
        a = graph.add_vertex(1)
        b = graph.add_vertex(2)
        assert graph.simple_vertices() == {(a,), (b,)}

    def test_simple_vertices_nested_are_paths(self, graph):
        inner = ObjectGraph("inner")
        e = inner.add_vertex("e")
        f = inner.add_vertex("f")
        d = graph.add_vertex(inner)
        b = graph.add_vertex("b")
        assert graph.simple_vertices() == {(b,), (d, e), (d, f)}


class TestReferences:
    def test_declare_and_read(self, graph):
        vid = graph.add_vertex()
        graph.declare_reference("b", vid)
        assert graph.reference("b") == vid

    def test_dangling_reference(self, graph):
        graph.declare_reference("f", None)
        assert graph.reference("f") is None

    def test_undeclared_reference_raises(self, graph):
        with pytest.raises(UnknownReferenceError):
            graph.reference("nope")

    def test_retarget(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        graph.declare_reference("b", a)
        graph.retarget_reference("b", b)
        assert graph.reference("b") == b

    def test_retarget_undeclared_raises(self, graph):
        with pytest.raises(UnknownReferenceError):
            graph.retarget_reference("nope", None)

    def test_vertex_removal_dangles_references(self, graph):
        vid = graph.add_vertex()
        graph.declare_reference("b", vid)
        graph.remove_vertex(vid)
        assert graph.reference("b") is None

    def test_reference_names(self, graph):
        graph.declare_reference("f", None)
        graph.declare_reference("b", None)
        assert graph.reference_names() == {"f", "b"}


class TestSubgraphs:
    def test_composition_graph_snapshot(self, graph):
        a = graph.add_vertex()
        snapshot = graph.composition_graph()
        graph.add_vertex()
        assert snapshot.component_ids == frozenset({a})
        assert len(snapshot) == 1

    def test_ordering_graph_snapshot_equality(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        graph.add_ordering_edge(a, b)
        first = graph.ordering_graph()
        second = graph.ordering_graph()
        assert first == second
        assert hash(first) == hash(second)
        assert first.successors(a) == {b}

    def test_subgraph_inequality_after_mutation(self, graph):
        a, b = graph.add_vertex(), graph.add_vertex()
        before = graph.ordering_graph()
        graph.add_ordering_edge(a, b)
        assert before != graph.ordering_graph()

"""Unit tests for the graph builder and the chain helper."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder, build_chain


class TestGraphBuilder:
    def test_components_and_order(self):
        graph = (
            GraphBuilder("A")
            .component("B", value=1)
            .component("C", value=2)
            .order("B", "C")
            .build()
        )
        labels = {v.display_name(): v.vid for v in graph.vertices()}
        assert set(labels) == {"B", "C"}
        assert graph.successors(labels["B"]) == {labels["C"]}

    def test_nested_component(self):
        inner = GraphBuilder("D").component("E", value="e").build()
        graph = GraphBuilder("A").component("D", value=inner).build()
        (vertex,) = list(graph.vertices())
        assert vertex.is_complex()

    def test_reference_by_label(self):
        builder = GraphBuilder("S").component("top", value=9)
        graph = builder.reference("b", "top").build()
        assert graph.reference("b") == builder.vertex_id("top")

    def test_dangling_reference(self):
        graph = GraphBuilder("S").reference("b", None).build()
        assert graph.reference("b") is None

    def test_duplicate_label_rejected(self):
        builder = GraphBuilder("A").component("B")
        with pytest.raises(GraphError):
            builder.component("B")

    def test_unknown_label_rejected(self):
        builder = GraphBuilder("A").component("B")
        with pytest.raises(GraphError):
            builder.order("B", "missing")

    def test_builder_is_single_use(self):
        builder = GraphBuilder("A").component("B")
        builder.build()
        with pytest.raises(GraphError):
            builder.component("C")


class TestBuildChain:
    def test_reverse_order_points_towards_front(self):
        graph = build_chain("Q", ["front", "mid", "back"])
        by_value = {v.value: v.vid for v in graph.vertices()}
        assert graph.successors(by_value["back"]) == {by_value["mid"]}
        assert graph.successors(by_value["mid"]) == {by_value["front"]}
        assert graph.successors(by_value["front"]) == set()

    def test_forward_order(self):
        graph = build_chain("Q", ["a", "b"], reverse_order=False)
        by_value = {v.value: v.vid for v in graph.vertices()}
        assert graph.successors(by_value["a"]) == {by_value["b"]}

    def test_references_by_index(self):
        graph = build_chain("Q", ["x", "y"], references=[("f", 0), ("b", 1)])
        assert graph.vertex(graph.reference("f")).value == "x"
        assert graph.vertex(graph.reference("b")).value == "y"

    def test_dangling_reference_via_none_index(self):
        graph = build_chain("Q", [], references=[("f", None)])
        assert graph.reference("f") is None

    def test_empty_chain(self):
        graph = build_chain("Q", [])
        assert len(graph) == 0
        assert graph.ordering_edges() == set()

    def test_singleton_chain_has_no_edges(self):
        graph = build_chain("Q", ["only"])
        assert len(graph) == 1
        assert graph.ordering_edges() == set()

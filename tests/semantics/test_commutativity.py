"""Unit tests for the commutativity notions (Section 3)."""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.semantics.commutativity import (
    backward_commute_events,
    commutativity_table,
    commute_in_state,
    forward_commute_events,
    forward_commute_invocations,
)
from repro.semantics.history import HistoryEvent
from repro.spec.operation import Invocation
from repro.spec.returnvalue import ok, result_only


@pytest.fixture(scope="module")
def qstack() -> QStackSpec:
    return QStackSpec()


class TestStateCommutativity:
    def test_observers_commute_everywhere(self, qstack):
        assert forward_commute_invocations(
            qstack, Invocation("Top"), Invocation("Size")
        )

    def test_push_deq_commute_with_two_elements(self, qstack):
        assert commute_in_state(
            qstack, ("a", "b"), Invocation("Push", ("a",)), Invocation("Deq")
        )

    def test_push_deq_conflict_on_empty(self, qstack):
        assert not commute_in_state(
            qstack, (), Invocation("Push", ("a",)), Invocation("Deq")
        )

    def test_push_deq_conflict_when_full(self, qstack):
        # reversing the order lets the Push succeed
        assert not commute_in_state(
            qstack, ("a", "a", "a"), Invocation("Push", ("b",)), Invocation("Deq")
        )

    def test_two_pops_conflict(self, qstack):
        assert not forward_commute_invocations(
            qstack, Invocation("Pop"), Invocation("Pop")
        )

    def test_same_element_pushes_commute_away_from_boundary(self, qstack):
        assert commute_in_state(
            qstack, ("a",), Invocation("Push", ("b",)), Invocation("Push", ("b",))
        )

    def test_same_element_pushes_conflict_at_boundary(self, qstack):
        assert not commute_in_state(
            qstack,
            ("a", "a"),
            Invocation("Push", ("b",)),
            Invocation("Push", ("b",)),
        )

    def test_replace_xtop_commute(self, qstack):
        assert forward_commute_invocations(
            qstack, Invocation("Replace", ("a", "b")), Invocation("XTop")
        )


class TestEventCommutativity:
    def test_successful_pushes_forward_commute(self):
        adt = QStackSpec(capacity=3, domain=("a",))
        push_ok = HistoryEvent(Invocation("Push", ("a",)), ok())
        # In every state where Push:ok applies twice, the orders agree.
        assert backward_commute_events(adt, push_ok, push_ok)

    def test_push_pop_events_do_not_commute(self):
        adt = QStackSpec(capacity=2, domain=("a", "b"))
        push_ok = HistoryEvent(Invocation("Push", ("b",)), ok())
        pop_a = HistoryEvent(Invocation("Pop"), result_only("a"))
        # From ("a",) both events are individually legal, but after the
        # Push the Pop would return "b": the orders disagree.
        assert not forward_commute_events(adt, push_ok, pop_a)

    def test_forward_vs_backward_difference(self):
        # Withdraw(ok) and Withdraw(ok) on an account with exactly enough
        # funds for one: backward-commutative (if both applied in sequence
        # the balance sufficed for both, so the reverse is fine) — while
        # forward commutativity fails (each applies individually at
        # balance 1 but not in sequence).
        adt = AccountSpec(max_balance=2, amounts=(1,))
        withdraw_ok = HistoryEvent(Invocation("Withdraw", (1,)), ok())
        assert backward_commute_events(adt, withdraw_ok, withdraw_ok)
        assert not forward_commute_events(adt, withdraw_ok, withdraw_ok)


class TestOperationTable:
    def test_classic_conflicts(self, qstack):
        table = commutativity_table(
            QStackSpec(operations=["Push", "Pop", "Top", "Size"])
        )
        assert not table[("Pop", "Push")]
        assert not table[("Top", "Push")]
        assert table[("Top", "Size")]
        assert table[("Size", "Size")]

    def test_table_is_symmetric(self):
        table = commutativity_table(AccountSpec())
        for (second, first), commutes in table.items():
            assert table[(first, second)] == commutes


class TestWeihlOperationTables:
    def test_forward_subset_of_backward(self):
        from repro.semantics.commutativity import (
            backward_commutativity_table,
            forward_commutativity_table,
        )

        adt = AccountSpec(max_balance=2, amounts=(1,))
        forward = forward_commutativity_table(adt)
        backward = backward_commutativity_table(adt)
        # Forward commutativity is the stronger notion: whatever
        # forward-commutes must backward-commute.
        assert all(backward[key] for key in forward if forward[key])

    def test_deposits_commute_under_both(self):
        from repro.semantics.commutativity import (
            backward_commutativity_table,
            forward_commutativity_table,
        )

        adt = AccountSpec(max_balance=2, amounts=(1,))
        assert forward_commutativity_table(adt)[("Deposit", "Deposit")]
        assert backward_commutativity_table(adt)[("Deposit", "Deposit")]

    def test_observer_pairs_commute_under_both(self):
        from repro.semantics.commutativity import (
            backward_commutativity_table,
            forward_commutativity_table,
        )

        adt = QStackSpec(capacity=2, domain=("a",), operations=["Top", "Size"])
        forward = forward_commutativity_table(adt)
        backward = backward_commutativity_table(adt)
        assert all(forward.values()) and all(backward.values())

    def test_push_pop_conflict_under_both(self):
        from repro.semantics.commutativity import (
            backward_commutativity_table,
            forward_commutativity_table,
        )

        adt = QStackSpec(capacity=2, domain=("a", "b"), operations=["Push", "Pop"])
        assert not forward_commutativity_table(adt)[("Pop", "Push")]
        assert not backward_commutativity_table(adt)[("Pop", "Push")]

    def test_tables_symmetric(self):
        from repro.semantics.commutativity import forward_commutativity_table

        adt = AccountSpec(max_balance=2, amounts=(1,))
        table = forward_commutativity_table(adt)
        for (second, first), value in table.items():
            assert table[(first, second)] == value

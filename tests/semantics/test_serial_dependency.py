"""Unit tests for the serial-dependency relation (Herlihy & Weihl)."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.semantics.history import HistoryEvent
from repro.semantics.serial_dependency import (
    find_invalidation,
    find_invocation_invalidation,
    invalidates,
    serial_dependency_relation,
)
from repro.spec.operation import Invocation
from repro.spec.returnvalue import nok, ok, result_only


@pytest.fixture(scope="module")
def adt() -> QStackSpec:
    return QStackSpec(capacity=2, domain=("a",))


def event(operation, returned, *args):
    return HistoryEvent(Invocation(operation, args), returned)


class TestEventLevel:
    def test_push_invalidates_pop_nok(self, adt):
        # o1 = Push:ok, o2 = Pop:nok with h1 = h2 = ε: Pop:nok is legal in
        # the empty initial state but not after the Push.
        witness = find_invalidation(
            adt, event("Push", ok(), "a"), event("Pop", nok())
        )
        assert witness is not None
        assert witness.first.invocation.operation == "Push"

    def test_push_invalidates_size_zero(self, adt):
        assert invalidates(
            adt, event("Push", ok(), "a"), event("Size", result_only(0))
        )

    def test_top_never_invalidates(self, adt):
        # Top is an observer: appearing earlier never invalidates anything.
        top_nok = event("Top", nok())
        for second in [
            event("Pop", nok()),
            event("Size", result_only(0)),
            event("Push", ok(), "a"),
        ]:
            assert not invalidates(adt, top_nok, second)

    def test_witness_render(self, adt):
        witness = find_invalidation(
            adt, event("Push", ok(), "a"), event("Pop", nok())
        )
        text = witness.render()
        assert "invalidates" in text and "h1=" in text

    def test_relation_orientation(self, adt):
        events = {event("Push", ok(), "a"), event("Size", result_only(0))}
        relation = serial_dependency_relation(adt, events=events)
        assert relation[
            (event("Size", result_only(0)), event("Push", ok(), "a"))
        ]
        assert not relation[
            (event("Push", ok(), "a"), event("Size", result_only(0)))
        ]


class TestInvocationLevel:
    def test_push_invalidates_size_from_any_state(self, adt):
        witness = find_invocation_invalidation(
            adt, Invocation("Push", ("a",)), Invocation("Size")
        )
        assert witness is not None

    def test_size_never_invalidates_push(self, adt):
        assert (
            find_invocation_invalidation(
                adt, Invocation("Size"), Invocation("Push", ("a",))
            )
            is None
        )

    def test_observer_pairs_never_invalidate(self, adt):
        for first in (Invocation("Top"), Invocation("Size")):
            for second in (Invocation("Top"), Invocation("Size")):
                assert (
                    find_invocation_invalidation(adt, first, second) is None
                )

    def test_prefix_generalisation_matters(self, adt):
        # Pop:result invalidates a following Pop only from non-initial
        # states; the invocation-level search must find it even though
        # Pop succeeds in no history that starts at the (empty) initial
        # state without a prefix.
        witness = find_invocation_invalidation(
            adt, Invocation("Pop"), Invocation("Pop"), max_h1=0, max_h2=0
        )
        assert witness is not None

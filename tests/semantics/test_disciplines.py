"""Unit tests for the recovery-discipline comparison (X6)."""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.semantics.disciplines import (
    compare_disciplines,
    intentions_outcomes,
    interleavings,
    recoverability_outcomes,
    serial_outcome,
)
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def qstack():
    return QStackSpec(
        capacity=2, domain=("a", "b"), operations=["Push", "Pop", "Top"]
    )


PUSH = Invocation("Push", ("b",))
POP = Invocation("Pop")
TOP = Invocation("Top")


class TestInterleavings:
    def test_merge_count(self):
        patterns = list(interleavings([PUSH, POP], [TOP]))
        assert len(patterns) == 3  # C(3,1) positions for the singleton

    def test_pattern_contents(self):
        for pattern in interleavings([PUSH], [TOP, POP]):
            assert pattern.count(0) == 1
            assert pattern.count(1) == 2


class TestSerialOutcome:
    def test_deterministic_histories(self, qstack):
        outcome = serial_outcome(qstack, ("a",), ((PUSH,), (POP,)), (0, 1))
        (push_event,) = outcome.histories[0]
        (pop_event,) = outcome.histories[1]
        assert push_event[1].outcome == "ok"
        assert pop_event[1].result == "b"  # pops the freshly pushed 'b'

    def test_order_changes_returns(self, qstack):
        first = serial_outcome(qstack, ("a",), ((PUSH,), (POP,)), (0, 1))
        second = serial_outcome(qstack, ("a",), ((PUSH,), (POP,)), (1, 0))
        assert first != second


class TestRecoverabilityDiscipline:
    def test_conflicting_interleaving_blocks(self, qstack):
        # Pop right after the other transaction's uncommitted Push would
        # observe it: the dynamic recoverability test rejects the pattern.
        outcomes = recoverability_outcomes(
            qstack, (), ((PUSH,), (POP,)), (0, 1)
        )
        assert outcomes == set()

    def test_independent_interleaving_admits_both_orders(self, qstack):
        # Top and Top: observers interleave freely, both orders replay.
        outcomes = recoverability_outcomes(
            qstack, ("a",), ((TOP,), (TOP,)), (0, 1)
        )
        assert {outcome.order for outcome in outcomes} == {(0, 1), (1, 0)}

    def test_admitted_outcome_is_the_serial_history(self, qstack):
        outcomes = recoverability_outcomes(
            qstack, ("a",), ((PUSH,), (TOP,)), (1, 0)  # Top first
        )
        assert serial_outcome(qstack, ("a",), ((PUSH,), (TOP,)), (1, 0)) in outcomes


class TestIntentionsDiscipline:
    def test_follower_validation(self, qstack):
        # Push then Pop: Pop's own view ('a' from the base state) matches
        # the serial order (Pop, Push) but not (Push, Pop).
        outcomes = intentions_outcomes(qstack, ("a",), ((PUSH,), (POP,)))
        orders = {outcome.order for outcome in outcomes}
        assert (1, 0) in orders
        assert (0, 1) not in orders

    def test_commuting_programs_validate_both_orders(self, qstack):
        outcomes = intentions_outcomes(qstack, ("a",), ((TOP,), (TOP,)))
        assert {outcome.order for outcome in outcomes} == {(0, 1), (1, 0)}


class TestEquivalence:
    def test_valid_history_sets_coincide(self, qstack):
        invocations = qstack.invocations()
        pairs = [
            ((first,), (second,))
            for first in invocations
            for second in invocations
        ]
        report = compare_disciplines(qstack, ("a",), pairs)
        assert report.same_valid_histories

    def test_account_equivalence(self):
        adt = AccountSpec(max_balance=2, amounts=(1,))
        invocations = adt.invocations()
        pairs = [
            ((first,), (second,))
            for first in invocations
            for second in invocations
        ]
        report = compare_disciplines(adt, 1, pairs)
        assert report.same_valid_histories

    def test_report_summary(self, qstack):
        report = compare_disciplines(qstack, ("a",), [((TOP,), (TOP,))])
        assert "valid-history sets ==" in report.summary()

"""Unit tests for the serial-dependency/recoverability comparison (X2)."""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.semantics.equivalence import compare_relations
from repro.spec.adt import EnumerationBounds


@pytest.fixture(scope="module")
def qstack_report():
    adt = QStackSpec(capacity=2, domain=("a",), operations=["Push", "Pop", "Top"])
    return compare_relations(adt, bounds=EnumerationBounds(2, ("a",)))


@pytest.fixture(scope="module")
def account_report():
    return compare_relations(AccountSpec(max_balance=3, amounts=(1,)))


class TestContainment:
    def test_qstack_containment(self, qstack_report):
        # every recoverability conflict is an invalidation witness
        assert qstack_report.containment_holds

    def test_account_containment(self, account_report):
        assert account_report.containment_holds

    def test_sd_only_residual_exists_for_account(self, account_report):
        # Deposit/Deposit: recoverable, but a later Balance in h2 observes
        # the doubled effect — the intentions-list recovery difference.
        pairs = {
            (first.operation, second.operation)
            for first, second in account_report.sd_only
        }
        assert ("Deposit", "Deposit") in pairs


class TestReportShape:
    def test_counts_are_consistent(self, qstack_report):
        report = qstack_report
        assert (
            report.both_conflict
            + report.neither_conflicts
            + len(report.sd_only)
            + len(report.rec_only)
            == report.total
        )

    def test_agreement_ratio_bounds(self, qstack_report):
        assert 0.0 <= qstack_report.agreement_ratio <= 1.0

    def test_summary_mentions_containment(self, qstack_report):
        assert "containment" in qstack_report.summary()

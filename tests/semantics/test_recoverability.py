"""Unit tests for the recoverability relation (Badrinath & Ramamritham)."""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.core.dependency import Dependency
from repro.semantics.recoverability import (
    recoverability_table,
    recoverable,
    recoverable_in_state,
    recoverable_operations,
)
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def account() -> AccountSpec:
    return AccountSpec(max_balance=4, amounts=(1, 2))


@pytest.fixture(scope="module")
def qstack() -> QStackSpec:
    return QStackSpec()


class TestAccountClassics:
    def test_deposit_recoverable_after_deposit(self, account):
        # the canonical example: increments do not read the balance
        assert recoverable(
            account, Invocation("Deposit", (1,)), Invocation("Deposit", (2,))
        )

    def test_balance_not_recoverable_after_deposit(self, account):
        assert not recoverable(
            account, Invocation("Balance"), Invocation("Deposit", (1,))
        )

    def test_withdraw_not_recoverable_after_withdraw(self, account):
        assert not recoverable(
            account, Invocation("Withdraw", (2,)), Invocation("Withdraw", (2,))
        )

    def test_deposit_recoverable_after_balance(self, account):
        assert recoverable(
            account, Invocation("Deposit", (1,)), Invocation("Balance")
        )

    def test_per_state_check(self, account):
        # At balance 2, a withdrawal of 1 leaves enough for another 1.
        assert recoverable_in_state(
            account, 2, Invocation("Withdraw", (1,)), Invocation("Withdraw", (1,))
        )
        assert not recoverable_in_state(
            account, 1, Invocation("Withdraw", (1,)), Invocation("Withdraw", (1,))
        )


class TestQStack:
    def test_top_recoverable_after_size_preserving_ops(self, qstack):
        assert recoverable(qstack, Invocation("Top"), Invocation("Size"))

    def test_top_not_recoverable_after_push(self, qstack):
        assert not recoverable(
            qstack, Invocation("Top"), Invocation("Push", ("a",))
        )

    def test_operation_level_aggregation(self, qstack):
        assert recoverable_operations(qstack, "Size", "Top")
        assert not recoverable_operations(qstack, "Size", "Push")


class TestRecoverabilityTable:
    def test_matches_table4_semantics(self):
        # "This is exactly the semantics that is captured by
        # recoverability": observers after modifiers form AD, modifiers
        # after anything form CD, observers together ND.
        adt = QStackSpec(operations=["Push", "Top", "Size"])
        table = recoverability_table(adt)
        assert table[("Top", "Push")] is Dependency.AD
        assert table[("Push", "Top")] is Dependency.CD
        assert table[("Push", "Push")] is Dependency.AD
        assert table[("Top", "Size")] is Dependency.ND

    def test_account_table(self, account):
        table = recoverability_table(account)
        assert table[("Deposit", "Deposit")] is Dependency.CD
        assert table[("Balance", "Deposit")] is Dependency.AD
        assert table[("Deposit", "Balance")] is Dependency.CD
        assert table[("Balance", "Balance")] is Dependency.ND

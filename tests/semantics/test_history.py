"""Unit tests for histories and legality."""

import pytest

from repro.adts.qstack import QStackSpec
from repro.semantics.history import (
    HistoryEvent,
    event_alphabet,
    is_legal,
    legal_histories,
    replay,
)
from repro.spec.operation import Invocation
from repro.spec.returnvalue import nok, ok, result_only


@pytest.fixture(scope="module")
def adt() -> QStackSpec:
    return QStackSpec(capacity=2, domain=("a",))


def event(operation, returned, *args):
    return HistoryEvent(Invocation(operation, args), returned)


class TestReplay:
    def test_legal_history_replays_to_final_state(self, adt):
        history = (
            event("Push", ok(), "a"),
            event("Pop", result_only("a")),
        )
        assert replay(adt, history, ()) == ()

    def test_wrong_return_makes_history_illegal(self, adt):
        history = (event("Pop", result_only("a")),)
        assert replay(adt, history, ()) is None  # Pop on empty returns nok

    def test_replay_from_arbitrary_state(self, adt):
        history = (event("Pop", result_only("a")),)
        assert replay(adt, history, ("a",)) == ()

    def test_empty_history_is_legal(self, adt):
        assert replay(adt, (), ("a",)) == ("a",)

    def test_is_legal_defaults_to_initial_state(self, adt):
        assert is_legal(adt, (event("Pop", nok()),))
        assert not is_legal(adt, (event("Pop", result_only("a")),))


class TestEnumeration:
    def test_legal_histories_counts(self, adt):
        invocations = len(adt.invocations())
        histories = list(legal_histories(adt, max_length=2))
        # deterministic specs: 1 + n + n^2 histories
        assert len(histories) == 1 + invocations + invocations**2

    def test_all_yielded_histories_are_legal(self, adt):
        for history, final in legal_histories(adt, max_length=2):
            assert replay(adt, history, adt.initial_state()) == final

    def test_start_state_respected(self, adt):
        histories = dict(legal_histories(adt, max_length=1, start=("a", "a")))
        pop_event = event("Pop", result_only("a"))
        assert (pop_event,) in histories


class TestEventAlphabet:
    def test_alphabet_contains_both_outcomes(self, adt):
        alphabet = event_alphabet(adt)
        assert event("Pop", nok()) in alphabet
        assert event("Pop", result_only("a")) in alphabet
        assert event("Push", ok(), "a") in alphabet
        assert event("Push", nok(), "a") in alphabet

    def test_event_render(self):
        assert event("Push", ok(), "a").render() == "Push('a'):ok"
        assert event("Pop", result_only("a")).render() == "Pop():'a'"

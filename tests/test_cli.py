"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_adt_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "BTree"])


class TestCommands:
    def test_adts_lists_builtins(self, capsys):
        assert main(["adts"]) == 0
        out = capsys.readouterr().out
        for name in ("QStack", "Account", "Directory"):
            assert name in out

    def test_classify(self, capsys):
        assert main(["classify", "Account"]) == 0
        out = capsys.readouterr().out
        assert "Deposit" in out and "M" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "Stack"]) == 0
        out = capsys.readouterr().out
        assert "obs/mod" in out and "Push" in out

    def test_derive_stage3(self, capsys):
        assert main(["derive", "Stack", "--stage", "3"]) == 0
        out = capsys.readouterr().out
        assert "(o1,o2)" in out and "AD" in out

    def test_derive_paper_mode(self, capsys):
        assert main(["derive", "QStack", "--paper", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "f ≠ b" in out

    def test_graph_ascii(self, capsys):
        assert main(["graph", "QStack"]) == 0
        out = capsys.readouterr().out
        assert "ref b" in out and "ref f" in out

    def test_graph_dot(self, capsys):
        assert main(["graph", "Set", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main([
            "simulate", "Account", "--transactions", "5", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "serializable: True" in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "table03"]) == 0
        out = capsys.readouterr().out
        assert "table03" in out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "nope"]) == 2


class TestChaosExitCode:
    """The chaos exit code is the CI contract: a failing embedded
    sub-campaign must fail the command even if the top-level ``passed``
    flag claims otherwise (regression guard on the verdict folding)."""

    def fake_report(self, **sections):
        report = {"cells": [], "passed": True}
        report.update(sections)
        return report

    def run_chaos_cli(self, monkeypatch, report):
        import repro.robust

        monkeypatch.setattr(
            repro.robust, "run_chaos", lambda *args, **kwargs: report
        )
        return main(["chaos", "Account", "--no-crash-sweep"])

    def test_passing_report_exits_zero(self, monkeypatch, capsys):
        assert self.run_chaos_cli(monkeypatch, self.fake_report()) == 0
        capsys.readouterr()

    def test_top_level_failure_exits_nonzero(self, monkeypatch, capsys):
        report = self.fake_report()
        report["passed"] = False
        assert self.run_chaos_cli(monkeypatch, report) == 1
        capsys.readouterr()

    @pytest.mark.parametrize(
        "section", ["distributed", "serving", "replication"]
    )
    def test_failing_subreport_exits_nonzero(
        self, monkeypatch, capsys, section
    ):
        # Top-level passed=True with a failing embedded verdict: the
        # folding bug this guards against.
        report = self.fake_report(**{section: {"passed": False}})
        assert self.run_chaos_cli(monkeypatch, report) == 1
        capsys.readouterr()

    def test_chaos_passed_folds_all_sections(self):
        from repro.__main__ import _chaos_passed

        assert _chaos_passed({"passed": True})
        assert not _chaos_passed({"passed": False})
        assert _chaos_passed(
            {
                "passed": True,
                "distributed": {"passed": True},
                "serving": {"passed": True},
                "replication": {"passed": True},
            }
        )
        for section in ("distributed", "serving", "replication"):
            assert not _chaos_passed(
                {"passed": True, section: {"passed": False}}
            )


class TestTablesCommand:
    def test_tables_generates_docs(self, tmp_path, capsys):
        assert main(["tables", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "qstack.md" in out
        generated = {path.name for path in tmp_path.iterdir()}
        assert "README.md" in generated
        assert "account.md" in generated
        content = (tmp_path / "qstack.md").read_text(encoding="utf-8")
        assert "Stage 5" in content and "f ≠ b" in content


class TestObservabilityCommands:
    def test_simulate_run_header(self, capsys):
        assert main([
            "simulate", "QStack", "--transactions", "6", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith(
            "run: adt=QStack policy=blocking transactions=6 operations=3 seed=7"
        )
        assert "table=stage5" in out

    def test_simulate_writes_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        assert main([
            "simulate", "QStack", "--transactions", "6", "--seed", "7",
            "--trace", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert f"trace: {trace_path}" in out
        from repro.obs.tracers import read_trace

        events = read_trace(str(trace_path))
        assert events[0].type == "run_started"
        assert events[-1].type == "run_completed"

    def test_simulate_metrics_json(self, capsys):
        assert main([
            "simulate", "Account", "--transactions", "4", "--seed", "2",
            "--metrics-format", "json",
        ]) == 0
        out = capsys.readouterr().out
        import json

        document = json.loads(out[out.index("{"):])
        assert 'txns{status="committed"}' in document["counters"]

    def test_simulate_metrics_prometheus(self, capsys):
        assert main([
            "simulate", "Account", "--transactions", "4", "--seed", "2",
            "--metrics-format", "prom",
        ]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_txns counter" in out
        assert "repro_makespan" in out

    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main([
            "simulate", "QStack", "--transactions", "8", "--seed", "7",
            "--trace", str(path),
        ]) == 0
        return str(path)

    def test_trace_summary(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["trace", trace_file]) == 0
        out = capsys.readouterr().out
        assert "events=" in out and "dependencies:" in out

    def test_trace_verify(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["trace", trace_file, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "serializable (from trace): True" in out

    def test_trace_timeline(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["trace", trace_file, "--timeline", "1"]) == 0
        out = capsys.readouterr().out
        assert "txn_begun" in out

    def test_trace_timeline_unknown_txn(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["trace", trace_file, "--timeline", "9999"]) == 1

    def test_trace_entries(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["trace", trace_file, "--entries"]) == 0
        out = capsys.readouterr().out
        assert "->" in out  # at least one firing line

    def test_trace_missing_file(self, capsys):
        assert main(["trace", "/nonexistent/nope.jsonl"]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_trace_modes_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "x.jsonl", "--entries", "--timeline", "1"]
            )


class TestRobustCommands:
    def test_simulate_with_fault_plan(self, capsys):
        assert main([
            "simulate", "Account", "--transactions", "6", "--seed", "3",
            "--fault-plan", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults: injected=" in out
        assert "serializable: True" in out

    def test_fault_plan_counters_reach_metrics_json(self, capsys):
        assert main([
            "simulate", "Account", "--transactions", "6", "--seed", "3",
            "--fault-plan", "2", "--metrics-format", "json",
        ]) == 0
        out = capsys.readouterr().out
        assert '"robust_faults_injected"' in out
        assert '"robust_invariant_checks"' in out

    def test_simulate_fault_plan_is_reproducible(self, capsys):
        argv = [
            "simulate", "Account", "--transactions", "6", "--seed", "3",
            "--fault-plan", "11",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_simulate_restart_policy_flag(self, capsys):
        assert main([
            "simulate", "Account", "--transactions", "5", "--seed", "3",
            "--restart-policy", "exponential",
        ]) == 0
        assert "serializable: True" in capsys.readouterr().out

    def test_simulate_no_compiled_is_bit_identical(self, capsys):
        argv = ["simulate", "Account", "--transactions", "5", "--seed", "3"]
        assert main(argv) == 0
        compiled = capsys.readouterr().out
        assert main(argv + ["--no-compiled"]) == 0
        assert capsys.readouterr().out == compiled

    def test_chaos_smoke(self, capsys):
        assert main([
            "chaos", "Account", "--policies", "optimistic",
            "--seeds", "3", "--transactions", "4", "--operations", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert '"passed": true' in out
        assert "chaos: cells=1" in out
        assert "passed=True" in out

    def test_chaos_report_file_is_byte_stable(self, tmp_path, capsys):
        def run(path):
            assert main([
                "chaos", "Account", "--policies", "optimistic",
                "--seeds", "3", "--transactions", "4", "--operations", "2",
                "--report", str(path),
            ]) == 0
            capsys.readouterr()
            return path.read_bytes()

        assert run(tmp_path / "a.json") == run(tmp_path / "b.json")

    def test_chaos_unknown_adt_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "BTree"])

    def test_unrecoverable_recovery_divergence_exits_cleanly(self, capsys):
        # Plan 4 at seed 1 poisons a decision that gets logged, then a
        # crash fault forces recovery replay over the tainted log.  The
        # resulting divergence must surface as a reported finding, not a
        # traceback.  (Which cache entry a poison lands on depends on
        # access order, so each dispatch mode has its own reproducer.)
        assert main([
            "simulate", "Account", "--seed", "1", "--fault-plan", "4",
        ]) == 1
        captured = capsys.readouterr()
        assert "unrecoverable:" in captured.err

    def test_unrecoverable_divergence_on_the_reference_path(self, capsys):
        # The reference-dispatch reproducer of the same failure mode.
        assert main([
            "simulate", "Account", "--seed", "3", "--fault-plan", "5",
            "--no-compiled",
        ]) == 1
        captured = capsys.readouterr()
        assert "unrecoverable:" in captured.err


class TestDistCommands:
    def test_simulate_with_shards_audits_globally(self, capsys):
        assert main([
            "simulate", "Account", "--shards", "2", "--transactions", "5",
            "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "shards=2" in out
        assert "distributed: committed=" in out
        assert "audit: passed=True" in out

    def test_simulate_shards_output_is_reproducible(self, capsys):
        argv = [
            "simulate", "Account", "--shards", "2", "--transactions", "5",
            "--seed", "9", "--fault-plan", "9", "--fault-intensity", "0.2",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "faults: injected=" in first
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_simulate_shards_metrics_json(self, capsys):
        assert main([
            "simulate", "Account", "--shards", "2", "--transactions", "5",
            "--seed", "7", "--metrics-format", "json",
        ]) == 0
        out = capsys.readouterr().out
        assert '"dist_messages_sent"' in out
        assert '"dist_prepares_sent"' in out

    def test_chaos_dist_flag_extends_the_campaign(self, capsys):
        assert main([
            "chaos", "Account", "--policies", "optimistic",
            "--seeds", "7", "--transactions", "4", "--operations", "2",
            "--dist", "--shards", "1", "2", "--no-crash-sweep",
        ]) == 0
        out = capsys.readouterr().out
        assert '"distributed"' in out
        assert "dist_cells=6" in out


class TestObservabilityCommands:
    def test_simulate_prints_latency_footer(self, capsys):
        assert main([
            "simulate", "Account", "--transactions", "5", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "latency: p50=" in out
        assert "phases: service=" in out
        assert "commit_wait=" in out

    def test_simulate_shards_prints_e2e_and_rpc_latency(self, capsys):
        assert main([
            "simulate", "Account", "--shards", "2", "--transactions", "5",
            "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "latency: e2e p50=" in out
        assert "rpc " in out and ":p50=" in out

    @pytest.fixture()
    def dist_trace_file(self, tmp_path):
        path = tmp_path / "dist.jsonl"
        assert main([
            "simulate", "Account", "--shards", "2", "--transactions", "8",
            "--seed", "7", "--fault-plan", "3", "--trace", str(path),
        ]) == 0
        return str(path)

    def test_report_renders_the_dashboard(self, dist_trace_file, capsys):
        assert main(["report", dist_trace_file]) == 0
        out = capsys.readouterr().out
        assert "== trace summary ==" in out
        assert "== slowest transactions" in out
        assert "== per-object latency ==" in out
        assert "== per-node span latency ==" in out
        assert "== conflict profile" in out
        assert "txn[driver]" in out  # critical paths are rendered

    def test_report_is_byte_stable(self, dist_trace_file, capsys):
        assert main(["report", dist_trace_file]) == 0
        first = capsys.readouterr().out
        assert main(["report", dist_trace_file]) == 0
        assert capsys.readouterr().out == first

    def test_report_top_and_window_flags(self, dist_trace_file, capsys):
        assert main([
            "report", dist_trace_file, "--top", "2", "--window", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "(top 2)" in out
        assert "(window=8)" in out

    def test_report_missing_file_exits_2(self, capsys):
        assert main(["report", "/nonexistent/trace.jsonl"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_report_single_node_trace_works_too(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main([
            "simulate", "QStack", "--transactions", "6", "--seed", "7",
            "--trace", str(path),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        assert "== trace summary ==" in capsys.readouterr().out

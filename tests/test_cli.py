"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_adt_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "BTree"])


class TestCommands:
    def test_adts_lists_builtins(self, capsys):
        assert main(["adts"]) == 0
        out = capsys.readouterr().out
        for name in ("QStack", "Account", "Directory"):
            assert name in out

    def test_classify(self, capsys):
        assert main(["classify", "Account"]) == 0
        out = capsys.readouterr().out
        assert "Deposit" in out and "M" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "Stack"]) == 0
        out = capsys.readouterr().out
        assert "obs/mod" in out and "Push" in out

    def test_derive_stage3(self, capsys):
        assert main(["derive", "Stack", "--stage", "3"]) == 0
        out = capsys.readouterr().out
        assert "(o1,o2)" in out and "AD" in out

    def test_derive_paper_mode(self, capsys):
        assert main(["derive", "QStack", "--paper", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "f ≠ b" in out

    def test_graph_ascii(self, capsys):
        assert main(["graph", "QStack"]) == 0
        out = capsys.readouterr().out
        assert "ref b" in out and "ref f" in out

    def test_graph_dot(self, capsys):
        assert main(["graph", "Set", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main([
            "simulate", "Account", "--transactions", "5", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "serializable: True" in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "table03"]) == 0
        out = capsys.readouterr().out
        assert "table03" in out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "nope"]) == 2


class TestTablesCommand:
    def test_tables_generates_docs(self, tmp_path, capsys):
        assert main(["tables", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "qstack.md" in out
        generated = {path.name for path in tmp_path.iterdir()}
        assert "README.md" in generated
        assert "account.md" in generated
        content = (tmp_path / "qstack.md").read_text(encoding="utf-8")
        assert "Stage 5" in content and "f ≠ b" in content

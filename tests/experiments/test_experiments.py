"""Every paper artifact must reproduce.

One test per experiment keeps failures attributable; the report module's
aggregation is tested separately.
"""

import pytest

from repro.experiments.report import ALL_EXPERIMENTS, render_markdown, render_text, run_all

_RUNNERS = dict(ALL_EXPERIMENTS)


@pytest.fixture(scope="module")
def outcomes():
    return {outcome.exp_id: outcome for outcome in run_all()}


@pytest.mark.parametrize("exp_id", [exp_id for exp_id, _ in ALL_EXPERIMENTS])
def test_experiment_matches_paper(outcomes, exp_id):
    outcome = next(
        o for o in outcomes.values() if o.exp_id.startswith(exp_id)
    )
    assert outcome.matches, f"{outcome.exp_id} diverged:\n{outcome.derived}"


class TestReport:
    def test_all_experiments_present(self, outcomes):
        assert len(outcomes) == len(ALL_EXPERIMENTS)

    def test_markdown_report_lists_every_experiment(self, outcomes):
        text = render_markdown(list(outcomes.values()))
        for outcome in outcomes.values():
            assert outcome.exp_id in text
        assert "MISMATCH" not in text

    def test_text_report_summarises(self, outcomes):
        text = render_text(list(outcomes.values()))
        assert f"{len(outcomes)}/{len(outcomes)} experiments match" in text

    def test_run_all_subset(self):
        subset = run_all(only={"table01"})
        assert len(subset) == 1
        assert subset[0].exp_id == "table01"

    def test_cli_entry_point(self):
        from repro.experiments.__main__ import main

        assert main(["table03"]) == 0
        assert main(["no-such-experiment"]) == 2

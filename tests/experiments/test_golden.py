"""Sanity checks on the golden data itself."""

from repro.experiments import golden


class TestGoldenShape:
    def test_table1_covers_all_qstack_operations(self):
        assert set(golden.TABLE1_CLASSES) == {
            "Push", "Pop", "Deq", "Top", "Size", "Replace", "XTop",
        }

    def test_table2_is_complete_grid(self):
        kinds = {"so", "co", "sm", "cm"}
        assert set(golden.TABLE2_LOCALITY) == {
            (y, x) for y in kinds for x in kinds
        }

    def test_table10_is_complete_grid(self):
        operations = set(golden.QSTACK_WORKED_OPERATIONS)
        assert set(golden.TABLE10_STAGE3) == {
            (y, x) for y in operations for x in operations
        }

    def test_table9_variants_differ_only_in_references(self):
        for name, printed in golden.TABLE9_AS_PRINTED.items():
            corrected = golden.TABLE9_CORRECTED[name]
            assert printed[:4] == corrected[:4]

    def test_table13_extends_table12(self):
        assert golden.TABLE12_PUSH_PUSH < golden.TABLE13_PUSH_PUSH_INPUT

    def test_serially_feasible_subset(self):
        assert golden.TABLE12_SERIALLY_FEASIBLE < golden.TABLE12_PUSH_PUSH

    def test_dependency_names_valid(self):
        valid = {"ND", "CD", "AD"}
        for table in (
            golden.TABLE2_LOCALITY,
            golden.TABLE4_OMO,
            golden.TABLE5_OM,
            golden.TABLE6_OM_SC,
            golden.TABLE7_MM_SC,
            golden.TABLE8_MO_SC,
            golden.TABLE10_STAGE3,
        ):
            assert set(table.values()) <= valid

"""Unit tests for the experiment infrastructure helpers."""

from repro.core.conditions import And, OutcomeIs, ReferencesDistinct
from repro.core.dependency import Dependency
from repro.core.entry import ConditionalDependency, Entry
from repro.experiments.base import (
    ExperimentOutcome,
    dependency_grid,
    entry_signature,
    paper_condition,
    render_signature,
)


class TestEntrySignature:
    def test_signature_is_order_free(self):
        pair_a = ConditionalDependency(Dependency.CD, OutcomeIs("first", "nok"))
        pair_b = ConditionalDependency(Dependency.AD, OutcomeIs("first", "ok"))
        assert entry_signature(Entry([pair_a, pair_b])) == entry_signature(
            Entry([pair_b, pair_a])
        )

    def test_signature_contents(self):
        entry = Entry(
            [ConditionalDependency(Dependency.ND, ReferencesDistinct("f", "b"))]
        )
        assert entry_signature(entry) == frozenset({("ND", "f ≠ b")})

    def test_render_signature_sorted(self):
        signature = frozenset({("CD", "x_out = nok"), ("AD", "x_out = ok")})
        text = render_signature(signature)
        assert text.splitlines() == sorted(text.splitlines())


class TestPaperCondition:
    def test_distinct_operation_names(self):
        assert (
            paper_condition("x_out = nok", "Push", "Deq") == "Push_out = nok"
        )
        assert paper_condition("y_out = ok", "Push", "Deq") == "Deq_out = ok"

    def test_same_operation_names_get_superscripts(self):
        rendered = paper_condition(
            "x_out = ok ∧ y_out = nok", "Push", "Push"
        )
        assert rendered == "Push_out^x = ok ∧ Push_out^y = nok"

    def test_input_markers(self):
        assert (
            paper_condition("x_in = y_in", "Push", "Push")
            == "Push_in^x = Push_in^y"
        )

    def test_composite_conditions(self):
        condition = And(OutcomeIs("first", "ok"), ReferencesDistinct("f", "b"))
        assert (
            paper_condition(condition.render(), "Push", "Deq")
            == "Push_out = ok ∧ f ≠ b"
        )


class TestDependencyGrid:
    def test_grid_layout(self):
        grid = dependency_grid(
            ["O", "M"], ["O", "M"], lambda y, x: "AD" if (y, x) == ("O", "M") else ""
        )
        lines = grid.splitlines()
        assert lines[0].startswith("(y,x)")
        assert "AD" in grid

    def test_outcome_summary(self):
        outcome = ExperimentOutcome(
            exp_id="t", title="x", matches=True, expected="", derived=""
        )
        assert outcome.summary() == "[MATCH] t: x"
        outcome.matches = False
        assert "MISMATCH" in outcome.summary()

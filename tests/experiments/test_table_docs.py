"""Unit tests for the per-ADT table-documentation generator."""

from repro.experiments.table_docs import generate_all, render_adt_doc


class TestRenderAdtDoc:
    def test_contains_all_sections(self):
        doc = render_adt_doc("Account")
        assert "# Account — derived compatibility tables" in doc
        assert "## Stage 2" in doc
        assert "## Stage 3" in doc
        assert "## Stage 5" in doc

    def test_conditional_entries_listed(self):
        doc = render_adt_doc("FifoQueue")
        assert "Conditional entries" in doc
        assert "b ≠ f" in doc or "f ≠ b" in doc

    def test_stage2_rows_present(self):
        doc = render_adt_doc("Stack")
        for operation in ("Push", "Pop", "Top", "Size"):
            assert f"| {operation} |" in doc


class TestGenerateAll:
    def test_one_file_per_adt_plus_index(self, tmp_path):
        written = generate_all(tmp_path)
        from repro.adts.registry import builtin_names

        assert len(written) == len(builtin_names()) + 1
        index = (tmp_path / "README.md").read_text(encoding="utf-8")
        for name in builtin_names():
            assert name in index

    def test_output_directory_created(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        generate_all(target)
        assert (target / "README.md").exists()

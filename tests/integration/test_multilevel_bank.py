"""Integration: multilevel scheduling over a composite object.

Transfers between the two accounts of the composite ``Bank`` run as
transactions against a *single* shared object; the derived table lets
transfers on disjoint accounts interleave freely while same-account
interactions are ordered or blocked.
"""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.composite import CompositeSpec
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.serializability import is_serializable
from repro.core.dependency import Dependency
from repro.core.methodology import derive


@pytest.fixture(scope="module")
def bank():
    return CompositeSpec(
        "Bank",
        {
            "a": AccountSpec(max_balance=2, amounts=(1,)),
            "b": AccountSpec(max_balance=2, amounts=(1,)),
            "c": AccountSpec(max_balance=2, amounts=(1,)),
        },
    )


@pytest.fixture(scope="module")
def bank_table(bank):
    return derive(bank).final_table


def make_scheduler(bank, table):
    scheduler = TableDrivenScheduler(policy="optimistic")
    scheduler.register_object("bank", bank, table, initial_state=(1, 1, 1))
    return scheduler


def transfer(scheduler, bank, txn, source, target):
    """Withdraw 1 from ``source`` and deposit it into ``target``."""
    withdraw = scheduler.request(
        txn, "bank", bank.component_invocation(source, "Withdraw", 1)
    )
    deposit = scheduler.request(
        txn, "bank", bank.component_invocation(target, "Deposit", 1)
    )
    return withdraw, deposit


class TestDisjointTransfers:
    def test_no_dependencies_between_disjoint_transfers(self, bank, bank_table):
        scheduler = make_scheduler(bank, bank_table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        # t1 moves a -> b while t2's operations touch only c.
        transfer(scheduler, bank, t1, "a", "b")
        decision = scheduler.request(
            t2, "bank", bank.component_invocation("c", "Balance")
        )
        assert decision.executed and decision.dependencies == ()
        assert scheduler.try_commit(t2).committed  # commits ahead of t1
        assert scheduler.try_commit(t1).committed
        assert scheduler.object("bank").state() == (0, 2, 1)
        assert is_serializable(scheduler)

    def test_conflicting_transfers_are_ordered(self, bank, bank_table):
        scheduler = make_scheduler(bank, bank_table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        transfer(scheduler, bank, t1, "a", "b")
        # t2 reads the balance t1 is withdrawing from: abort-dependent.
        decision = scheduler.request(
            t2, "bank", bank.component_invocation("a", "Balance")
        )
        assert (t1, Dependency.AD) in decision.dependencies
        scheduler.abort(t1)
        assert scheduler.transaction(t2).is_aborted  # cascade
        assert scheduler.object("bank").state() == (1, 1, 1)

    def test_failed_withdraw_only_commit_ordered(self, bank, bank_table):
        scheduler = make_scheduler(bank, bank_table)
        t1, t2 = scheduler.begin(), scheduler.begin()
        # Drain account a so the next withdraw fails.
        scheduler.request(
            t1, "bank", bank.component_invocation("a", "Withdraw", 1)
        )
        decision = scheduler.request(
            t2, "bank", bank.component_invocation("a", "Withdraw", 1)
        )
        assert decision.returned.outcome == "nok"
        # The failed withdraw observed t1's withdrawal: abort-dependency.
        assert decision.dependencies == ((t1, Dependency.AD),)

"""Integration: the five-stage pipeline over every built-in ADT.

Cross-module invariants that must hold regardless of the object:
completeness, stage monotonicity, agreement with the Section-3 semantic
notions, and soundness of every unconditional ND entry.
"""

import pytest

from repro.adts.registry import builtin_names, make_adt
from repro.core.dependency import Dependency
from repro.core.methodology import derive
from repro.semantics.commutativity import forward_commute_invocations
from repro.semantics.recoverability import recoverable_operations


@pytest.fixture(scope="module", params=builtin_names())
def derivation(request):
    return derive(make_adt(request.param)), make_adt(request.param)


class TestStructure:
    def test_tables_complete(self, derivation):
        result, _ = derivation
        for _, table in result.stage_tables():
            assert table.is_complete()

    def test_stage_monotonicity(self, derivation):
        result, _ = derivation
        assert result.stage4_table.refines(result.stage3_table)
        assert result.stage5_table.refines(result.stage4_table)

    def test_profiles_cover_operations(self, derivation):
        result, adt = derivation
        assert set(result.profiles) == set(adt.operation_names())


class TestSoundness:
    def test_unconditional_nd_entries_commute(self, derivation):
        """An unconditional ND cell claims the operations never conflict."""
        result, adt = derivation
        for invoked, executing, entry in result.final_table.cells():
            if entry.is_conditional or entry.strongest() is not Dependency.ND:
                continue
            assert all(
                forward_commute_invocations(adt, first, second)
                for first in adt.invocations_of(executing)
                for second in adt.invocations_of(invoked)
            ), (invoked, executing)

    def test_non_recoverable_pairs_are_at_least_ad_capable(self, derivation):
        """If the follower can observe the first operation's effect, the
        entry must be able to resolve to AD in some situation."""
        result, adt = derivation
        for invoked, executing, entry in result.final_table.cells():
            if recoverable_operations(adt, invoked, executing):
                continue
            assert entry.strongest() is Dependency.AD, (invoked, executing)

    def test_commuting_operations_never_forced_ad(self, derivation):
        """Operations that commute in every state need no abort-dependency."""
        result, adt = derivation
        for invoked, executing, entry in result.final_table.cells():
            commutes = all(
                forward_commute_invocations(adt, first, second)
                for first in adt.invocations_of(executing)
                for second in adt.invocations_of(invoked)
            )
            if commutes:
                assert entry.weakest() is not Dependency.AD, (invoked, executing)


class TestAgreementWithRecoverability:
    def test_stage3_no_weaker_than_recoverability_on_ad(self, derivation):
        """Stage 3 uses strictly less information than the recoverability
        relation; where recoverability demands AD, stage 3 must too."""
        from repro.semantics.recoverability import recoverability_table

        result, adt = derivation
        reference = recoverability_table(adt)
        for (invoked, executing), dep in reference.items():
            if dep is Dependency.AD:
                assert (
                    result.stage3_table.dependency(invoked, executing)
                    is Dependency.AD
                ), (invoked, executing)

"""Integration: the broad soundness sweep.

Every built-in ADT, both scheduling policies, with and without restarts,
across seeded workloads with voluntary aborts injected — every run must
complete (no livelock) and the committed portion must be serializable.
This is the hammer that caught the interleaving-composability and
restart-bookkeeping bugs during development; it stays in the suite at a
size that keeps it meaningful without dominating the runtime.
"""

import pytest

from repro.adts.registry import builtin_names, make_adt
from repro.cc.serializability import find_serialization
from repro.cc.simulator import SimulationConfig, simulate_with_scheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive

SEEDS = range(8)


@pytest.mark.parametrize("adt_name", builtin_names())
@pytest.mark.parametrize("policy", ["optimistic", "blocking"])
def test_every_run_serializable(adt_name, policy):
    adt = make_adt(adt_name)
    table = derive(adt).final_table
    for seed in SEEDS:
        workload = generate(
            adt,
            "shared",
            WorkloadConfig(
                transactions=5,
                operations_per_transaction=3,
                abort_probability=0.25 if seed % 2 else 0.0,
                seed=seed,
            ),
        )
        metrics, scheduler = simulate_with_scheduler(
            SimulationConfig(
                adt=adt,
                table=table,
                workload=workload,
                policy=policy,
                restart_aborted=bool(seed % 3),
            )
        )
        assert metrics.committed + metrics.aborted == 5, (adt_name, policy, seed)
        assert find_serialization(scheduler) is not None, (
            adt_name,
            policy,
            seed,
        )

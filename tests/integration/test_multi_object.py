"""Integration: transactions spanning several shared objects.

The scheduler records dependencies per object but enforces commit order
and abort cascades globally; these tests drive transactions that touch a
QStack and an Account together and verify the cross-object guarantees.
"""

import pytest

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.serializability import find_serialization, is_serializable
from repro.core.dependency import Dependency
from repro.core.methodology import derive
from repro.experiments import golden
from repro.spec.operation import Invocation


@pytest.fixture(scope="module")
def tables():
    qstack = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    account = AccountSpec()
    return {
        "qstack": (qstack, derive(qstack).final_table),
        "account": (account, derive(account).final_table),
    }


def make_scheduler(tables, policy="optimistic"):
    scheduler = TableDrivenScheduler(policy=policy)
    qstack, qstack_table = tables["qstack"]
    account, account_table = tables["account"]
    scheduler.register_object("qs", qstack, qstack_table, initial_state=("a", "b"))
    scheduler.register_object("acct", account, account_table, initial_state=2)
    return scheduler


class TestCrossObjectDependencies:
    def test_dependencies_span_objects(self, tables):
        scheduler = make_scheduler(tables)
        t1, t2 = scheduler.begin(), scheduler.begin()
        # Conflict on the account...
        scheduler.request(t1, "acct", Invocation("Deposit", (1,)))
        scheduler.request(t2, "acct", Invocation("Balance"))  # AD on t1
        # ...and independent work on the QStack.
        scheduler.request(t2, "qs", Invocation("Top"))
        commit = scheduler.try_commit(t2)
        assert not commit.committed and commit.waiting_on == {t1}
        assert scheduler.try_commit(t1).committed
        assert scheduler.try_commit(t2).committed
        assert is_serializable(scheduler)

    def test_abort_rolls_back_every_object(self, tables):
        scheduler = make_scheduler(tables)
        t1 = scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Push", ("a",)))
        scheduler.request(t1, "acct", Invocation("Deposit", (2,)))
        scheduler.abort(t1)
        assert scheduler.object("qs").state() == ("a", "b")
        assert scheduler.object("acct").state() == 2

    def test_cascade_crosses_objects(self, tables):
        scheduler = make_scheduler(tables)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "acct", Invocation("Deposit", (1,)))
        # t2 observes t1's deposit (AD) then touches the QStack.
        decision = scheduler.request(t2, "acct", Invocation("Balance"))
        assert (t1, Dependency.AD) in decision.dependencies
        scheduler.request(t2, "qs", Invocation("Push", ("b",)))
        scheduler.abort(t1)
        assert scheduler.transaction(t2).is_aborted
        # t2's push was rolled back along with it.
        assert scheduler.object("qs").state() == ("a", "b")

    def test_conflicts_isolated_per_object(self, tables):
        scheduler = make_scheduler(tables)
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Pop"))
        decision = scheduler.request(t2, "acct", Invocation("Withdraw", (1,)))
        assert decision.dependencies == ()  # different objects never conflict

    def test_serialization_spans_objects(self, tables):
        scheduler = make_scheduler(tables)
        t1, t2, t3 = scheduler.begin(), scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "qs", Invocation("Push", ("a",)))
        scheduler.request(t2, "acct", Invocation("Deposit", (1,)))
        scheduler.request(t3, "qs", Invocation("Deq"))
        scheduler.request(t3, "acct", Invocation("Balance"))
        for txn in (t3, t1, t2):
            if not scheduler.transaction(txn).is_active:
                continue
            decision = scheduler.try_commit(txn)
            if not decision.committed:
                # commit-order waits resolve once predecessors commit
                for other in decision.waiting_on:
                    if scheduler.transaction(other).is_active:
                        scheduler.try_commit(other)
                if scheduler.transaction(txn).is_active:
                    scheduler.try_commit(txn)
        committed = [
            txn
            for txn in (t1, t2, t3)
            if scheduler.transaction(txn).is_committed
        ]
        order = find_serialization(scheduler)
        assert order is not None
        assert set(order) == set(committed)


class TestBlockingAcrossObjects:
    def test_block_on_one_object_only(self, tables):
        scheduler = make_scheduler(tables, policy="blocking")
        t1, t2 = scheduler.begin(), scheduler.begin()
        scheduler.request(t1, "acct", Invocation("Deposit", (1,)))
        blocked = scheduler.request(t2, "acct", Invocation("Balance"))
        assert not blocked.executed
        # The same transaction can still proceed on the other object.
        executed = scheduler.request(t2, "qs", Invocation("Top"))
        assert executed.executed

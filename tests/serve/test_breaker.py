"""The circuit breaker state machine and its determinism guarantees."""

import pytest

from repro.adts.registry import make_adt
from repro.cc.scheduler import TableDrivenScheduler
from repro.core.methodology import derive
from repro.errors import SchedulerError
from repro.serve import (
    BreakerBoard,
    BreakerConfig,
    SchedulerBackend,
    ServeConfig,
    ServingLoop,
    generate,
)


class TestStateMachine:
    def config(self, **overrides):
        defaults = dict(
            window=4, failure_threshold=2, min_requests=2,
            cooldown=5.0, probe_quota=2,
        )
        defaults.update(overrides)
        return BreakerConfig(**defaults)

    def test_trips_at_threshold_after_min_requests(self):
        board = BreakerBoard(self.config())
        board.on_outcome("obj", False, 1.0)
        assert board.states() == {"obj": "closed"}  # min_requests unmet
        board.on_outcome("obj", False, 2.0)
        assert board.states() == {"obj": "open"}
        assert [
            (t.old, t.new) for t in board.transitions
        ] == [("closed", "open")]

    def test_open_sheds_until_cooldown_then_probes(self):
        board = BreakerBoard(self.config())
        board.on_outcome("obj", False, 1.0)
        board.on_outcome("obj", False, 2.0)
        assert not board.allow(["obj"], 3.0)  # inside the cooldown
        assert board.allow(["obj"], 8.0)  # past cooldown: half-open probe
        assert board.states() == {"obj": "half_open"}
        assert board.allow(["obj"], 8.0)  # second probe slot
        assert not board.allow(["obj"], 8.0)  # probe quota exhausted

    def test_probe_failure_reopens_probe_successes_close(self):
        board = BreakerBoard(self.config())
        board.on_outcome("obj", False, 1.0)
        board.on_outcome("obj", False, 2.0)
        assert board.allow(["obj"], 8.0)
        board.on_outcome("obj", False, 8.0)
        assert board.states() == {"obj": "open"}  # fresh cooldown
        assert not board.allow(["obj"], 9.0)
        assert board.allow(["obj"], 14.0)
        board.on_outcome("obj", True, 14.0)
        assert board.allow(["obj"], 14.0)
        board.on_outcome("obj", True, 14.0)
        assert board.states() == {"obj": "closed"}

    def test_successes_never_create_a_breaker(self):
        board = BreakerBoard(self.config())
        board.on_outcome("healthy", True, 1.0)
        assert board.states() == {}

    def test_any_tripped_object_sheds_the_whole_request(self):
        board = BreakerBoard(self.config())
        board.on_outcome("hot", False, 1.0)
        board.on_outcome("hot", False, 2.0)
        assert not board.allow(["cold", "hot"], 3.0)
        assert board.allow(["cold"], 3.0)

    def test_straggler_outcomes_during_open_are_ignored(self):
        board = BreakerBoard(self.config())
        board.on_outcome("obj", False, 1.0)
        board.on_outcome("obj", False, 2.0)
        board.on_outcome("obj", True, 3.0)  # finished before the trip
        assert board.states() == {"obj": "open"}
        assert len(board.transitions) == 1

    def test_validation(self):
        with pytest.raises(SchedulerError):
            BreakerConfig(window=0)
        with pytest.raises(SchedulerError):
            BreakerConfig(window=4, failure_threshold=5)
        with pytest.raises(SchedulerError):
            BreakerConfig(cooldown=0.0)


HOT = ServeConfig(
    sessions=6,
    requests_per_session=4,
    operations_per_request=4,
    mode="open",
    mean_interarrival=0.1,
    objects=2,
    zipf_s=1.5,
    operation_mix={"Pop": 2.0, "Push": 1.0},
    seed=1991,
)


def hardened_run(seed: int):
    adt = make_adt("QStack")
    table = derive(adt).final_table
    backend = SchedulerBackend(TableDrivenScheduler(policy="optimistic"))
    config = ServeConfig(
        sessions=HOT.sessions,
        requests_per_session=HOT.requests_per_session,
        operations_per_request=HOT.operations_per_request,
        mode=HOT.mode,
        mean_interarrival=HOT.mean_interarrival,
        objects=HOT.objects,
        zipf_s=HOT.zipf_s,
        operation_mix=HOT.operation_mix,
        seed=seed,
    )
    workload = generate(adt, config)
    for name in workload.object_names:
        backend.register_object(name, adt, table)
    loop = ServingLoop(
        backend,
        workload,
        max_inflight=8,
        breakers=BreakerConfig(
            window=4, failure_threshold=2, min_requests=2, cooldown=1.0
        ),
    )
    return loop.run()


class TestLoopDeterminism:
    def test_same_seed_same_breaker_timeline(self):
        one = hardened_run(1991)
        two = hardened_run(1991)
        assert one.breaker_transitions == two.breaker_transitions
        assert one.shed == two.shed
        assert one.outcomes == two.outcomes

    def test_breaker_timelines_are_deterministic_across_seeds(self):
        # Each seed's timeline is a pure function of its workload:
        # replaying any seed reproduces it exactly.
        for seed in (1, 7, 1991):
            assert (
                hardened_run(seed).breaker_transitions
                == hardened_run(seed).breaker_transitions
            )

    def test_breaker_sheds_are_terminal_outcomes(self):
        result = hardened_run(1991)
        assert (
            result.committed
            + result.aborted
            + result.shed
            + result.deadline_exceeded
            + result.retries_exhausted
            == result.requests
        )

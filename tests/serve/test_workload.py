"""Serving workload generators are deterministic, seeded properties.

Every stream — open or closed, uniform or Zipfian, bursty or flat — is
a pure function of its :class:`~repro.serve.workload.ServeConfig`:
identical configs are byte-stable (equal fingerprints), different seeds
diverge, and the structural invariants (sorted open-loop arrivals,
per-session closed-loop chains, mix-restricted operations) hold across
a seed sweep.
"""

import pytest

from repro.adts.registry import make_adt
from repro.cc.workload import WorkloadConfig
from repro.cc.workload import generate as cc_generate
from repro.serve import (
    BurstEnvelope,
    ServeConfig,
    from_cc_workload,
    generate,
    zipf_weights,
)

SEEDS = [1, 2, 7, 11, 23, 47, 101, 1991, 2024, 31337]


@pytest.fixture(scope="module")
def account():
    return make_adt("Account")


@pytest.fixture(scope="module")
def qstack():
    return make_adt("QStack")


class TestDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_config_same_fingerprint(self, account, seed):
        config = ServeConfig(seed=seed, zipf_s=1.2, objects=4)
        first = generate(account, config)
        second = generate(account, config)
        assert first.fingerprint() == second.fingerprint()
        assert first.requests == second.requests

    def test_distinct_seeds_distinct_streams(self, account):
        fingerprints = {
            generate(account, ServeConfig(seed=seed)).fingerprint()
            for seed in SEEDS
        }
        assert len(fingerprints) == len(SEEDS)

    def test_mode_changes_fingerprint(self, account):
        open_loop = generate(account, ServeConfig(mode="open", seed=3))
        closed_loop = generate(account, ServeConfig(mode="closed", seed=3))
        assert open_loop.fingerprint() != closed_loop.fingerprint()

    def test_burst_envelope_is_deterministic(self, account):
        config = ServeConfig(
            mode="open", burst=BurstEnvelope(period=8.0, amplitude=0.5),
            seed=5,
        )
        assert (
            generate(account, config).fingerprint()
            == generate(account, config).fingerprint()
        )


class TestStructure:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_open_arrivals_sorted_ids_sequential(self, account, seed):
        workload = generate(account, ServeConfig(mode="open", seed=seed))
        arrivals = [request.arrival for request in workload.requests]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in workload.requests] == list(
            range(len(workload.requests))
        )

    @pytest.mark.parametrize("seed", SEEDS[:5])
    def test_closed_sessions_have_think_times(self, account, seed):
        config = ServeConfig(mode="closed", mean_think_time=2.0, seed=seed)
        workload = generate(account, config)
        sessions = {request.session for request in workload.requests}
        assert len(sessions) == config.sessions
        assert any(request.think_time > 0 for request in workload.requests)

    def test_operation_mix_restricts_operations(self, qstack):
        config = ServeConfig(
            operation_mix={"Push": 1.0, "Pop": 1.0}, seed=9
        )
        workload = generate(qstack, config)
        names = {
            step.invocation.operation
            for request in workload.requests
            for step in request.steps
        }
        assert names <= {"Push", "Pop"}

    def test_zipf_skews_toward_first_objects(self, account):
        config = ServeConfig(
            sessions=16, requests_per_session=16, objects=8, zipf_s=1.5,
            seed=13,
        )
        workload = generate(account, config)
        counts: dict[str, int] = {}
        for request in workload.requests:
            name = request.primary_object()
            counts[name] = counts.get(name, 0) + 1
        ranked = sorted(counts.items(), key=lambda item: -item[1])
        assert ranked[0][0] == workload.object_names[0]

    def test_total_operations_counts_steps(self, account):
        config = ServeConfig(
            sessions=3, requests_per_session=4, operations_per_request=2,
            seed=1,
        )
        workload = generate(account, config)
        assert workload.total_operations() == sum(
            len(request.steps) for request in workload.requests
        )


class TestZipfWeights:
    def test_decreasing_by_rank_power_law(self):
        weights = zipf_weights(8, 1.2)
        assert all(a > b for a, b in zip(weights, weights[1:]))
        assert weights[0] == 1.0
        assert abs(weights[1] - 1.0 / 2 ** 1.2) < 1e-12

    def test_s_zero_is_uniform(self):
        assert zipf_weights(5, 0.0) == [1.0] * 5


class TestFromCCWorkload:
    def test_preserves_steps_and_aborts(self, qstack):
        cc_workload = cc_generate(
            qstack,
            "obj",
            WorkloadConfig(
                transactions=8, operations_per_transaction=3,
                abort_probability=0.3, seed=42,
            ),
        )
        served = from_cc_workload(cc_workload)
        assert len(served.requests) == len(cc_workload.programs)
        assert served.object_names == ("obj",)
        assert any(request.voluntary_abort for request in served.requests)
        assert served.total_operations() == cc_workload.total_operations()

"""Poll-mode serving is transcript-identical to the harness driver.

The serving loop's correctness anchor: with ``retry="poll"`` over a
single-object workload lifted from the harness generator, the loop must
make exactly the calls :func:`repro.cc.harness.drive` makes — same
admission order, same round-robin, same observed-abort handling — and
the resulting :class:`~repro.cc.harness.Transcript` (per-operation
decisions, resolutions, dependency edges, statuses, final state and
seed counters) is compared by full structural equality.  A ``batching``
of 1 (``max_inflight=1``) is the strict single-request front-end; wider
batching must still match ``drive`` at the same concurrency.
"""

import pytest

from repro.adts.registry import make_adt
from repro.cc.harness import drive
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.serve import SchedulerBackend, ServingLoop, from_cc_workload

SEEDS = [1, 2, 7, 11, 23, 47, 101, 1991, 2024, 31337]


@pytest.fixture(scope="module", params=["Account", "QStack"])
def fixture(request):
    adt = make_adt(request.param)
    return adt, derive(adt).final_table


def workload_for(adt, seed):
    return generate(
        adt,
        "obj",
        WorkloadConfig(
            transactions=8,
            operations_per_transaction=3,
            abort_probability=0.15,
            seed=seed,
        ),
    )


def serve_poll(adt, table, workload, policy, max_inflight):
    backend = SchedulerBackend(TableDrivenScheduler(policy=policy))
    backend.register_object("obj", adt, table)
    loop = ServingLoop(
        backend,
        from_cc_workload(workload),
        max_inflight=max_inflight,
        retry="poll",
    )
    return loop.run()


class TestPollParity:
    @pytest.mark.parametrize("policy", ["optimistic", "blocking"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_single_request_front_end_matches_drive(
        self, fixture, policy, seed
    ):
        adt, table = fixture
        workload = workload_for(adt, seed)
        reference = drive(
            TableDrivenScheduler(policy=policy), adt, table, workload,
            concurrency=1,
        )
        result = serve_poll(adt, table, workload, policy, max_inflight=1)
        assert result.transcript is not None
        assert result.transcript == reference

    @pytest.mark.parametrize("policy", ["optimistic", "blocking"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batched_front_end_matches_drive(self, fixture, policy, seed):
        adt, table = fixture
        workload = workload_for(adt, seed)
        reference = drive(
            TableDrivenScheduler(policy=policy), adt, table, workload,
            concurrency=4,
        )
        result = serve_poll(adt, table, workload, policy, max_inflight=4)
        assert result.transcript == reference

    def test_committed_counts_match_transcript(self, fixture):
        adt, table = fixture
        workload = workload_for(adt, 7)
        result = serve_poll(adt, table, workload, "blocking", max_inflight=4)
        assert result.committed == len(result.transcript.committed())
        assert result.committed + result.aborted == result.requests

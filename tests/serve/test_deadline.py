"""Deadline budgets and the capped, jittered retry policy.

The policy objects themselves (shape, caps, stream isolation) plus the
loop-level deadline contract: expired requests terminate as
``deadline_exceeded`` — shed, never silently retried — and deadlines
propagated through the cluster's bus envelopes expire messages and RPC
attempts instead of burning the full retry schedule.
"""

import random

import pytest

from repro.adts.registry import make_adt
from repro.cc.scheduler import TableDrivenScheduler
from repro.core.methodology import derive
from repro.dist.bus import SimBus
from repro.dist.cluster import Cluster, ClusterFrontend
from repro.errors import SchedulerError
from repro.serve import (
    ClusterBackend,
    DeadlinePolicy,
    RetryPolicy,
    SchedulerBackend,
    ServeConfig,
    ServingLoop,
    generate,
)


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(base=1.0, max_backoff=8.0, jitter=0.0)
        rng = policy.stream()
        delays = [policy.backoff(n, rng, tick=1.0) for n in range(1, 8)]
        assert delays[:4] == [1.0, 2.0, 4.0, 8.0]
        # The exponential term saturates at max_backoff.
        assert delays[4:] == [8.0, 8.0, 8.0]

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base=1.0, max_backoff=8.0, jitter=0.5, seed=42)
        one = [policy.backoff(n, policy.stream(), 1.0) for n in (1,)]
        two = [policy.backoff(n, policy.stream(), 1.0) for n in (1,)]
        assert one == two  # same seed, same stream, same draw
        assert 1.0 <= one[0] <= 1.5  # jitter adds at most jitter*base
        other = RetryPolicy(base=1.0, max_backoff=8.0, jitter=0.5, seed=43)
        assert other.backoff(1, other.stream(), 1.0) != one[0]

    def test_stream_is_the_dedicated_serve_retry_stream(self):
        policy = RetryPolicy(seed=7)
        expected = random.Random("serve:retry:7").random()
        assert policy.stream().random() == expected

    def test_base_defaults_to_the_loop_tick(self):
        policy = RetryPolicy(jitter=0.0)
        assert policy.backoff(1, policy.stream(), tick=0.25) == 0.25

    def test_validation(self):
        with pytest.raises(SchedulerError):
            RetryPolicy(max_backoff=0.0)
        with pytest.raises(SchedulerError):
            RetryPolicy(jitter=-0.1)


class TestDeadlinePolicy:
    def test_deadline_is_arrival_plus_budget(self):
        assert DeadlinePolicy(budget=3.0).deadline_of(2.0) == 5.0

    def test_budget_must_be_positive(self):
        with pytest.raises(SchedulerError):
            DeadlinePolicy(budget=0.0)


@pytest.fixture(scope="module")
def account():
    adt = make_adt("Account")
    return adt, derive(adt).final_table


CONTENDED = ServeConfig(
    sessions=4,
    requests_per_session=4,
    operations_per_request=3,
    mode="open",
    mean_interarrival=0.1,
    objects=1,
    operation_mix={"Deposit": 1.0},
    seed=1991,
)


def scheduler_backend(fixture, workload, policy="blocking"):
    adt, table = fixture
    backend = SchedulerBackend(TableDrivenScheduler(policy=policy))
    for name in workload.object_names:
        backend.register_object(name, adt, table)
    return backend


class TestLoopDeadlines:
    def test_generous_budget_changes_nothing(self, account):
        adt, _ = account
        workload = generate(adt, CONTENDED)
        plain = ServingLoop(
            scheduler_backend(account, workload), workload, max_inflight=4
        ).run()
        budgeted = ServingLoop(
            scheduler_backend(account, workload),
            workload,
            max_inflight=4,
            deadline=DeadlinePolicy(budget=1e9),
        ).run()
        assert budgeted.committed == plain.committed
        assert budgeted.deadline_exceeded == 0

    def test_tight_budget_sheds_as_deadline_exceeded(self, account):
        adt, _ = account
        workload = generate(adt, CONTENDED)
        result = ServingLoop(
            scheduler_backend(account, workload),
            workload,
            max_inflight=1,  # serialize so the backlog outlives budgets
            deadline=DeadlinePolicy(budget=0.05),
        ).run()
        assert result.deadline_exceeded > 0
        assert (
            result.committed
            + result.aborted
            + result.shed
            + result.deadline_exceeded
            + result.retries_exhausted
            == result.requests
        )
        # Every deadline death is a terminal outcome, never a retry.
        expired = [
            rid
            for rid, outcome in result.outcomes
            if outcome == "deadline_exceeded"
        ]
        assert len(expired) == result.deadline_exceeded

    def test_deadline_requires_ready_mode(self, account):
        adt, _ = account
        workload = generate(adt, CONTENDED)
        with pytest.raises(SchedulerError):
            ServingLoop(
                scheduler_backend(account, workload),
                workload,
                retry="poll",
                deadline=DeadlinePolicy(budget=1.0),
            )


def echo_endpoint(bus, name="server"):
    served = []

    def handler(message):
        served.append(message.kind)
        bus.send(
            name, message.src, f"{message.kind}-reply", message.gtxn,
            {}, request_id=message.request_id,
        )

    bus.register_endpoint(name, handler)
    return served


class TestBusDeadlines:
    def test_expired_rpc_counts_rpc_expired_not_timeout(self):
        # No endpoint: every attempt would time out, but the deadline
        # clips the waits and abandons the exchange at the budget.
        bus = SimBus(timeout=4.0, retries=3)
        reply = bus.rpc("client", "server", "ping", 1, {}, deadline=5.0)
        assert reply is None
        assert bus.stats.rpc_expired == 1
        assert bus.stats.rpc_timeouts == 0
        assert bus.now <= 5.0 + 1e-9

    def test_expired_messages_are_dropped_in_transit(self):
        bus = SimBus(base_latency=2.0)
        served = echo_endpoint(bus)
        # Stale mail: delivers at 2.0, dead at 1.0 -> dropped in flight.
        bus.send("client", "server", "stale", 1, {}, deadline=1.0)
        # A live RPC pumps the queue past the stale message.
        reply = bus.rpc("client", "server", "ping", 2, {})
        assert reply is not None
        assert served == ["ping"]
        assert bus.stats.messages_expired == 1

    def test_zero_deadline_means_no_deadline(self):
        bus = SimBus(base_latency=2.0)
        served = echo_endpoint(bus)
        bus.send("client", "server", "mail", 1, {})
        reply = bus.rpc("client", "server", "ping", 2, {})
        assert reply is not None
        assert served == ["mail", "ping"]
        assert bus.stats.messages_expired == 0

    def test_cluster_deadline_exceeded_never_commits(self, account):
        adt, table = account
        cluster = Cluster(adt, table, shards=2, policy="blocking")
        backend = ClusterBackend(ClusterFrontend(cluster))
        workload = generate(
            adt,
            ServeConfig(
                sessions=3,
                requests_per_session=3,
                mode="open",
                mean_interarrival=0.2,
                objects=2,
                seed=5,
            ),
            object_names=tuple(cluster.shard_names),
        )
        loop = ServingLoop(
            backend,
            workload,
            max_inflight=2,
            deadline=DeadlinePolicy(budget=0.5),
        )
        result = loop.run()
        assert result.deadline_exceeded > 0
        # No transaction begun for an expired request is committed.
        for rid, outcome in sorted(loop.outcomes.items()):
            if outcome != "deadline_exceeded":
                continue
            for gtxn in loop.request_txns.get(rid, ()):
                assert cluster.gstatus.get(gtxn) != "COMMITTED"

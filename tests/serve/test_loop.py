"""The serving loop's behavioural contract: batching, retries, latency.

Covers the engine itself (the parity and adaptive suites cover its
correctness anchors): batched admission beats the single-request
front-end on sim-time goodput, at-least-once retry re-enters scheduler
aborts without retrying voluntary ones, latency phases land in the
recorder, and the traced run renders a byte-stable dashboard serving
section over both backends.
"""

import pytest

from repro.adts.registry import make_adt
from repro.cc.scheduler import TableDrivenScheduler
from repro.core.methodology import derive
from repro.dist.cluster import Cluster, ClusterFrontend
from repro.errors import SchedulerError
from repro.obs.analysis import render_dashboard
from repro.obs.tracers import RecordingTracer
from repro.serve import (
    AdaptiveController,
    ClusterBackend,
    SchedulerBackend,
    ServeConfig,
    ServingLoop,
    generate,
    serve,
)


@pytest.fixture(scope="module")
def account():
    adt = make_adt("Account")
    return adt, derive(adt).final_table


@pytest.fixture(scope="module")
def qstack():
    adt = make_adt("QStack")
    return adt, derive(adt).final_table


def scheduler_backend(fixture, workload, policy="blocking", tracer=None):
    adt, table = fixture
    backend = SchedulerBackend(TableDrivenScheduler(policy=policy, tracer=tracer))
    for name in workload.object_names:
        backend.register_object(name, adt, table)
    return backend


CONTENDED = ServeConfig(
    sessions=6,
    requests_per_session=6,
    operations_per_request=3,
    mode="open",
    mean_interarrival=0.05,
    objects=1,
    operation_mix={"Deposit": 1.0},
    seed=1991,
)


class TestBatching:
    def test_batched_goodput_beats_serial(self, account):
        adt, _ = account
        workload = generate(adt, CONTENDED)
        serial = ServingLoop(
            scheduler_backend(account, workload), workload, max_inflight=1
        ).run()
        batched = ServingLoop(
            scheduler_backend(account, workload), workload, max_inflight=16
        ).run()
        assert serial.committed == batched.committed == serial.requests
        assert batched.goodput_per_time() >= 3 * serial.goodput_per_time()

    def test_serve_helper_runs_ready_mode(self, account):
        adt, _ = account
        workload = generate(adt, CONTENDED)
        result = serve(
            scheduler_backend(account, workload), workload, max_inflight=8
        )
        assert result.committed == result.requests
        assert result.forced_wakes == 0

    def test_latency_phases_are_recorded(self, account):
        adt, _ = account
        workload = generate(adt, CONTENDED)
        result = ServingLoop(
            scheduler_backend(account, workload), workload, max_inflight=8
        ).run()
        e2e = result.latency.merged("serve.e2e")
        assert e2e.count == result.requests
        assert result.latency.merged("serve.queue_wait").count == result.requests
        assert result.latency.merged("serve.service").count > 0


RETRY_CONFIG = ServeConfig(
    sessions=6,
    requests_per_session=4,
    operations_per_request=4,
    mode="open",
    mean_interarrival=0.2,
    objects=2,
    zipf_s=1.5,
    operation_mix={"Pop": 2.0, "Push": 1.0},
    seed=1991,
)


class TestRetryAborts:
    def test_scheduler_aborts_are_retried(self, qstack):
        adt, _ = qstack
        workload = generate(adt, RETRY_CONFIG)
        plain = ServingLoop(
            scheduler_backend(qstack, workload, policy="optimistic"),
            workload,
            max_inflight=8,
        ).run()
        retried = ServingLoop(
            scheduler_backend(qstack, workload, policy="optimistic"),
            workload,
            max_inflight=8,
            retry_aborts=True,
        ).run()
        assert plain.retries == 0
        assert retried.retries > 0
        assert retried.committed >= plain.committed
        # Every admitted request reaches exactly one terminal outcome.
        assert (
            retried.committed
            + retried.aborted
            + retried.shed
            + retried.deadline_exceeded
            + retried.retries_exhausted
            == retried.requests
        )
        assert len(retried.outcomes) == retried.requests

    def test_voluntary_aborts_are_never_retried(self, account):
        adt, _ = account
        config = ServeConfig(
            sessions=3,
            requests_per_session=3,
            abort_probability=1.0,
            seed=7,
        )
        workload = generate(adt, config)
        result = ServingLoop(
            scheduler_backend(account, workload),
            workload,
            max_inflight=4,
            retry_aborts=True,
        ).run()
        assert result.committed == 0
        assert result.aborted == result.requests
        assert result.retries == 0

    def test_retry_requires_ready_mode(self, account):
        adt, _ = account
        workload = generate(adt, CONTENDED)
        with pytest.raises(SchedulerError):
            ServingLoop(
                scheduler_backend(account, workload),
                workload,
                retry="poll",
                retry_aborts=True,
            )


class TestDashboardSection:
    def traced_events(self, fixture, controller=None):
        adt, _ = fixture
        tracer = RecordingTracer()
        workload = generate(
            adt,
            ServeConfig(
                sessions=4,
                requests_per_session=4,
                objects=2,
                zipf_s=1.0,
                mean_interarrival=0.3,
                seed=11,
            ),
        )
        ServingLoop(
            scheduler_backend(fixture, workload, tracer=tracer),
            workload,
            max_inflight=6,
            controller=controller,
        ).run()
        return tracer.events

    def test_serving_section_renders_and_is_byte_stable(self, account):
        events = self.traced_events(account)
        dashboard = render_dashboard(events)
        assert "== serving ==" in dashboard
        assert "sustained throughput" in dashboard
        again = render_dashboard(self.traced_events(account))
        assert dashboard == again

    def test_policy_timeline_appears_with_a_controller(self, qstack):
        controller = AdaptiveController(
            check_every=2, confirm=1, min_dwell=1, min_requests=4
        )
        events = self.traced_events(qstack, controller=controller)
        dashboard = render_dashboard(events)
        assert "== serving ==" in dashboard
        if any(type(event).__name__ == "PolicySwitched" for event in events):
            assert "policy switches" in dashboard

    def test_cluster_serving_section_uses_root_spans(self, account):
        adt, table = account
        tracer = RecordingTracer()
        cluster = Cluster(
            adt, table, shards=2, policy="blocking", tracer=tracer
        )
        backend = ClusterBackend(ClusterFrontend(cluster))
        config = ServeConfig(
            sessions=4,
            requests_per_session=3,
            mode="closed",
            objects=2,
            seed=5,
        )
        workload = generate(
            adt, config, object_names=tuple(cluster.shard_names)
        )
        result = ServingLoop(backend, workload, max_inflight=6).run()
        dashboard = render_dashboard(tracer.events)
        assert "== serving ==" in dashboard
        assert f"committed={result.committed}" in dashboard

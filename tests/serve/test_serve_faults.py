"""Serving over faults: determinism, terminal outcomes, no resurrection.

The PR 9 property suite:

* the empty-fault-plan contract — a hardened loop given an all-zero
  :class:`~repro.robust.faults.FaultSpec` is bit-identical to the same
  loop with no plan at all (nothing is drawn from any RNG);
* every admitted request reaches exactly one terminal outcome, under
  scheduler-level storms and under message storms plus crashes;
* no request the loop shed, expired or retired ever appears in a
  committed history — certified by ``is_serializable`` on the bare
  scheduler and by :func:`~repro.dist.audit.audit_global` on the
  cluster;
* the end-to-end campaign (:func:`repro.serve.chaos.run_serving_chaos`)
  passes its gates and renders byte-stable.
"""

import json

import pytest

from repro.adts.registry import make_adt
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.serializability import is_serializable
from repro.core.methodology import derive
from repro.dist.audit import audit_global
from repro.dist.cluster import Cluster, ClusterFrontend
from repro.robust import FaultPlan, FaultSpec
from repro.serve import (
    BreakerConfig,
    ClusterBackend,
    DeadlinePolicy,
    RetryPolicy,
    SchedulerBackend,
    ServeConfig,
    ServingLoop,
    ShedConfig,
    generate,
    run_serving_chaos,
)

TERMINAL = ("committed", "aborted", "shed", "deadline_exceeded",
            "retries_exhausted")
SHEDDED = ("shed", "deadline_exceeded", "retries_exhausted")


@pytest.fixture(scope="module")
def qstack():
    adt = make_adt("QStack")
    return adt, derive(adt).final_table


@pytest.fixture(scope="module")
def account():
    adt = make_adt("Account")
    return adt, derive(adt).final_table


CONFIG = ServeConfig(
    sessions=5,
    requests_per_session=4,
    operations_per_request=3,
    mode="open",
    mean_interarrival=0.3,
    objects=2,
    zipf_s=1.2,
    operation_mix={"Pop": 2.0, "Push": 1.0},
    seed=1991,
)


def hardened_scheduler_loop(fixture, fault_plan=None, config=CONFIG):
    adt, table = fixture
    backend = SchedulerBackend(TableDrivenScheduler(policy="optimistic"))
    workload = generate(adt, config)
    for name in workload.object_names:
        backend.register_object(name, adt, table)
    return ServingLoop(
        backend,
        workload,
        max_inflight=8,
        retry_aborts=True,
        max_retries=3,
        deadline=DeadlinePolicy(budget=64.0),
        retry_policy=RetryPolicy(seed=1991),
        breakers=BreakerConfig(),
        shedding=ShedConfig(queue_limit=64),
        fault_plan=fault_plan,
    )


def fingerprint(result):
    return (
        result.requests, result.committed, result.aborted, result.shed,
        result.deadline_exceeded, result.retries_exhausted, result.retries,
        result.goodput_ops, result.sim_duration, result.outcomes,
        result.breaker_transitions, result.degradation_steps,
    )


class TestEmptyPlanBitIdentity:
    def test_empty_plan_is_bit_identical_to_no_plan(self, qstack):
        bare = hardened_scheduler_loop(qstack, fault_plan=None).run()
        plan = FaultPlan(1991, FaultSpec())
        guarded = hardened_scheduler_loop(qstack, fault_plan=plan).run()
        assert fingerprint(guarded) == fingerprint(bare)
        assert plan.stats.faults_injected == 0

    def test_hardening_without_pressure_changes_no_outcomes(self, account):
        adt, table = account
        # A benign workload: commuting deposits, spread arrivals — no
        # aborts, so no retries, no trips, no backlog, no deadlines.
        benign = ServeConfig(
            sessions=4,
            requests_per_session=4,
            operations_per_request=2,
            mode="open",
            mean_interarrival=0.5,
            objects=2,
            operation_mix={"Deposit": 1.0},
            seed=1991,
        )

        def run(hardened: bool):
            backend = SchedulerBackend(
                TableDrivenScheduler(policy="blocking")
            )
            workload = generate(adt, benign)
            for name in workload.object_names:
                backend.register_object(name, adt, table)
            extras = {}
            if hardened:
                extras = dict(
                    deadline=DeadlinePolicy(budget=64.0),
                    retry_policy=RetryPolicy(seed=1991),
                    breakers=BreakerConfig(),
                    shedding=ShedConfig(queue_limit=64),
                )
            return ServingLoop(
                backend, workload, max_inflight=8, retry_aborts=True,
                max_retries=3, **extras,
            ).run()

        plain, hardened = run(False), run(True)
        # Generous budgets, untripped breakers, an empty ladder: the
        # hardened loop lands the same outcomes as the plain one.
        assert hardened.outcomes == plain.outcomes
        assert hardened.committed == plain.committed == plain.requests
        assert hardened.shed == 0
        assert hardened.deadline_exceeded == 0
        assert hardened.breaker_transitions == ()
        assert hardened.degradation_steps == ()


class TestTerminalOutcomes:
    def run_stormy(self, fixture, seed):
        plan = FaultPlan(seed, FaultSpec.storm(0.15))
        loop = hardened_scheduler_loop(fixture, fault_plan=plan)
        return loop, loop.run()

    def test_every_request_reaches_exactly_one_terminal_outcome(self, qstack):
        for seed in (1, 7, 1991):
            loop, result = self.run_stormy(qstack, seed)
            assert sum(
                getattr(result, outcome)
                if outcome != "committed" else result.committed
                for outcome in TERMINAL
            ) == result.requests
            assert len(loop.outcomes) == result.requests
            assert set(loop.outcomes.values()) <= set(TERMINAL)

    def test_storms_are_reproducible(self, qstack):
        one = self.run_stormy(qstack, 7)[1]
        two = self.run_stormy(qstack, 7)[1]
        assert fingerprint(one) == fingerprint(two)


class TestNoResurrection:
    def test_scheduler_shed_requests_never_commit(self, qstack):
        plan = FaultPlan(1991, FaultSpec.storm(0.2))
        loop = hardened_scheduler_loop(
            qstack,
            fault_plan=plan,
            config=ServeConfig(
                sessions=6,
                requests_per_session=4,
                operations_per_request=3,
                mode="open",
                mean_interarrival=0.1,
                objects=1,
                operation_mix={"Pop": 2.0, "Push": 1.0},
                seed=3,
            ),
        )
        result = loop.run()
        scheduler = loop.backend.scheduler
        shed = [
            rid for rid, outcome in loop.outcomes.items()
            if outcome in SHEDDED
        ]
        assert shed  # the storm must actually shed something
        for rid in shed:
            for txn in loop.request_txns.get(rid, ()):
                assert scheduler.transaction(txn).status.name != "COMMITTED"
        assert is_serializable(scheduler)
        assert result.committed == sum(
            1 for outcome in loop.outcomes.values() if outcome == "committed"
        )

    def test_cluster_shed_requests_never_commit(self, account):
        adt, table = account
        plan = FaultPlan(11, FaultSpec(
            msg_drop_rate=0.1,
            msg_duplicate_rate=0.1,
            msg_delay_rate=0.1,
            crash_rate=0.05,
        ))
        cluster = Cluster(
            adt, table, shards=2, policy="blocking", fault_plan=plan
        )
        backend = ClusterBackend(ClusterFrontend(cluster, allow_faults=True))
        workload = generate(
            adt,
            ServeConfig(
                sessions=5,
                requests_per_session=4,
                mode="open",
                mean_interarrival=0.3,
                objects=2,
                seed=11,
            ),
            object_names=tuple(cluster.shard_names),
        )
        loop = ServingLoop(
            backend,
            workload,
            max_inflight=6,
            retry_aborts=True,
            max_retries=3,
            deadline=DeadlinePolicy(budget=64.0),
            retry_policy=RetryPolicy(seed=11),
            breakers=BreakerConfig(),
            shedding=ShedConfig(queue_limit=64),
        )
        result = loop.run()
        assert len(loop.outcomes) == result.requests
        for rid, outcome in sorted(loop.outcomes.items()):
            if outcome not in SHEDDED:
                continue
            for gtxn in loop.request_txns.get(rid, ()):
                assert cluster.gstatus.get(gtxn) != "COMMITTED"
        audit = audit_global(cluster)
        assert audit.passed, audit.violations


class TestServingChaosCampaign:
    @pytest.fixture(scope="class")
    def report(self, qstack):
        adt, table = qstack
        return run_serving_chaos(
            {"QStack": (adt, table)}, shard_counts=(2,), seeds=(1991,)
        )

    def test_campaign_passes_its_gates(self, report):
        assert report["passed"]
        for group in report["groups"]:
            assert group["degraded_ok"]
            for cell in group["cells"].values():
                assert not cell["audit"].get("violations")

    def test_campaign_is_byte_stable(self, report, qstack):
        adt, table = qstack
        again = run_serving_chaos(
            {"QStack": (adt, table)}, shard_counts=(2,), seeds=(1991,)
        )
        assert json.dumps(report, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

"""The degradation ladder and the bounded-queue admission contract."""

import pytest

from repro.adts.registry import make_adt
from repro.cc.scheduler import TableDrivenScheduler
from repro.core.methodology import derive
from repro.errors import SchedulerError
from repro.serve import (
    DegradationLadder,
    LEVEL_NAMES,
    SchedulerBackend,
    ServeConfig,
    ServingLoop,
    ShedConfig,
    generate,
)


class TestLadder:
    def config(self):
        return ShedConfig(
            queue_limit=8, shed_level=0.5, force_queued_level=0.75,
            hysteresis=0.25,
        )

    def test_escalation_is_immediate(self):
        ladder = DegradationLadder(self.config())
        assert ladder.update(0, 1.0) == 0
        assert ladder.update(9, 2.0) == 3  # straight past the rungs
        assert [(s.previous, s.level) for s in ladder.steps] == [(0, 3)]

    def test_deescalation_is_one_rung_per_tick_with_hysteresis(self):
        ladder = DegradationLadder(self.config())
        ladder.update(9, 1.0)
        assert ladder.level == 3
        # Backlog back under the engage threshold but inside the
        # hysteresis margin: no move (engage=8, margin=2, floor=6).
        assert ladder.update(7, 2.0) == 3
        assert ladder.update(5, 3.0) == 2  # one rung
        assert ladder.update(0, 4.0) == 1  # one rung per tick, not a jump
        assert ladder.update(0, 5.0) == 0
        reasons = [step.reason for step in ladder.steps]
        assert reasons == ["backlog", "drained", "drained", "drained"]

    def test_levels_have_names(self):
        assert LEVEL_NAMES == ("full", "shed_expired", "force_queued", "reject")

    def test_drain_steps_returns_only_fresh_moves(self):
        ladder = DegradationLadder(self.config())
        ladder.update(9, 1.0)
        assert [step.level for step in ladder.drain_steps()] == [3]
        assert ladder.drain_steps() == []

    def test_validation(self):
        with pytest.raises(SchedulerError):
            ShedConfig(queue_limit=0)
        with pytest.raises(SchedulerError):
            ShedConfig(shed_level=0.9, force_queued_level=0.5)
        with pytest.raises(SchedulerError):
            ShedConfig(hysteresis=-0.1)


BURSTY = ServeConfig(
    sessions=8,
    requests_per_session=4,
    operations_per_request=2,
    mode="open",
    mean_interarrival=0.02,
    objects=1,
    operation_mix={"Deposit": 1.0},
    seed=1991,
)


def loop_with_queue(queue_limit: int, max_inflight: int = 1):
    adt = make_adt("Account")
    table = derive(adt).final_table
    backend = SchedulerBackend(TableDrivenScheduler(policy="blocking"))
    workload = generate(adt, BURSTY)
    for name in workload.object_names:
        backend.register_object(name, adt, table)
    return ServingLoop(
        backend,
        workload,
        max_inflight=max_inflight,
        shedding=ShedConfig(queue_limit=queue_limit),
    )


class TestLoopShedding:
    def test_bounded_queue_sheds_overload(self):
        result = loop_with_queue(queue_limit=4).run()
        assert result.shed > 0
        assert result.degradation_steps  # the ladder moved
        assert (
            result.committed
            + result.aborted
            + result.shed
            + result.deadline_exceeded
            + result.retries_exhausted
            == result.requests
        )

    def test_generous_queue_admits_everything(self):
        result = loop_with_queue(queue_limit=512, max_inflight=16).run()
        assert result.shed == 0
        assert result.committed == result.requests

    def test_shedding_is_deterministic(self):
        one = loop_with_queue(queue_limit=4).run()
        two = loop_with_queue(queue_limit=4).run()
        assert one.outcomes == two.outcomes
        assert one.degradation_steps == two.degradation_steps

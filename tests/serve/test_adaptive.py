"""Adaptive policy switching preserves serializability, with hysteresis.

Two layers of guarantees:

* **Safety** — every served history stays serializable no matter when
  the controller flips an object's discipline, because switches only
  land at safe epoch boundaries (no active transaction has executed
  operations on the object).  Driven across two ADTs, one and four
  shards, and ten seeds with an aggressive controller so switches
  actually happen mid-run; scheduler runs are checked with
  :func:`~repro.cc.serializability.is_serializable`, cluster runs with
  :func:`~repro.dist.audit.audit_global`.
* **Hysteresis** — the controller itself confirms a recommendation over
  consecutive checks, respects the post-switch dwell, and skips cold
  or pending objects (unit-tested against stub profiles).
"""

import pytest

from repro.adts.registry import make_adt
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.serializability import is_serializable
from repro.core.methodology import derive
from repro.dist.audit import audit_global
from repro.dist.cluster import Cluster, ClusterFrontend
from repro.errors import SchedulerError
from repro.obs.conflict import ConflictProfile, ConflictWindow
from repro.serve import (
    AdaptiveController,
    ClusterBackend,
    SchedulerBackend,
    ServeConfig,
    ServingLoop,
    generate,
)

SEEDS = [1, 2, 7, 11, 23, 47, 101, 1991, 2024, 31337]

#: Aggressive cadence so small test runs actually switch policies.
def eager_controller():
    return AdaptiveController(
        check_every=2, confirm=1, min_dwell=1, min_requests=4
    )


@pytest.fixture(scope="module", params=["Account", "QStack"])
def fixture(request):
    adt = make_adt(request.param)
    return adt, derive(adt).final_table


def serve_config(seed):
    return ServeConfig(
        sessions=4,
        requests_per_session=4,
        operations_per_request=2,
        mode="open",
        mean_interarrival=0.3,
        objects=2,
        zipf_s=1.0,
        seed=seed,
    )


class TestSwitchingSafety:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_scheduler_history_stays_serializable(self, fixture, seed):
        adt, table = fixture
        scheduler = TableDrivenScheduler(policy="optimistic")
        backend = SchedulerBackend(scheduler)
        workload = generate(adt, serve_config(seed))
        for name in workload.object_names:
            backend.register_object(name, adt, table)
        result = ServingLoop(
            backend, workload, max_inflight=6, controller=eager_controller()
        ).run()
        assert result.committed > 0
        assert is_serializable(scheduler)

    def test_switches_actually_happen_across_the_sweep(self, fixture):
        adt, table = fixture
        switches = 0
        for seed in SEEDS:
            scheduler = TableDrivenScheduler(policy="optimistic")
            backend = SchedulerBackend(scheduler)
            workload = generate(adt, serve_config(seed))
            for name in workload.object_names:
                backend.register_object(name, adt, table)
            result = ServingLoop(
                backend, workload, max_inflight=6,
                controller=eager_controller(),
            ).run()
            switches += len(result.policy_switches)
            assert is_serializable(scheduler)
        assert switches > 0

    @pytest.mark.parametrize("shards", [1, 4])
    @pytest.mark.parametrize("seed", SEEDS[:5])
    def test_cluster_runs_pass_the_global_audit(self, fixture, shards, seed):
        adt, table = fixture
        cluster = Cluster(adt, table, shards=shards, policy="optimistic")
        backend = ClusterBackend(ClusterFrontend(cluster))
        config = ServeConfig(
            sessions=4,
            requests_per_session=3,
            operations_per_request=2,
            mode="closed",
            objects=shards,
            zipf_s=0.5,
            seed=seed,
        )
        workload = generate(
            adt, config, object_names=tuple(cluster.shard_names)
        )
        result = ServingLoop(
            backend, workload, max_inflight=6, controller=eager_controller()
        ).run()
        assert result.committed > 0
        assert audit_global(cluster).passed


class TestSafeBoundary:
    def test_switch_refused_while_transactions_hold_the_object(self, fixture):
        adt, table = fixture
        scheduler = TableDrivenScheduler(policy="blocking")
        scheduler.register_object("obj", adt, table)
        operation = adt.operation_names()[0]
        invocation = adt.invocations_of(operation)[0]
        txn = scheduler.begin()
        decision = scheduler.request(txn, "obj", invocation)
        assert decision.executed
        with pytest.raises(SchedulerError):
            scheduler.set_object_policy("obj", "queued")
        scheduler.try_commit(txn)
        scheduler.set_object_policy("obj", "queued")
        assert scheduler.object_policy("obj") == "queued"

    def test_queued_discipline_stays_serializable(self, fixture):
        adt, table = fixture
        scheduler = TableDrivenScheduler(policy="queued")
        backend = SchedulerBackend(scheduler)
        workload = generate(adt, serve_config(1991))
        for name in workload.object_names:
            backend.register_object(name, adt, table)
        result = ServingLoop(backend, workload, max_inflight=6).run()
        assert result.committed > 0
        assert result.forced_wakes == 0
        assert is_serializable(scheduler)


def profile(name, *, requests=32, blocks=0, aborts=0):
    window = ConflictWindow(requests=requests, blocks=blocks, aborts=aborts)
    return ConflictProfile(
        object_name=name,
        window_size=32,
        windows_sealed=1,
        total=window,
        recent=window,
    )


class StubBackend:
    """Just enough backend for controller unit tests."""

    def __init__(self, profiles, policies):
        self.profiles = profiles
        self.policies = policies

    def conflict_profiles(self):
        return self.profiles

    def object_policy(self, name):
        return self.policies[name]


class TestHysteresis:
    def test_confirm_requires_consecutive_checks(self):
        controller = AdaptiveController(
            check_every=1, confirm=2, min_dwell=0, min_requests=8
        )
        backend = StubBackend(
            {"obj": profile("obj", aborts=16)}, {"obj": "optimistic"}
        )
        assert controller.step(backend, set()) == []
        proposals = controller.step(backend, set())
        assert [p.new_policy for p in proposals] == ["queued"]

    def test_dwell_blocks_immediate_reversal(self):
        controller = AdaptiveController(
            check_every=1, confirm=1, min_dwell=3, min_requests=8
        )
        hot = StubBackend(
            {"obj": profile("obj", aborts=16)}, {"obj": "optimistic"}
        )
        assert controller.step(hot, set())
        controller.applied("obj")
        cold = StubBackend({"obj": profile("obj")}, {"obj": "queued"})
        assert controller.step(cold, set()) == []
        assert controller.step(cold, set()) == []
        assert controller.step(cold, set())

    def test_cold_objects_are_left_alone(self):
        controller = AdaptiveController(
            check_every=1, confirm=1, min_dwell=0, min_requests=8
        )
        backend = StubBackend(
            {"obj": profile("obj", requests=4, aborts=4)},
            {"obj": "optimistic"},
        )
        assert controller.step(backend, set()) == []

    def test_pending_objects_are_skipped(self):
        controller = AdaptiveController(
            check_every=1, confirm=1, min_dwell=0, min_requests=8
        )
        backend = StubBackend(
            {"obj": profile("obj", aborts=16)}, {"obj": "optimistic"}
        )
        assert controller.step(backend, {"obj"}) == []

    def test_check_every_gates_the_cadence(self):
        controller = AdaptiveController(
            check_every=3, confirm=1, min_dwell=0, min_requests=8
        )
        backend = StubBackend(
            {"obj": profile("obj", aborts=16)}, {"obj": "optimistic"}
        )
        assert controller.step(backend, set()) == []
        assert controller.step(backend, set()) == []
        assert controller.step(backend, set())

#!/usr/bin/env python3
"""Real OS threads driving the table-driven scheduler.

The quantitative experiments use the deterministic discrete-event
simulator (a Python thread demo would measure the GIL rather than the
table — see DESIGN.md §2).  This example shows the *correctness* side
under genuine concurrency instead: many threads run transactions against
one shared QStack through the scheduler, with retries on blocking and
cascaded aborts handled, and the final committed history is verified
serializable.

Usage:
    python examples/threaded_qstack.py
"""

import random
import threading

from repro import QStackSpec, derive
from repro.cc import TableDrivenScheduler
from repro.cc.serializability import find_serialization
from repro.spec import Invocation

THREADS = 8
TRANSACTIONS_PER_THREAD = 5
OPS_PER_TRANSACTION = 3


def main() -> None:
    adt = QStackSpec(operations=["Push", "Pop", "Deq", "Top", "Size"])
    table = derive(adt).final_table
    scheduler = TableDrivenScheduler(policy="optimistic")
    scheduler.register_object("qs", adt, table, initial_state=("a", "b"))

    # The scheduler is a sequential state machine; a single lock makes it
    # thread-safe.  Concurrency control (who may proceed, who must wait,
    # who aborts) is the *table's* job, not the lock's.
    gate = threading.Lock()
    done = {"committed": 0, "aborted": 0}
    stats_lock = threading.Lock()

    def worker(thread_id: int) -> None:
        rng = random.Random(thread_id)
        invocations = adt.invocations()
        for _ in range(TRANSACTIONS_PER_THREAD):
            with gate:
                txn = scheduler.begin()
            alive = True
            for _ in range(OPS_PER_TRANSACTION):
                invocation: Invocation = rng.choice(invocations)
                while True:
                    with gate:
                        if scheduler.transaction(txn).is_aborted:
                            alive = False
                            break
                        decision = scheduler.request(txn, "qs", invocation)
                    if decision.aborted:
                        alive = False
                        break
                    if decision.executed:
                        break
                    # blocked: politely yield and retry
                if not alive:
                    break
            committed = False
            while alive:
                with gate:
                    if scheduler.transaction(txn).is_aborted:
                        break
                    outcome = scheduler.try_commit(txn)
                if outcome.committed:
                    committed = True
                    break
                if outcome.must_abort:
                    break
            with stats_lock:
                done["committed" if committed else "aborted"] += 1

    threads = [
        threading.Thread(target=worker, args=(index,)) for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    total = THREADS * TRANSACTIONS_PER_THREAD
    print(f"{THREADS} threads ran {total} transactions: "
          f"{done['committed']} committed, {done['aborted']} aborted")
    print(f"final QStack state: {scheduler.object('qs').state()}")
    order = find_serialization(scheduler, brute_force_limit=0)
    if order is None:
        raise SystemExit("NOT SERIALIZABLE — this would be a bug")
    print(f"verified serializable; equivalent serial order of "
          f"{len(order)} committed transactions found")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Banking workload: what does the derived table buy at run time?

Simulates a population of transactions hammering a shared bank account —
the recoverability literature's classic object — under three tables:

* the no-semantics baseline (every pair AD, as with exclusive locks),
* a classical commutativity table (conflict = AD), and
* the methodology's fully refined table (Deposits commute outright,
  Withdraw/Balance interactions conditional on outcomes).

The same seeded workloads run under each table and under both scheduling
disciplines, so every difference is attributable to the table/discipline
combination.  Two classic phenomena show up:

* **Optimistic** scheduling benefits monotonically from table refinement:
  fewer recorded conflicts mean fewer dependency cycles, fewer aborted
  retries, higher throughput.
* **Blocking** on a *single-record hotspot* is a worst case for
  fine-grained tables: interleaving transactions then blocking them
  mid-flight creates convoys and deadlock victims, while the coarse
  all-AD table degenerates into clean serial execution.  Semantic tables
  pay off under blocking when objects have internal parallelism (see the
  QStack refinement experiment X1), not on one contended cell.

Every run is verified serializable.

Usage:
    python examples/banking_simulation.py
"""

from repro import AccountSpec, Dependency, derive
from repro.cc import (
    SimulationConfig,
    WorkloadConfig,
    generate,
    simulate_with_scheduler,
)
from repro.cc.serializability import is_serializable
from repro.core.entry import Entry
from repro.core.table import CompatibilityTable
from repro.semantics.commutativity import commutativity_table


def all_ad_table(adt) -> CompatibilityTable:
    table = CompatibilityTable(adt.operation_names(), name="no-semantics")
    for invoked in adt.operation_names():
        for executing in adt.operation_names():
            table.set_entry(invoked, executing, Entry.unconditional(Dependency.AD))
    return table


def commutativity_only_table(adt) -> CompatibilityTable:
    commutes = commutativity_table(adt)
    table = CompatibilityTable(adt.operation_names(), name="commutativity")
    for key, commuting in commutes.items():
        table.set_entry(
            key[0],
            key[1],
            Entry.unconditional(Dependency.ND if commuting else Dependency.AD),
        )
    return table


def main() -> None:
    adt = AccountSpec(max_balance=50, amounts=(1, 2))
    tables = [
        ("no-semantics ", all_ad_table(adt)),
        ("commutativity", commutativity_only_table(adt)),
        ("methodology  ", derive(adt).final_table),
    ]
    seeds = range(6)
    print("The derived Account table:")
    print(derive(adt).final_table.render_ascii())
    print()
    for policy in ("optimistic", "blocking"):
        print(f"--- {policy} scheduling "
              f"(mean over {len(seeds)} seeded workloads) ---")
        print(f"{'table':14} {'throughput':>10} {'committed':>9} "
              f"{'blocked':>8} {'restarts':>8}")
        for label, table in tables:
            throughput = committed = blocked = restarts = 0.0
            for seed in seeds:
                workload = generate(
                    adt,
                    "account",
                    WorkloadConfig(
                        transactions=14,
                        operations_per_transaction=3,
                        operation_mix={"Deposit": 3, "Withdraw": 2, "Balance": 2},
                        seed=seed,
                    ),
                )
                metrics, scheduler = simulate_with_scheduler(
                    SimulationConfig(
                        adt=adt,
                        table=table,
                        workload=workload,
                        object_name="account",
                        policy=policy,
                        restart_aborted=True,
                        initial_state=20,
                    )
                )
                assert is_serializable(scheduler), "scheduler produced a bad run"
                throughput += metrics.throughput
                committed += metrics.committed
                blocked += metrics.total_blocked_time
                restarts += metrics.restarts
            runs = len(seeds)
            print(
                f"{label:14} {throughput / runs:10.3f} {committed / runs:9.1f} "
                f"{blocked / runs:8.1f} {restarts / runs:8.1f}"
            )
        print()
    print("Reading the numbers: under optimistic scheduling, refinement is")
    print("monotone — the methodology table aborts least and commits most.")
    print("Under blocking, the single hot record lets the coarse table win")
    print("by degenerating into serial execution; semantic tables need")
    print("intra-object parallelism (QStack front vs back) to pay off there.")
    print()
    validation_discipline(adt, tables)


def validation_discipline(adt, tables) -> None:
    """The third discipline: commit-time validation over intentions lists.

    Here the table acts as a *validation filter*: commits whose buffered
    operations are unconditionally ND against everything committed since
    their snapshot skip re-execution entirely.
    """
    import random

    from repro.cc.validation import ValidationScheduler

    print("--- commit-time validation (intentions lists) ---")
    print(f"{'table':14} {'commits':>8} {'val-aborts':>10} "
          f"{'skipped-by-table':>16}")
    for label, table in tables:
        scheduler = ValidationScheduler()
        scheduler.register_object("account", adt, table, initial_state=20)
        rng = random.Random(1991)
        invocations = adt.invocations()
        # Deposit-heavy mix: the regime where commuting operations dominate
        # and a good validation filter pays.
        weights = [
            6 if invocation.operation == "Deposit" else 1
            for invocation in invocations
        ]
        active: list[int] = []
        for _ in range(60):
            txn = scheduler.begin()
            for _ in range(rng.randint(1, 3)):
                scheduler.request(
                    txn, "account", rng.choices(invocations, weights)[0]
                )
            active.append(txn)
            if len(active) >= 4:
                scheduler.try_commit(active.pop(rng.randrange(len(active))))
        for txn in active:
            scheduler.try_commit(txn)
        stats = scheduler.stats
        print(
            f"{label:14} {stats.commits:8d} {stats.validation_aborts:10d} "
            f"{stats.validations_skipped_by_table:16d}"
        )
    print()
    print("The richer the table, the more commits it certifies without")
    print("re-execution — the serial-dependency discipline with the")
    print("methodology's table as its conflict relation.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Applying the methodology to a *new* abstract data type.

The paper's methodology is generic: given an abstract specification, the
five stages derive a compatibility table mechanically.  This example
defines a **Mailbox** from scratch — a single-slot communication cell with
``Put`` (fails when occupied), ``Take`` (removes and returns, fails when
empty) and ``Peek`` — and derives its table, showing everything a user
must provide: an abstract state space, a graph model, and the operations
as instrumented graph programs.

Usage:
    python examples/derive_custom_adt.py
"""

from typing import Any, Iterable, Mapping

from repro import ADTSpec, EnumerationBounds, OperationSpec, derive
from repro.graph import InstrumentedGraph, ObjectGraph
from repro.spec import ReturnValue, nok, ok, result_only


# ---------------------------------------------------------------------------
# Operations: graph programs over an instrumented view
# ---------------------------------------------------------------------------

class PutOp(OperationSpec):
    """``Put(m): ok/nok`` — deposit a message; ``nok`` when occupied."""

    name = "Put"
    referencing = "implicit"
    references_used = frozenset({"slot"})

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [(message,) for message in bounds.domain]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        (message,) = args
        if view.deref("slot") is not None:
            return nok()
        vid = view.insert_vertex(message)
        view.retarget("slot", vid)
        return ok()


class TakeOp(OperationSpec):
    """``Take(): m/nok`` — remove and return the message."""

    name = "Take"
    referencing = "implicit"
    references_used = frozenset({"slot"})

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [()]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        vid = view.deref("slot")
        if vid is None:
            return nok()
        message = view.delete_vertex(vid)
        view.retarget("slot", None)
        return result_only(message)


class PeekOp(OperationSpec):
    """``Peek(): m/nok`` — observe the message without removing it."""

    name = "Peek"
    referencing = "implicit"
    references_used = frozenset({"slot"})

    def argument_tuples(self, bounds: EnumerationBounds) -> Iterable[tuple]:
        return [()]

    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        vid = view.deref("slot")
        if vid is None:
            return nok()
        return result_only(view.observe_content(vid))


# ---------------------------------------------------------------------------
# The ADT specification: states <-> object graphs
# ---------------------------------------------------------------------------

class MailboxSpec(ADTSpec):
    """A single-slot mailbox; abstract state = the message or ``None``."""

    name = "Mailbox"

    def __init__(self, messages: tuple = ("ping", "pong")) -> None:
        self._messages = messages
        self.default_bounds = EnumerationBounds(capacity=1, domain=messages)
        self._operations = {
            "Put": PutOp(),
            "Take": TakeOp(),
            "Peek": PeekOp(),
        }

    @property
    def operations(self) -> Mapping[str, OperationSpec]:
        return self._operations

    def states(self, bounds: EnumerationBounds) -> Iterable:
        yield None
        yield from bounds.domain

    def initial_state(self):
        return None

    def build_graph(self, state) -> ObjectGraph:
        graph = ObjectGraph("Mailbox")
        if state is None:
            graph.declare_reference("slot", None)
        else:
            vid = graph.add_vertex(value=state)
            graph.declare_reference("slot", vid)
        return graph

    def abstract_state(self, graph: ObjectGraph):
        vertices = list(graph.vertices())
        return vertices[0].value if vertices else None


def main() -> None:
    adt = MailboxSpec()
    result = derive(adt)

    print("Stage 2 — characterisation:")
    for name in result.operations:
        print("  ", " | ".join(result.profiles[name].table9_row()))
    print()
    print("Stage 3 — initial table:")
    print(result.stage3_table.render_ascii())
    print()
    print("Stage 4/5 — refined entries:")
    for invoked, executing, entry in result.final_table.cells():
        if entry.is_conditional:
            rendered = entry.render().replace("\n", "; ")
            print(f"  ({invoked}, {executing}): {rendered}")
    print()
    print("Interpretation: a failed Put is only an observer, so the table")
    print("lets it run concurrently with commit-ordering alone; Take and")
    print("Peek conflict with a successful Put exactly as the paper's")
    print("dependency analysis predicts.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Reproduce every artifact of the paper into an output directory.

Runs all paper-reproduction experiments (Tables 1-14, Figures 1-2, and the
prose-claim experiments X1-X7), writes each artifact's paper-vs-derived
comparison to ``out/paper/``, renders the two figures as Graphviz DOT, and
prints the summary.  Exits non-zero if anything diverges from the paper.

Usage:
    python examples/reproduce_paper.py [output_dir]
"""

import sys
from pathlib import Path

from repro.experiments import figure1_object_graph, figure2_qstack_graph
from repro.experiments.report import render_markdown, render_text, run_all
from repro.graph.render import render_dot


def main() -> int:
    output = Path(sys.argv[1] if len(sys.argv) > 1 else "out/paper")
    output.mkdir(parents=True, exist_ok=True)

    outcomes = run_all()
    for outcome in outcomes:
        path = output / f"{outcome.exp_id}.txt"
        lines = [
            f"{outcome.exp_id} — {outcome.title}",
            f"status: {'match' if outcome.matches else 'MISMATCH'}",
            "",
            "--- paper ---",
            outcome.expected,
            "",
            "--- derived ---",
            outcome.derived,
        ]
        for note in outcome.notes:
            lines.append(f"note: {note}")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    (output / "report.md").write_text(
        render_markdown(outcomes) + "\n", encoding="utf-8"
    )
    (output / "figure1.dot").write_text(
        render_dot(figure1_object_graph.build()) + "\n", encoding="utf-8"
    )
    (output / "figure2.dot").write_text(
        render_dot(figure2_qstack_graph.build()) + "\n", encoding="utf-8"
    )

    print(render_text(outcomes))
    print(f"\nartifacts written to {output}/")
    return 0 if all(outcome.matches for outcome in outcomes) else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Quickstart: derive the paper's compatibility tables for the QStack.

Runs the five-stage methodology on the executable QStack specification and
prints every artifact of the paper's worked example (Section 5): the
Stage-1 object graph, the Stage-2 characterisation (Table 9), the Stage-3
initial table (Table 10) and the refined conditional entries of Stages 4-5
(Tables 11 and 14).

Usage:
    python examples/quickstart.py
"""

from repro import Dependency, MethodologyOptions, QStackSpec, derive
from repro.graph.render import render_chain


def main() -> None:
    # The worked example uses five of the QStack's seven operations.
    adt = QStackSpec(operations=["Push", "Pop", "Deq", "Top", "Size"])
    result = derive(adt)

    print("=" * 72)
    print("Stage 1 — object graph and references (Figure 2)")
    print("=" * 72)
    sample = adt.build_graph(("e1", "e2", "e3"))
    print(render_chain(sample))
    print(f"references: {result.references}")

    print()
    print("=" * 72)
    print("Stage 2 — D1-D5 characterisation (Table 9)")
    print("=" * 72)
    header = ("Op", "obs/mod", "Cont/Str", "return", "Locality", "Refs")
    print("{:8} {:8} {:9} {:11} {:9} {}".format(*header))
    for name in result.operations:
        row = result.profiles[name].table9_row()
        print("{:8} {:8} {:9} {:11} {:9} {}".format(*row))

    print()
    print("=" * 72)
    print("Stage 3 — initial compatibility table (Table 10)")
    print("=" * 72)
    print(result.stage3_table.render_ascii())

    print()
    print("=" * 72)
    print("Stage 4 — outcome refinement: the (Deq, Push) entry (Table 11)")
    print("=" * 72)
    print(result.stage4_table.entry("Deq", "Push").render())

    print()
    print("=" * 72)
    print("Stage 5 — locality refinement: the (Deq, Push) entry")
    print("=" * 72)
    print("validated (sound at the capacity boundary):")
    print(result.stage5_table.entry("Deq", "Push").render())
    paper = derive(
        adt,
        options=MethodologyOptions(
            outcome_partition="first",
            refine_inputs=False,
            validate_conditions=False,
        ),
    )
    print()
    print("paper-literal (Table 14 as printed):")
    print(paper.stage5_table.entry("Deq", "Push").render())

    print()
    print("=" * 72)
    print("How much concurrency did each stage unlock?")
    print("=" * 72)
    for label, table in result.stage_tables():
        counts = table.dependency_counts()
        print(
            f"{label}: restrictiveness {table.restrictiveness():.2f}  "
            f"(AD {counts[Dependency.AD]}, CD {counts[Dependency.CD]}, "
            f"ND {counts[Dependency.ND]}; "
            f"{table.conditional_cell_count()} conditional cells)"
        )


if __name__ == "__main__":
    main()

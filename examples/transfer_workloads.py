#!/usr/bin/env python3
"""Transfers across many accounts: concurrency scales with disjointness.

Multi-object simulation: each transaction withdraws from one account and
deposits into another, all under tables derived by the methodology.  As
the number of accounts grows, the chance that two concurrent transfers
touch the same account falls, and the same transaction population finishes
faster — the table only serialises what actually conflicts.

Every run is verified serializable (replay witness) and, where the
conflict graph is acyclic, cross-checked against the classical
serialization-graph certificate.

Usage:
    python examples/transfer_workloads.py
"""

import random

from repro import AccountSpec, derive
from repro.cc import (
    ObjectConfig,
    SimulationConfig,
    Step,
    TransactionProgram,
    Workload,
    simulate_with_scheduler,
)
from repro.cc.conflict_graph import is_conflict_serializable
from repro.cc.serializability import is_serializable
from repro.spec import Invocation

TRANSACTIONS = 16
SEEDS = range(4)


def build_objects(accounts: int):
    adt = AccountSpec(max_balance=50, amounts=(1, 2))
    table = derive(adt).final_table
    return tuple(
        (f"acct{i}", ObjectConfig(adt=adt, table=table, initial_state=10))
        for i in range(accounts)
    )


def transfer_workload(accounts: int, seed: int) -> Workload:
    rng = random.Random(seed)
    programs = []
    clock = 0.0
    for _ in range(TRANSACTIONS):
        clock += rng.expovariate(2.0)
        source, target = rng.sample(range(accounts), 2) if accounts > 1 else (0, 0)
        amount = rng.choice((1, 2))
        programs.append(
            TransactionProgram(
                arrival=clock,
                steps=(
                    Step(f"acct{source}", Invocation("Withdraw", (amount,)),
                         rng.expovariate(1.0)),
                    Step(f"acct{target}", Invocation("Deposit", (amount,)),
                         rng.expovariate(1.0)),
                ),
            )
        )
    return Workload(programs=tuple(programs))


def main() -> None:
    print(f"{TRANSACTIONS} transfer transactions, blocking policy, "
          f"averaged over {len(SEEDS)} seeds\n")
    print(f"{'accounts':>8} {'makespan':>9} {'throughput':>10} "
          f"{'blocked':>8} {'restarts':>8}")
    for accounts in (2, 4, 8, 16):
        objects = build_objects(accounts)
        makespan = throughput = blocked = restarts = 0.0
        for seed in SEEDS:
            workload = transfer_workload(accounts, seed)
            metrics, scheduler = simulate_with_scheduler(
                SimulationConfig(
                    workload=workload,
                    objects=objects,
                    policy="blocking",
                    restart_aborted=True,
                )
            )
            assert is_serializable(scheduler), "bad run"
            if is_conflict_serializable(scheduler):
                pass  # acyclic certificate agrees, as the tests guarantee
            makespan += metrics.makespan
            throughput += metrics.throughput
            blocked += metrics.total_blocked_time
            restarts += metrics.restarts
        runs = len(SEEDS)
        print(
            f"{accounts:8d} {makespan / runs:9.2f} {throughput / runs:10.3f} "
            f"{blocked / runs:8.2f} {restarts / runs:8.1f}"
        )
    print()
    print("More accounts -> fewer genuine conflicts -> less blocking and")
    print("higher throughput for the same transaction population.")


if __name__ == "__main__":
    main()
